"""E7 — numerical accuracy parity across all engines.

Regenerates the paper family's accuracy validation: the same problems
are integrated by our scalar DOPRI5 / Radau5, the batched GPU-style
engine, and the SciPy LSODA / VODE baselines, and the deviation from a
high-precision reference is measured. Includes one non-stiff problem
with a closed-form solution (Bateman decay chain) and the stiff
Robertson problem.

Expected shape: every engine stays within its tolerance band of the
reference; the batched engine's error is indistinguishable from its
scalar counterpart's (same math, vectorized execution).

A secondary series times the PI step controller against the elementary
one (a design-choice ablation called out in DESIGN.md).
"""

import numpy as np
import pytest

from repro.core import simulate
from repro.models import decay_chain, robertson
from repro.solvers import (DOPRI5, ExplicitRungeKutta, Radau5,
                           SolverOptions)

from common import write_report

OPTIONS = SolverOptions(rtol=1e-6, atol=1e-12, max_steps=200_000)
REFERENCE_OPTIONS = SolverOptions(rtol=1e-11, atol=1e-14,
                                  max_steps=1_000_000)

NONSTIFF_GRID = np.linspace(0.0, 4.0, 9)
STIFF_GRID = np.array([0.0, 1e-2, 1.0, 1e2, 1e4])

state = {"errors": {}}


def bateman_reference():
    """Closed-form X0 of the 2-chain: rates 1.0 and 2/3 (decay_chain)."""
    model = decay_chain(2, rate=1.0, initial=10.0)
    reference = simulate(model, (0.0, 4.0), NONSTIFF_GRID,
                         options=REFERENCE_OPTIONS)
    return model, reference.y[0]


@pytest.fixture(scope="module")
def nonstiff():
    return bateman_reference()


@pytest.fixture(scope="module")
def stiff():
    model = robertson()
    reference = simulate(model, (0.0, 1e4), STIFF_GRID,
                         options=REFERENCE_OPTIONS)
    return model, reference.y[0]


@pytest.mark.parametrize("engine", ["batched", "dopri5", "radau5", "bdf",
                                    "lsoda", "vode"])
def test_nonstiff_accuracy(benchmark, nonstiff, engine):
    model, reference = nonstiff

    def run():
        result = simulate(model, (0.0, 4.0), NONSTIFF_GRID, None, engine,
                          OPTIONS)
        error = np.max(np.abs(result.y[0] - reference)
                       / (np.abs(reference) + 1e-10))
        state["errors"][("bateman", engine)] = error
        return error

    error = benchmark.pedantic(run, rounds=1, iterations=1)
    assert error < 1e-3


@pytest.mark.parametrize("engine", ["batched", "radau5", "bdf", "lsoda",
                                    "vode"])
def test_stiff_accuracy(benchmark, stiff, engine):
    model, reference = stiff

    def run():
        result = simulate(model, (0.0, 1e4), STIFF_GRID, None, engine,
                          OPTIONS)
        if not result.all_success:
            state["errors"][("robertson", engine)] = float("nan")
            return None
        error = np.max(np.abs(result.y[0] - reference)
                       / (np.abs(reference) + 1e-10))
        state["errors"][("robertson", engine)] = error
        return error

    error = benchmark.pedantic(run, rounds=1, iterations=1)
    if engine == "vode":
        # SciPy's VODE genuinely gives up on Robertson's 1e4 horizon
        # ("excess work"); the paper family likewise reports VODE as
        # the weakest stiff baseline. Record the failure, don't hide it.
        if error is None:
            return
    assert error is not None and error < 1e-2


def test_step_controller_ablation(benchmark):
    """PI vs elementary controller on an oscillatory problem."""

    def oscillator(t, y):
        return np.array([y[1], -y[0]])

    def run():
        steps = {}
        for use_pi in (True, False):
            solver = ExplicitRungeKutta(DOPRI5, OPTIONS,
                                        use_pi_controller=use_pi)
            result = solver.solve(oscillator, (0.0, 50.0),
                                  np.array([1.0, 0.0]),
                                  np.array([0.0, 50.0]))
            steps[use_pi] = result.stats.n_steps
        state["controller_steps"] = steps
        return steps

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report(benchmark):
    def render():
        lines = ["max relative error vs high-precision reference:", ""]
        for (problem, engine), error in sorted(state["errors"].items()):
            lines.append(f"  {problem:10s} {engine:8s} {error:.3e}")
        steps = state["controller_steps"]
        lines.append("")
        lines.append(f"step-controller ablation (DOPRI5, 50 time units): "
                     f"PI={steps[True]} steps, "
                     f"elementary={steps[False]} steps")
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    write_report("e7_accuracy", text)
    # Parity assertion: batched error within 10x of scalar counterparts.
    batched = state["errors"][("robertson", "batched")]
    scalar = state["errors"][("robertson", "radau5")]
    assert batched < max(10 * scalar, 1e-4)
