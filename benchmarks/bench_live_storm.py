"""End-to-end observability storm: serve, storm, scrape, verify.

Boots the real TCP server on an ephemeral port, throws a two-tenant
job storm at it — a well-behaved ``steady`` tenant and a ``doomed``
tenant whose jobs carry hopeless deadlines — then scrapes ``/metrics``
and verifies the whole pipeline end to end:

* the exposition passes the independent format checker in
  ``common.check_prometheus_text``,
* both tenants publish SLO burn-rate series,
* the doomed tenant breaches (``repro_service_slo_breaches_total`` > 0)
  and an ``SLO_BREACH`` span fired on the service tracer,
* the steady tenant does *not* breach.

Executed as a plain script by the CI observability job::

    PYTHONPATH=src python benchmarks/bench_live_storm.py
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
import threading
from pathlib import Path

from repro.io import write_model
from repro.models import lotka_volterra
from repro.service import (Client, ServiceConfig, TenantSLO,
                           scrape_metrics)
from repro.service.server import serve_async
from repro.telemetry import Tracer, parse_prometheus_text

from common import check_prometheus_text, write_bench_json

STEADY_JOBS = 6
DOOMED_JOBS = 4


def main() -> int:
    folder = write_model(lotka_volterra(),
                         Path(tempfile.mkdtemp()) / "lv")
    config = ServiceConfig(
        max_running_jobs=1,  # doomed jobs must queue long enough to die
        slos={
            "steady": TenantSLO(target=0.5),
            "doomed": TenantSLO(target=0.5, breach_burn_rate=1.0),
        })
    tracer = Tracer(keep_spans=True)
    bound = {}
    ready = threading.Event()

    def on_ready(addr):
        bound["addr"] = addr
        ready.set()

    thread = threading.Thread(
        target=lambda: asyncio.run(
            serve_async("127.0.0.1", 0, config=config, telemetry=tracer,
                        ready=on_ready)),
        daemon=True)
    thread.start()
    assert ready.wait(15), "server never came up"
    host, port = bound["addr"]

    with Client(host, port, timeout=120.0) as client:
        steady = [client.submit(str(folder), t_span=(0.0, 2.0),
                                tenant="steady", chunk_size=16)
                  for _ in range(STEADY_JOBS)]
        doomed = [client.submit(str(folder), t_span=(0.0, 2.0),
                                tenant="doomed", chunk_size=16,
                                deadline_seconds=1.0e-3)
                  for _ in range(DOOMED_JOBS)]
        outcomes = {}
        for job_id in steady + doomed:
            job = client.wait(job_id, timeout=120)
            outcomes[job["state"]] = outcomes.get(job["state"], 0) + 1
        text = scrape_metrics(host, port)
        client.shutdown()
    thread.join(15)

    problems = check_prometheus_text(text)
    samples = parse_prometheus_text(text)

    def first(name, **labels):
        for sample_labels, value in samples.get(name, ()):
            if all(sample_labels.get(k) == v for k, v in labels.items()):
                return value
        return None

    doomed_breaches = first("repro_service_slo_breaches_total",
                            tenant="doomed") or 0.0
    steady_breaches = first("repro_service_slo_breaches_total",
                            tenant="steady") or 0.0
    steady_burn = first("repro_service_slo_burn_rate", tenant="steady")
    doomed_burn = first("repro_service_slo_burn_rate", tenant="doomed")
    breach_spans = sum(1 for span in tracer.spans
                       if span.name == "SLO_BREACH")

    print(f"exposition: {len(text.splitlines())} lines, "
          f"{len(samples)} families, {len(problems)} format problem(s)")
    for problem in problems[:10]:
        print(f"  format: {problem}")
    print(f"job outcomes: {dict(sorted(outcomes.items()))}")
    print(f"burn rates: steady={steady_burn} doomed={doomed_burn}")
    print(f"breaches: steady={steady_breaches:.0f} "
          f"doomed={doomed_breaches:.0f} "
          f"(SLO_BREACH spans: {breach_spans})")
    write_bench_json("live_storm", {
        "steady_jobs": STEADY_JOBS,
        "doomed_jobs": DOOMED_JOBS,
        "format_problems": problems,
        "n_families": len(samples),
        "outcomes": dict(sorted(outcomes.items())),
        "steady_burn_rate": steady_burn,
        "doomed_burn_rate": doomed_burn,
        "steady_breaches": steady_breaches,
        "doomed_breaches": doomed_breaches,
        "breach_spans": breach_spans,
    })

    failures = []
    if problems:
        failures.append("exposition violates the text format")
    if steady_burn is None or doomed_burn is None:
        failures.append("missing per-tenant SLO burn-rate series")
    if doomed_breaches < 1 or breach_spans < 1:
        failures.append("doomed tenant never breached its SLO")
    if steady_breaches:
        failures.append("steady tenant breached (should stay healthy)")
    if outcomes.get("shed", 0) < 1:
        failures.append("no doomed job was shed at its deadline")
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
