"""Micro-benchmark: guards must be cheap when nothing goes wrong.

Runs the same all-clean batch through the dopri5 hot path with and
without the full guard set (invariant monitor + kernel state guards +
memory governor) and asserts the guards add less than 5% wall-clock
overhead — the happy path pays one finiteness scan and one row-min
scan per accepted step, and one drift check per launch. Executed as a
plain script by the CI guards job::

    PYTHONPATH=src python benchmarks/bench_guard_overhead.py
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.gpu import BatchSimulator
from repro.guards import GuardConfig, MemoryGovernor
from repro.model import perturbed_batch
from repro.models import lotka_volterra

BATCH_SIZE = 256
REPEATS = 9
#: simulations per timed sample; longer samples sink scheduler noise
#: below the ~1-3% true guard cost this benchmark polices.
SIMS_PER_SAMPLE = 3
MAX_OVERHEAD = 0.05
T_EVAL = np.linspace(0.0, 5.0, 21)


def one_run(simulator: BatchSimulator, batch) -> float:
    started = time.perf_counter()
    for _ in range(SIMS_PER_SAMPLE):
        result = simulator.simulate((0.0, 5.0), T_EVAL, batch)
    elapsed = time.perf_counter() - started
    assert result.all_success, "benchmark batch must be all-clean"
    return elapsed / SIMS_PER_SAMPLE


def main() -> int:
    model = lotka_volterra()
    rng = np.random.default_rng(42)
    batch = perturbed_batch(model.nominal_parameterization(), BATCH_SIZE,
                            rng, spread=0.05)

    plain = BatchSimulator(model, method="dopri5")
    guarded = BatchSimulator(model, method="dopri5",
                             guard_config=GuardConfig(),
                             memory_governor=MemoryGovernor())
    one_run(plain, batch), one_run(guarded, batch)  # warm-up

    # Pair the measurements back-to-back and take the median of the
    # per-pair ratios: machine drift (thermal, cache, scheduler) hits
    # both sides of a pair alike and cancels, which a best-of-N on
    # each side separately does not guarantee.
    ratios, baselines, guardeds = [], [], []
    for _ in range(REPEATS):
        baseline = one_run(plain, batch)
        with_guards = one_run(guarded, batch)
        baselines.append(baseline)
        guardeds.append(with_guards)
        ratios.append(with_guards / baseline)

    clean = not guarded.last_report.guard_log
    overhead = float(np.median(ratios)) - 1.0
    print(f"baseline      : {min(baselines) * 1e3:8.2f} ms (best)")
    print(f"with guards   : {min(guardeds) * 1e3:8.2f} ms (best)")
    print(f"overhead      : {overhead * 100:+7.2f}%  "
          f"(budget {MAX_OVERHEAD * 100:.0f}%)")
    if not clean:
        print("FAIL: guard log must stay empty on a clean batch")
        return 1
    if overhead > MAX_OVERHEAD:
        print("FAIL: guards are not cheap on the all-clean path")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
