"""E6 — parameter estimation with (FST-)PSO on batched fitness.

Regenerates the paper family's PE experiment: recover kinetic constants
of the kinase cascade from synthetic observations, with every swarm
iteration evaluated as one batched simulation launch. Compares the
batched fitness engine against a sequential-LSODA fitness engine on a
fixed number of swarm evaluations.

Expected shape: both optimizers reach comparable fitness, but the
batched evaluation engine completes the same number of simulations
several times faster; FST-PSO matches or beats plain PSO.
"""

import time

import numpy as np
import pytest

from repro.core import FreeParameter, ParameterEstimation, synthetic_target
from repro.models import OBSERVED_SPECIES, TRUE_CONSTANTS, cascade
from repro.solvers import SolverOptions

from common import write_report

SWARM = 128
ITERATIONS = 6
OPTIONS = SolverOptions()

state = {}


@pytest.fixture(scope="module")
def target():
    truth = cascade(TRUE_CONSTANTS)
    return synthetic_target(truth, OBSERVED_SPECIES, (0.0, 8.0), 21)


def make_estimation(target, engine):
    times, dynamics = target
    wrong = cascade(tuple(0.25 * k for k in TRUE_CONSTANTS))
    free = [FreeParameter(i, 1e-2, 1e2) for i in range(2)]
    return ParameterEstimation(wrong, free, OBSERVED_SPECIES, times,
                               dynamics, engine=engine, options=OPTIONS)


@pytest.mark.parametrize("optimizer", ["pso", "fstpso"])
def test_pe_batched(benchmark, target, optimizer):
    estimation = make_estimation(target, "batched")

    def run():
        started = time.perf_counter()
        result = estimation.estimate(optimizer, swarm_size=SWARM,
                                     n_iterations=ITERATIONS, seed=7)
        state[f"batched-{optimizer}"] = (result,
                                         time.perf_counter() - started)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_pe_sequential_lsoda(benchmark, target):
    estimation = make_estimation(target, "lsoda")

    def run():
        started = time.perf_counter()
        result = estimation.estimate("fstpso", swarm_size=SWARM,
                                     n_iterations=ITERATIONS, seed=7)
        state["lsoda-fstpso"] = (result, time.perf_counter() - started)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report(benchmark):
    def render():
        lines = [f"swarm={SWARM}, iterations={ITERATIONS}, "
                 f"simulations per run={SWARM * (ITERATIONS + 1)}", ""]
        for key in ("batched-pso", "batched-fstpso", "lsoda-fstpso"):
            result, seconds = state[key]
            lines.append(
                f"{key:16s} fitness={result.fitness:.4f} "
                f"time={seconds:6.2f} s "
                f"({result.n_simulations / seconds:7.1f} sims/s)")
        batched = state["batched-fstpso"][1]
        sequential = state["lsoda-fstpso"][1]
        lines.append("")
        lines.append(f"batched/sequential PE speedup: "
                     f"{sequential / batched:.1f}x")
        return "\n".join(lines), sequential / batched

    text, speedup = benchmark.pedantic(render, rounds=1, iterations=1)
    write_report("e6_pe", text)
    # Shape assertions: batched PE is faster and converges.
    assert speedup > 1.0
    assert state["batched-fstpso"][0].fitness < 0.5
    # Both engines optimize the same objective to similar quality.
    batched_fit = state["batched-fstpso"][0].fitness
    lsoda_fit = state["lsoda-fstpso"][0].fitness
    assert abs(batched_fit - lsoda_fit) < 0.2
