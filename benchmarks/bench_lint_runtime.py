"""Budget check: the static analyzers must stay fast enough for CI.

``repro lint --deep --shapes --conc`` (three passes) runs on every
push (and the pre-commit loop), so the full-package analyses have a
hard combined wall-clock budget. The dataflow engine memoizes per
definition and caches per-function scopes — and the concurrency model
is built once per index and shared by its nine rules — which keeps
every pass near-linear in the source size; this check pins that
property so an accidentally exponential rule (an interpreter
recursion without the visiting-set guard, a per-use re-walk of the
def-use graph, an uncached call-graph closure) fails CI instead of
silently turning the lint gate into the slowest job.

Timing goes through the sanctioned wall-clock boundary
(:mod:`repro.telemetry.clock`), not raw ``time.*`` — the package's
own determinism lint (``DET005``) polices that boundary, and the
tooling follows the same rule it enforces. Executed as a plain script
by the CI deep-lint job::

    PYTHONPATH=src python benchmarks/bench_lint_runtime.py
"""

from __future__ import annotations

import sys

from repro.lint import lint_conc, lint_deep, lint_shapes
from repro.telemetry.clock import REAL_CLOCK

from common import write_bench_json

#: Combined full-package budget (deep + shapes + conc), seconds.
#: Measured a few seconds on the CI class of machine; the headroom
#: absorbs slow runners without masking a complexity regression
#: (which shows up as 10-100x, not 2x).
BUDGET_SECONDS = 12.0
REPEATS = 3

#: The three full-package analyzers the CI lint gate runs.
ANALYZERS = (("deep", lint_deep), ("shapes", lint_shapes),
             ("conc", lint_conc))


def main() -> int:
    samples = []
    per_pass: dict[str, list[float]] = {name: [] for name, _ in ANALYZERS}
    n_files = 0
    for _ in range(REPEATS):
        total = 0.0
        for name, analyzer in ANALYZERS:
            started = REAL_CLOCK.monotonic()
            report = analyzer()
            elapsed = REAL_CLOCK.monotonic() - started
            per_pass[name].append(elapsed)
            total += elapsed
            n_files = len(report.metadata["files"])
            if report.at_or_above("warning"):
                print(f"FAIL: the package no longer {name}-lints clean")
                return 1
        samples.append(total)
    best = min(samples)
    print(f"files analyzed: {n_files}")
    for name, _ in ANALYZERS:
        print(f"  {name:<7}: best {min(per_pass[name]):6.2f} s")
    print(f"best of {REPEATS} : {best:6.2f} s combined "
          f"(budget {BUDGET_SECONDS:.0f} s)")
    write_bench_json("lint_runtime", {
        "budget_seconds": BUDGET_SECONDS,
        "repeats": REPEATS,
        "samples_seconds": samples,
        "best_seconds": best,
        "per_pass_seconds": {name: times
                             for name, times in per_pass.items()},
        "n_files": n_files,
    })
    if best > BUDGET_SECONDS:
        print("FAIL: full-package lint analyses exceed their combined "
              "budget")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
