"""Budget check: the shapes analyzer must stay fast enough for CI.

``repro lint --shapes`` runs on every push (and the pre-commit loop),
so the full-package analysis has a hard wall-clock budget. The
abstract interpreter memoizes per definition and caches per-function
scopes, which keeps it near-linear in the source size; this check
pins that property so an accidentally exponential rule (an
interpreter recursion without the visiting-set guard, a per-use
re-walk of the def-use graph) fails CI instead of silently turning
the lint gate into the slowest job.

Timing goes through the sanctioned wall-clock boundary
(:mod:`repro.telemetry.clock`), not raw ``time.*`` — the package's
own determinism lint (``DET005``) polices that boundary, and the
tooling follows the same rule it enforces. Executed as a plain script
by the CI deep-lint job::

    PYTHONPATH=src python benchmarks/bench_lint_runtime.py
"""

from __future__ import annotations

import sys

from repro.lint import lint_shapes
from repro.telemetry.clock import REAL_CLOCK

from common import write_bench_json

#: Full-package budget, seconds. Measured ~2s on the CI class of
#: machine; 4x headroom absorbs slow runners without masking a
#: complexity regression (which shows up as 10-100x, not 2x).
BUDGET_SECONDS = 8.0
REPEATS = 3


def main() -> int:
    samples = []
    n_files = 0
    for _ in range(REPEATS):
        started = REAL_CLOCK.monotonic()
        report = lint_shapes()
        samples.append(REAL_CLOCK.monotonic() - started)
        n_files = len(report.metadata["files"])
        if report.at_or_above("warning"):
            print("FAIL: the package no longer shapes-lints clean")
            return 1
    best = min(samples)
    print(f"files analyzed: {n_files}")
    print(f"best of {REPEATS} : {best:6.2f} s "
          f"(budget {BUDGET_SECONDS:.0f} s)")
    write_bench_json("lint_runtime", {
        "budget_seconds": BUDGET_SECONDS,
        "repeats": REPEATS,
        "samples_seconds": samples,
        "best_seconds": best,
        "n_files": n_files,
    })
    if best > BUDGET_SECONDS:
        print("FAIL: full-package shape analysis exceeds its budget")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
