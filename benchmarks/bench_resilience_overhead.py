"""Micro-benchmark: the retry layer must be free when nothing fails.

Runs the same all-success batch through the engine with and without a
retry policy and asserts the policy adds less than 5% wall-clock
overhead (the failed-row scan is the only extra work on the happy
path). Executed as a plain script by the CI fault-injection job::

    PYTHONPATH=src python benchmarks/bench_resilience_overhead.py
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.gpu import BatchSimulator
from repro.model import perturbed_batch
from repro.models import lotka_volterra
from repro.resilience import default_retry_policy

BATCH_SIZE = 256
REPEATS = 7
MAX_OVERHEAD = 0.05
T_EVAL = np.linspace(0.0, 5.0, 21)


def one_run(simulator: BatchSimulator, batch) -> float:
    started = time.perf_counter()
    result = simulator.simulate((0.0, 5.0), T_EVAL, batch)
    elapsed = time.perf_counter() - started
    assert result.all_success, "benchmark batch must be all-success"
    return elapsed


def main() -> int:
    model = lotka_volterra()
    rng = np.random.default_rng(42)
    batch = perturbed_batch(model.nominal_parameterization(), BATCH_SIZE,
                            rng, spread=0.05)

    plain = BatchSimulator(model)
    retrying = BatchSimulator(model, retry_policy=default_retry_policy())
    one_run(plain, batch), one_run(retrying, batch)  # warm-up

    # Interleave the measurements so machine drift (thermal, cache,
    # scheduler) cancels instead of landing on one side; compare the
    # best-of-N of each, the usual noise floor estimator.
    baseline = with_retry = np.inf
    for _ in range(REPEATS):
        baseline = min(baseline, one_run(plain, batch))
        with_retry = min(with_retry, one_run(retrying, batch))

    overhead = with_retry / baseline - 1.0
    print(f"baseline      : {baseline * 1e3:8.2f} ms")
    print(f"with retry    : {with_retry * 1e3:8.2f} ms")
    print(f"overhead      : {overhead * 100:+7.2f}%  "
          f"(budget {MAX_OVERHEAD * 100:.0f}%)")
    if overhead > MAX_OVERHEAD:
        print("FAIL: retry layer is not free on the all-success path")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
