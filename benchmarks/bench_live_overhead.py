"""Micro-benchmark: the live hub must not tax the simulation hot path.

The :class:`~repro.telemetry.MetricsHub` observes every span close (the
tracer calls its ``on_span`` from the simulating thread), so the E1
workload with a hub attached is the worst case for the live-telemetry
tax. This bench pairs a traced simulator against the same simulator
with a hub (plus one saturated bounded subscriber, so the drop path is
exercised too) and gates the median paired ratio at 2% — same
discipline as ``bench_telemetry_overhead.py``. Executed as a plain
script by the CI observability job::

    PYTHONPATH=src python benchmarks/bench_live_overhead.py
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.gpu import BatchSimulator
from repro.model import perturbed_batch
from repro.models import lotka_volterra
from repro.telemetry import MetricsHub, Tracer

from common import write_bench_json

BATCH_SIZE = 256
REPEATS = 9
#: simulations per timed sample; longer samples sink scheduler noise
#: below the sub-1% true hub cost this benchmark polices.
SIMS_PER_SAMPLE = 3
MAX_OVERHEAD = 0.02
T_EVAL = np.linspace(0.0, 5.0, 21)


def one_run(simulator: BatchSimulator, batch) -> float:
    started = time.perf_counter()
    for _ in range(SIMS_PER_SAMPLE):
        result = simulator.simulate((0.0, 5.0), T_EVAL, batch)
    elapsed = time.perf_counter() - started
    assert result.all_success, "benchmark batch must be all-clean"
    return elapsed / SIMS_PER_SAMPLE


def main() -> int:
    model = lotka_volterra()
    rng = np.random.default_rng(42)
    batch = perturbed_batch(model.nominal_parameterization(), BATCH_SIZE,
                            rng, spread=0.05)

    baseline_tracer = Tracer(keep_spans=False)
    plain = BatchSimulator(model, method="dopri5",
                           tracer=baseline_tracer)
    hub = MetricsHub()
    hub_tracer = Tracer(keep_spans=False)
    hub.attach(hub_tracer)
    # A tiny bounded subscription that is never drained: every span
    # close also walks the fan-out + drop path.
    subscription = hub.subscribe(maxsize=4)
    hubbed = BatchSimulator(model, method="dopri5", tracer=hub_tracer)
    one_run(plain, batch), one_run(hubbed, batch)  # warm-up

    # Pair the measurements back-to-back and take the median of the
    # per-pair ratios: machine drift (thermal, cache, scheduler) hits
    # both sides of a pair alike and cancels.
    ratios, baselines, hubbeds = [], [], []
    for _ in range(REPEATS):
        baseline = one_run(plain, batch)
        with_hub = one_run(hubbed, batch)
        baselines.append(baseline)
        hubbeds.append(with_hub)
        ratios.append(with_hub / baseline)

    overhead = float(np.median(ratios)) - 1.0
    snapshot = hub.snapshot()
    spans_seen = snapshot["spans_seen"]
    print(f"baseline (traced) : {min(baselines) * 1e3:8.2f} ms (best)")
    print(f"with live hub     : {min(hubbeds) * 1e3:8.2f} ms (best)")
    print(f"overhead          : {overhead * 100:+7.2f}%  "
          f"(budget {MAX_OVERHEAD * 100:.0f}%)")
    print(f"spans seen by hub : {spans_seen}")
    print(f"subscriber drops  : {subscription.dropped}")
    write_bench_json("live_overhead", {
        "batch_size": BATCH_SIZE,
        "repeats": REPEATS,
        "sims_per_sample": SIMS_PER_SAMPLE,
        "max_overhead": MAX_OVERHEAD,
        "baseline_seconds": baselines,
        "hubbed_seconds": hubbeds,
        "ratios": ratios,
        "overhead": overhead,
        "spans_seen": spans_seen,
        "subscriber_dropped": subscription.dropped,
    })
    if spans_seen == 0:
        print("FAIL: the hub observed no spans")
        return 1
    if subscription.dropped == 0:
        print("FAIL: the saturated subscriber never dropped — the "
              "bounded fan-out path went unexercised")
        return 1
    if overhead > MAX_OVERHEAD:
        print("FAIL: the live hub is not cheap on the hot path")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
