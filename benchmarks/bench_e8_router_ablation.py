"""E8 — ablation of the stiffness router (method selection).

Regenerates the design-choice study DESIGN.md calls out: on a batch
mixing non-stiff and stiff simulations, the auto-router is compared
against forcing DOPRI5 or Radau IIA for everything. A secondary series
ablates the Radau Jacobian-reuse policy.

Expected shape: the router tracks the better pure method on each
problem class — it avoids both the explicit method's collapse on stiff
simulations and the implicit method's overhead on non-stiff ones.
"""

import time

import numpy as np
import pytest

from repro.gpu import BatchRadau5, BatchSimulator, BatchedODEProblem
from repro.model import ODESystem, ParameterizationBatch, perturbed_batch
from repro.models import decay_chain, robertson
from repro.solvers import SolverOptions

from common import write_report

OPTIONS = SolverOptions(max_steps=100_000)
GRID = np.array([0.0, 1.0, 10.0, 100.0])

state = {}


def mixed_workloads():
    """A non-stiff batch and a stiff batch of equal size."""
    nonstiff_model = decay_chain(3)
    stiff_model = robertson()
    rng = np.random.default_rng(0)
    nonstiff = perturbed_batch(nonstiff_model.nominal_parameterization(),
                               16, rng)
    stiff = perturbed_batch(stiff_model.nominal_parameterization(), 16,
                            rng)
    return (nonstiff_model, nonstiff), (stiff_model, stiff)


@pytest.mark.parametrize("method", ["auto", "dopri5", "radau5"])
def test_router_methods(benchmark, method):
    (nonstiff_model, nonstiff), (stiff_model, stiff) = mixed_workloads()
    # Forcing DOPRI5 onto Robertson would burn the full step budget; a
    # smaller cap keeps the ablation honest and bounded.
    options = OPTIONS if method != "dopri5" else \
        OPTIONS.replace(max_steps=20_000)

    def run():
        started = time.perf_counter()
        first = BatchSimulator(nonstiff_model, options,
                               method=method).simulate(
            (0.0, 100.0), GRID, nonstiff)
        second = BatchSimulator(stiff_model, options,
                                method=method).simulate(
            (0.0, 100.0), GRID, stiff)
        state[method] = {
            "seconds": time.perf_counter() - started,
            "nonstiff_steps": int(first.n_steps.sum()),
            "stiff_steps": int(second.n_steps.sum()),
            "nonstiff_ok": bool(first.all_success),
            "stiff_ok": bool(second.all_success),
        }

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("reuse", [True, False],
                         ids=["reuse-jac", "fresh-jac"])
def test_jacobian_reuse_ablation(benchmark, reuse):
    model = robertson()
    batch = perturbed_batch(model.nominal_parameterization(), 8,
                            np.random.default_rng(1))
    problem = BatchedODEProblem(ODESystem.from_model(model), batch)

    def run():
        started = time.perf_counter()
        BatchRadau5(OPTIONS, reuse_jacobian=reuse).solve(
            problem, (0.0, 100.0), GRID)
        state[f"jac-reuse-{reuse}"] = {
            "seconds": time.perf_counter() - started,
            "jacobian_evals":
                problem.counters.jacobian_simulation_evaluations,
        }

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report(benchmark):
    def render():
        lines = ["router ablation on a mixed 16+16 workload "
                 "(non-stiff decay chain + stiff Robertson):", ""]
        for method in ("auto", "dopri5", "radau5"):
            data = state[method]
            lines.append(
                f"  {method:8s} time={data['seconds']:6.2f} s  "
                f"nonstiff steps={data['nonstiff_steps']:6d} "
                f"(ok={data['nonstiff_ok']})  "
                f"stiff steps={data['stiff_steps']:6d} "
                f"(ok={data['stiff_ok']})")
        lines.append("")
        lines.append("Radau Jacobian-reuse ablation (8 stiff sims):")
        for reuse in (True, False):
            data = state[f"jac-reuse-{reuse}"]
            label = "reuse" if reuse else "fresh"
            lines.append(
                f"  {label:6s} time={data['seconds']:6.2f} s  "
                f"jacobian sim-evals={data['jacobian_evals']}")
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    write_report("e8_router_ablation", text)

    # Shape assertions.
    auto = state["auto"]
    assert auto["nonstiff_ok"] and auto["stiff_ok"]
    # Pure DOPRI5 fails (or at best crawls through) the stiff half.
    assert not state["dopri5"]["stiff_ok"] or \
        state["dopri5"]["stiff_steps"] > 5 * auto["stiff_steps"]
    # The router spends far fewer non-stiff steps than pure Radau spends
    # stiff-solving machinery on the easy half... compare step counts:
    assert auto["nonstiff_steps"] <= state["radau5"]["nonstiff_steps"] * 2
    # Jacobian reuse saves work.
    assert state["jac-reuse-True"]["jacobian_evals"] < \
        state["jac-reuse-False"]["jacobian_evals"]
