"""E5 — Sobol sensitivity analysis of the metabolic model.

Regenerates the paper family's SA experiment (their Table 1): Saltelli
sampling of the initial concentrations of the dominant hexokinase
isoform and its complexes, batched simulation of the whole design, and
first-/total-order indices with confidence intervals on the R5P
read-out. Also times the sequential LSODA loop on (a budgeted slice of)
the same design for the throughput comparison.

Expected shape: the batched engine completes the full Saltelli design
orders of magnitude faster than the sequential loop would; the indices
identify the complex species as the dominant drivers.
"""

import numpy as np
import pytest

from repro.core import ParameterRange, SequentialSimulator, run_sobol_sa
from repro.core.psa import SweepTarget, build_sweep_batch
from repro.core.sampling import saltelli_sample
from repro.models import (SA_OUTPUT_SPECIES, SA_TARGET_SPECIES,
                          metabolic_network)
from repro.solvers import SolverOptions

from common import write_report

BASE_SAMPLES = 64           # 64 * (3 + 2) = 320 simulations
RANGES = [ParameterRange(1e-6, 2e-4, log=True)] * 3
OPTIONS = SolverOptions(max_steps=100_000)
T_EVAL = np.linspace(0.0, 5.0, 11)

state = {}


def test_sobol_sa_batched(benchmark):
    model = metabolic_network()

    def run():
        return run_sobol_sa(
            model, species=SA_TARGET_SPECIES, ranges=RANGES,
            output_species=SA_OUTPUT_SPECIES, base_samples=BASE_SAMPLES,
            t_span=(0.0, 5.0), t_eval=T_EVAL, options=OPTIONS,
            bootstrap=50, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    state["result"] = result
    state["model"] = model
    state["batched_seconds"] = result.simulation.elapsed_seconds
    assert result.n_simulations == BASE_SAMPLES * 5


def test_sa_lsoda_budget(benchmark):
    model = state["model"]
    targets = [SweepTarget.initial_concentration(model, name, rng)
               for name, rng in zip(SA_TARGET_SPECIES, RANGES)]
    design = saltelli_sample(RANGES, BASE_SAMPLES, seed=0)
    batch = build_sweep_batch(model, targets, design)
    budget = max(state["batched_seconds"], 0.2)
    holder = {}

    def run():
        simulator = SequentialSimulator(model, OPTIONS, "lsoda")
        result = simulator.simulate((0.0, 5.0), T_EVAL, batch,
                                    time_budget_seconds=budget)
        holder["completed"] = sum(s == "success"
                                  for s in result.statuses())

    benchmark.pedantic(run, rounds=1, iterations=1)
    state["lsoda_completed"] = holder["completed"]


def test_report(benchmark):
    def render():
        result = state["result"]
        lines = [
            f"design              : {result.n_simulations} simulations "
            f"({BASE_SAMPLES} base samples, 3 targets)",
            f"batched wall clock  : {state['batched_seconds']:.2f} s",
            f"LSODA sims in the same budget: "
            f"{state['lsoda_completed']}/{result.n_simulations}",
            "",
            result.table(),
            "",
            "ranking: " + ", ".join(f"{label} (ST={value:.2f})"
                                    for label, value in result.ranking()),
        ]
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    write_report("e5_sobol_sa", text)
    result = state["result"]
    # Shape assertions: indices are meaningful and the throughput gap
    # is real.
    assert np.all(result.total_order > -0.1)
    assert state["lsoda_completed"] < result.n_simulations
