"""Micro-benchmark: telemetry must be near-free, tracing must be cheap.

The span instrumentation lives at launch/rung/phase granularity — the
per-step inner loops are untouched — so even *enabled* tracing should
cost ~nothing on a realistic batch. This bench pairs the default
simulator (``NullTracer``, telemetry disabled) against one recording
into an in-memory :class:`~repro.telemetry.Tracer` and gates the
median paired ratio at 2%: if enabled tracing fits the budget, the
disabled-mode no-op path certainly does. Executed as a plain script by
the CI telemetry job::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.gpu import BatchSimulator
from repro.model import perturbed_batch
from repro.models import lotka_volterra
from repro.telemetry import Tracer

from common import write_bench_json

BATCH_SIZE = 256
REPEATS = 9
#: simulations per timed sample; longer samples sink scheduler noise
#: below the sub-1% true telemetry cost this benchmark polices.
SIMS_PER_SAMPLE = 3
MAX_OVERHEAD = 0.02
T_EVAL = np.linspace(0.0, 5.0, 21)


def one_run(simulator: BatchSimulator, batch) -> float:
    started = time.perf_counter()
    for _ in range(SIMS_PER_SAMPLE):
        result = simulator.simulate((0.0, 5.0), T_EVAL, batch)
    elapsed = time.perf_counter() - started
    assert result.all_success, "benchmark batch must be all-clean"
    return elapsed / SIMS_PER_SAMPLE


def main() -> int:
    model = lotka_volterra()
    rng = np.random.default_rng(42)
    batch = perturbed_batch(model.nominal_parameterization(), BATCH_SIZE,
                            rng, spread=0.05)

    plain = BatchSimulator(model, method="dopri5")
    tracer = Tracer()  # in-memory sink: measures tracing, not disk I/O
    traced = BatchSimulator(model, method="dopri5", tracer=tracer)
    one_run(plain, batch), one_run(traced, batch)  # warm-up

    # Pair the measurements back-to-back and take the median of the
    # per-pair ratios: machine drift (thermal, cache, scheduler) hits
    # both sides of a pair alike and cancels, which a best-of-N on
    # each side separately does not guarantee.
    ratios, baselines, traceds = [], [], []
    for _ in range(REPEATS):
        baseline = one_run(plain, batch)
        with_tracing = one_run(traced, batch)
        baselines.append(baseline)
        traceds.append(with_tracing)
        ratios.append(with_tracing / baseline)

    overhead = float(np.median(ratios)) - 1.0
    n_spans = len(tracer.spans)
    print(f"baseline      : {min(baselines) * 1e3:8.2f} ms (best)")
    print(f"with tracing  : {min(traceds) * 1e3:8.2f} ms (best)")
    print(f"overhead      : {overhead * 100:+7.2f}%  "
          f"(budget {MAX_OVERHEAD * 100:.0f}%)")
    print(f"spans recorded: {n_spans}")
    write_bench_json("telemetry_overhead", {
        "batch_size": BATCH_SIZE,
        "repeats": REPEATS,
        "sims_per_sample": SIMS_PER_SAMPLE,
        "max_overhead": MAX_OVERHEAD,
        "baseline_seconds": baselines,
        "traced_seconds": traceds,
        "ratios": ratios,
        "overhead": overhead,
        "n_spans": n_spans,
        "metrics": traced.last_report.metrics.to_dict(),
    })
    if n_spans == 0:
        print("FAIL: the traced simulator recorded no spans")
        return 1
    if overhead > MAX_OVERHEAD:
        print("FAIL: telemetry is not cheap on the hot path")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
