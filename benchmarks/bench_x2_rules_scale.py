"""X2 (extension) — rule-derived large-scale models on the engine.

Regenerates the paper family's large-scale workflow end to end: a
compact rule-based description expands into an RBM two orders of
magnitude larger, and the derived network is simulated as a perturbed
batch on the batched engine vs the sequential LSODA loop. This is the
autophagy/translation-switch pipeline shape (29 rules -> 6581
reactions -> PSA) on the Brusselator-style substitute workload.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.core import SequentialSimulator, simulate
from repro.model import perturbed_batch
from repro.rules import multisite_cascade
from repro.solvers import SolverOptions

from common import write_report

OPTIONS = SolverOptions(max_steps=100_000)
GRID = np.linspace(0.0, 3.0, 7)

state = {}


@pytest.mark.parametrize("n_sites", [4, 6, 8])
def test_expansion_scale(benchmark, n_sites):
    rule_model = multisite_cascade(n_sites)

    def run():
        flat = rule_model.expand()
        state[f"expand-{n_sites}"] = (len(rule_model.rules),
                                      flat.n_species, flat.n_reactions)
        return flat

    flat = benchmark.pedantic(run, rounds=1, iterations=1)
    assert flat.n_species == 2 ** n_sites + 2


def test_batched_simulation_of_derived_network(benchmark):
    model = multisite_cascade(7).expand()
    batch = perturbed_batch(model.nominal_parameterization(), 64,
                            np.random.default_rng(0))

    def run():
        result = simulate(model, (0.0, 3.0), GRID, batch,
                          options=OPTIONS)
        state["batched"] = result
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.all_success


def test_lsoda_loop_on_derived_network(benchmark):
    model = multisite_cascade(7).expand()
    batch = perturbed_batch(model.nominal_parameterization(), 64,
                            np.random.default_rng(0))
    simulator = SequentialSimulator(model, OPTIONS, "lsoda")

    def run():
        budget = max(state["batched"].elapsed_seconds * 5, 2.0)
        result = simulator.simulate((0.0, 3.0), GRID, batch,
                                    time_budget_seconds=budget)
        state["lsoda"] = result
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report(benchmark):
    def render():
        lines = ["rule expansion growth:"]
        rows = []
        for n_sites in (4, 6, 8):
            rules, species, reactions = state[f"expand-{n_sites}"]
            rows.append((n_sites, rules, species, reactions))
        lines.append(format_table(
            ["sites", "rules", "species", "reactions"], rows))
        batched = state["batched"]
        lsoda = state["lsoda"]
        completed = sum(s == "success" for s in lsoda.statuses())
        batch_size = batched.batch_size
        lines.append("")
        lines.append(
            f"derived 7-site network ({2 ** 7 + 2} species, "
            f"{2 * 7 * 2 ** 6} reactions), "
            f"{batch_size}-parameterization batch:")
        lines.append(f"  batched engine : {batched.elapsed_seconds:.2f} s "
                     f"(all {batch_size} succeeded, "
                     f"{batched.raw.n_steps.mean():.0f} steps/sim)")
        lines.append(f"  lsoda loop     : {lsoda.elapsed_seconds:.2f} s, "
                     f"completed {completed}/{batch_size}")
        lines.append("")
        lines.append(
            "note: this derived network is smooth and non-stiff, the "
            "regime where LSODA's high-order Adams steps are most "
            "efficient; the engines are at parity here, and the batched "
            "advantage grows with batch size and stiffness (see E1/E2).")
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    write_report("x2_rules_scale", text)
    # The derived network is exponentially larger than its rule set.
    rules, species, reactions = state["expand-8"]
    assert reactions / rules >= 100
    # Parity shape: the batched engine stays within a small factor of
    # the LSODA loop even in LSODA's best regime.
    assert state["batched"].elapsed_seconds <= \
        3.0 * max(state["lsoda"].elapsed_seconds, 0.05)
