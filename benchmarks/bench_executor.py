"""Shard-executor throughput and overhead gate.

Runs the E1 workload (32-species symmetric synthetic RBM) as a chunked
campaign serially and through the supervised shard executor at
increasing worker counts, reporting chunk throughput per configuration
and persisting the numbers as a schema-versioned
``benchmarks/out/BENCH_executor.json`` artifact.

Two assertions gate the run (executed as a plain script by the CI
``executor-chaos`` job)::

    PYTHONPATH=src python benchmarks/bench_executor.py

* every sharded result is *byte-identical* to the serial reference;
* the paired-median overhead of ``workers=1`` vs serial stays within
  5% — the supervision machinery (heartbeats, polling tick, queue
  transfer) must be cheap when nothing fails.

Higher worker counts are reported for shape only: on the in-process
NumPy substrate real speedup depends on BLAS thread contention, so no
gate is attached to them.
"""

from __future__ import annotations

import statistics
import sys
import time

import numpy as np

from repro.resilience import CampaignConfig, run_campaign
from repro.model import perturbed_batch
from repro.solvers import SolverOptions
from repro.synth import generate_symmetric

from common import write_bench_json

MODEL = generate_symmetric(32, seed=11)
T_SPAN = (0.0, 100.0)
T_EVAL = np.linspace(0.0, 100.0, 21)
OPTIONS = SolverOptions(max_steps=50_000)
BATCH_SIZE = 128
CHUNK_SIZE = 32
WORKER_COUNTS = [1, 2, 4]
REPEATS = 5
MAX_OVERHEAD = 0.05

#: Relaxed liveness knobs: a sparse heartbeat cadence (every wake of
#: the blocked supervisor preempts a worker on small machines) with a
#: generous timeout — the gate measures the supervision machinery's
#: happy-path cost, not fault-detection latency.
SUPERVISION = dict(heartbeat_interval=0.25, heartbeat_timeout=5.0,
                   restart_backoff=0.01, restart_backoff_cap=0.05)


def one_run(batch, workers: int):
    config = CampaignConfig(chunk_size=CHUNK_SIZE, workers=workers,
                            **(SUPERVISION if workers else {}))
    started = time.perf_counter()
    outcome = run_campaign(MODEL, T_SPAN, T_EVAL, batch, config=config,
                           options=OPTIONS)
    elapsed = time.perf_counter() - started
    assert not outcome.incomplete and not outcome.degraded
    return elapsed, outcome


def signature(outcome) -> bytes:
    result = outcome.result
    return (result.y.tobytes() + result.status_codes.tobytes()
            + result.method_codes.tobytes() + result.n_steps.tobytes())


def main() -> int:
    rng = np.random.default_rng(42)
    batch = perturbed_batch(MODEL.nominal_parameterization(), BATCH_SIZE,
                            rng, spread=0.05)
    n_chunks = -(-BATCH_SIZE // CHUNK_SIZE)

    # Warm-up: compile caches, fork machinery, BLAS init.
    _, reference = one_run(batch, 0)
    one_run(batch, 1)
    serial_signature = signature(reference)

    # Paired measurements: serial and each worker count interleaved in
    # every round so machine drift cancels; the gate compares medians.
    serial_times: list[float] = []
    sharded_times: dict[int, list[float]] = {w: [] for w in WORKER_COUNTS}
    for _ in range(REPEATS):
        elapsed, _ = one_run(batch, 0)
        serial_times.append(elapsed)
        for workers in WORKER_COUNTS:
            elapsed, outcome = one_run(batch, workers)
            sharded_times[workers].append(elapsed)
            assert signature(outcome) == serial_signature, \
                f"workers={workers} result is not byte-identical to serial"

    serial_median = statistics.median(serial_times)
    medians = {w: statistics.median(sharded_times[w])
               for w in WORKER_COUNTS}
    throughput = {w: n_chunks / medians[w] for w in WORKER_COUNTS}

    print(f"serial      : {serial_median * 1e3:8.1f} ms  "
          f"({n_chunks / serial_median:6.1f} chunks/s)")
    for workers in WORKER_COUNTS:
        print(f"workers={workers:<4}: {medians[workers] * 1e3:8.1f} ms  "
              f"({throughput[workers]:6.1f} chunks/s)")
    overhead = medians[1] / serial_median - 1.0
    print(f"workers=1 overhead: {overhead * 100:+6.2f}%  "
          f"(budget {MAX_OVERHEAD * 100:.0f}%)")

    write_bench_json("executor", {
        "workload": {"model": MODEL.name, "batch_size": BATCH_SIZE,
                     "chunk_size": CHUNK_SIZE, "n_chunks": n_chunks,
                     "t_span": list(T_SPAN), "n_save_points": len(T_EVAL)},
        "serial_seconds": serial_median,
        "sharded_seconds": {str(w): medians[w] for w in WORKER_COUNTS},
        "chunks_per_second": {"serial": n_chunks / serial_median,
                              **{str(w): throughput[w]
                                 for w in WORKER_COUNTS}},
        "workers_1_overhead": overhead,
        "bit_identical": True,
    })

    if overhead > MAX_OVERHEAD:
        print("FAIL: single-worker sharding is not within budget of serial")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
