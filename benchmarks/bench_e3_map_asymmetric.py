"""E3 — comparison maps over asymmetric RBMs (N > M and M > N).

Regenerates the paper family's two asymmetric maps. The number of
species N sets the width of the fine-grained axis (one ODE per
species), while the number of reactions M sets the per-simulation
arithmetic depth; the maps probe both imbalances.

Expected shape: as in E2, the CPU loop holds only the single-simulation
corner; reaction-heavy models (M > N) penalize the coarse policy (its
sequential reaction sweep grows with M) more than the hybrid one.
"""

import numpy as np
import pytest

from repro.core import run_comparison_map
from repro.solvers import SolverOptions
from repro.synth import generate_asymmetric

from common import write_report

BATCHES = [1, 16, 128]
ENGINES = ("lsoda", "vode", "batched-hybrid", "batched-coarse",
           "batched-fine")
OPTIONS = SolverOptions(max_steps=50_000)
T_EVAL = np.linspace(0.0, 1.0, 6)

SPECIES_HEAVY = [("32x8", generate_asymmetric(32, 8, seed=31)),
                 ("64x16", generate_asymmetric(64, 16, seed=31)),
                 ("96x24", generate_asymmetric(96, 24, seed=31))]
REACTION_HEAVY = [("8x32", generate_asymmetric(8, 32, seed=32)),
                  ("16x64", generate_asymmetric(16, 64, seed=32)),
                  ("24x96", generate_asymmetric(24, 96, seed=32))]


def run_map(models):
    return run_comparison_map(models, BATCHES, (0.0, 1.0), T_EVAL,
                              engines=ENGINES, options=OPTIONS, seed=0,
                              time_budget_seconds=4.0)


def test_species_heavy_map(benchmark):
    comparison = benchmark.pedantic(lambda: run_map(SPECIES_HEAVY),
                                    rounds=1, iterations=1)
    write_report("e3_map_species_heavy", comparison.render())
    for label, _ in SPECIES_HEAVY:
        assert comparison.best(label, 128).startswith("batched")


def test_reaction_heavy_map(benchmark):
    comparison = benchmark.pedantic(lambda: run_map(REACTION_HEAVY),
                                    rounds=1, iterations=1)
    lines = [comparison.render(), ""]
    # The coarse-policy penalty claim: at large batches on the most
    # reaction-heavy model, hybrid beats coarse.
    cell = comparison.cells[("24x96", 128)]
    ratio = cell.seconds["batched-coarse"] / cell.seconds["batched-hybrid"]
    lines.append(f"coarse/hybrid time ratio on 24x96 @128: {ratio:.2f}x")
    write_report("e3_map_reaction_heavy", "\n".join(lines))
    assert ratio > 1.0
    for label, _ in REACTION_HEAVY:
        assert comparison.best(label, 128).startswith("batched")
