"""Shared helpers for the experiment benchmarks (E1-E8).

Every bench regenerates one experiment of DESIGN.md's index: it times
the engines with pytest-benchmark and renders the experiment's
table/series into ``benchmarks/out/<experiment>.txt`` so the numbers
recorded in EXPERIMENTS.md can be reproduced from a plain
``pytest benchmarks/ --benchmark-only`` run.

Benches additionally persist their raw numbers as schema-versioned
machine-readable artifacts (``benchmarks/out/BENCH_<name>.json``, see
:func:`write_bench_json`) so dashboards and regression tooling can
diff runs without scraping the text tables.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: Version of the ``BENCH_<name>.json`` artifact layout. Bump when a
#: top-level key changes meaning; consumers must check it before
#: diffing payloads across runs.
BENCH_SCHEMA_VERSION = 1


def timed(function, results: dict, key):
    """Wrap ``function`` so each call records its wall-clock seconds."""

    def wrapper():
        started = time.perf_counter()
        value = function()
        results[key] = time.perf_counter() - started
        return value

    return wrapper


def write_report(name: str, text: str) -> Path:
    """Persist a rendered experiment table and echo it to stdout."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
    return path


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist ``payload`` as ``benchmarks/out/BENCH_<name>.json``.

    The artifact is ``{"schema_version": 1, "bench": name, **payload}``
    — deliberately free of timestamps and host identifiers so identical
    runs produce identical files (diff-friendly in CI artifacts).
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"BENCH_{name}.json"
    document = {"schema_version": BENCH_SCHEMA_VERSION, "bench": name}
    document.update(payload)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return path
