"""Shared helpers for the experiment benchmarks (E1-E8).

Every bench regenerates one experiment of DESIGN.md's index: it times
the engines with pytest-benchmark and renders the experiment's
table/series into ``benchmarks/out/<experiment>.txt`` so the numbers
recorded in EXPERIMENTS.md can be reproduced from a plain
``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import time
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def timed(function, results: dict, key):
    """Wrap ``function`` so each call records its wall-clock seconds."""

    def wrapper():
        started = time.perf_counter()
        value = function()
        results[key] = time.perf_counter() - started
        return value

    return wrapper


def write_report(name: str, text: str) -> Path:
    """Persist a rendered experiment table and echo it to stdout."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
    return path
