"""Shared helpers for the experiment benchmarks (E1-E8).

Every bench regenerates one experiment of DESIGN.md's index: it times
the engines with pytest-benchmark and renders the experiment's
table/series into ``benchmarks/out/<experiment>.txt`` so the numbers
recorded in EXPERIMENTS.md can be reproduced from a plain
``pytest benchmarks/ --benchmark-only`` run.

Benches additionally persist their raw numbers as schema-versioned
machine-readable artifacts (``benchmarks/out/BENCH_<name>.json``, see
:func:`write_bench_json`) so dashboards and regression tooling can
diff runs without scraping the text tables.
"""

from __future__ import annotations

import json
import math
import re
import time
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: Version of the ``BENCH_<name>.json`` artifact layout. Bump when a
#: top-level key changes meaning; consumers must check it before
#: diffing payloads across runs.
BENCH_SCHEMA_VERSION = 1


def timed(function, results: dict, key):
    """Wrap ``function`` so each call records its wall-clock seconds."""

    def wrapper():
        started = time.perf_counter()
        value = function()
        results[key] = time.perf_counter() - started
        return value

    return wrapper


def write_report(name: str, text: str) -> Path:
    """Persist a rendered experiment table and echo it to stdout."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
    return path


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist ``payload`` as ``benchmarks/out/BENCH_<name>.json``.

    The artifact is ``{"schema_version": 1, "bench": name, **payload}``
    — deliberately free of timestamps and host identifiers so identical
    runs produce identical files (diff-friendly in CI artifacts).
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"BENCH_{name}.json"
    document = {"schema_version": BENCH_SCHEMA_VERSION, "bench": name}
    document.update(payload)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return path


_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_LINE = re.compile(
    rf"^({_METRIC_NAME})"                       # metric name
    r"(?:\{([^}]*)\})?"                         # optional label set
    r" "                                        # single space
    r"([0-9eE+.\-]+|\+Inf|-Inf|NaN)$")          # value
_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float("nan") if text == "NaN" else float(text)


def check_prometheus_text(text: str) -> list:
    """Validate Prometheus text exposition format 0.0.4; return problems.

    Deliberately self-contained (no ``repro`` import) so the CI
    observability job checks the scrape output against an independent
    reading of the format, not against the renderer's own parser.
    Checks: line grammar, ``# TYPE`` declared before samples and typed
    validly, counter names ending in ``_total``, histogram series
    carrying ``+Inf`` buckets with monotonically non-decreasing
    cumulative counts plus ``_sum``/``_count``.
    """
    problems = []
    types: dict = {}
    # histogram name -> {labels-without-le -> [(le, count)]}
    buckets: dict = {}
    seen_suffixes: dict = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {lineno}: malformed comment "
                                f"{line!r}")
            elif parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                    problems.append(f"line {lineno}: invalid type "
                                    f"{parts[3]!r}")
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name, labels_text, value_text = match.groups()
        labels = {}
        for pair in (labels_text.split(",") if labels_text else ()):
            if not _LABEL.match(pair):
                problems.append(f"line {lineno}: malformed label "
                                f"{pair!r}")
                continue
            key, _, raw = pair.partition("=")
            labels[key] = raw[1:-1]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name.removesuffix(suffix)
            if stripped != name and types.get(stripped) in ("histogram",
                                                            "summary"):
                base = stripped
                seen_suffixes.setdefault(base, set()).add(suffix)
        declared = types.get(base)
        if declared is None:
            problems.append(f"line {lineno}: sample {name!r} has no "
                            f"preceding # TYPE")
            continue
        if declared == "counter" and not name.endswith("_total"):
            problems.append(f"line {lineno}: counter {name!r} does not "
                            f"end in _total")
        value = _parse_value(value_text)
        if declared == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                problems.append(f"line {lineno}: histogram bucket "
                                f"without le label")
                continue
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            buckets.setdefault(base, {}).setdefault(key, []).append(
                (_parse_value(labels["le"]), value))
    for name, series in buckets.items():
        for key, entries in series.items():
            les = [le for le, _ in entries]
            counts = [count for _, count in entries]
            if not les or les[-1] != math.inf:
                problems.append(f"histogram {name}{dict(key)}: no +Inf "
                                f"bucket")
            if any(b < a for a, b in zip(counts, counts[1:])):
                problems.append(f"histogram {name}{dict(key)}: bucket "
                                f"counts decrease")
        missing = {"_sum", "_count"} - seen_suffixes.get(name, set())
        if missing:
            problems.append(f"histogram {name}: missing "
                            f"{sorted(missing)} series")
    return problems
