"""Micro-benchmark: the backend protocol indirection must be free.

The batched kernels call every array op through the ``xp`` namespace
(:mod:`repro.backend`) instead of importing numpy. On the numpy
substrate each ``xp.<op>`` attribute IS the numpy callable, so the
port may cost at most one extra attribute hop per call site. This
bench pairs the E1 workload (symmetric synthetic model, batched
dopri5) run through the shipped substrate against the same workload
with the gpu modules' ``xp`` swapped for a raw numpy namespace built
without :class:`~repro.backend.NumpyBackend`, and gates:

* the median paired wall-clock ratio at 2%, and
* *exact* result equality (``tobytes``) between the two runs — the
  indirection must add nothing numerically, not just nothing
  measurable.

Executed as a plain script by the CI deep-lint job::

    PYTHONPATH=src python benchmarks/bench_backend_overhead.py
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.backend import REQUIRED_OPS, validate_backend, xp
from repro.gpu import BatchSimulator
from repro.model import perturbed_batch
from repro.synth import generate_symmetric

from common import write_bench_json

BATCH_SIZE = 256
REPEATS = 9
SIMS_PER_SAMPLE = 3
MAX_OVERHEAD = 0.02
T_SPAN = (0.0, 2.0)
T_EVAL = np.linspace(0.0, 2.0, 11)

#: Every gpu module that binds ``xp`` at import time.
XP_MODULES = ("batch_dopri5", "batch_radau5", "batch_bdf",
              "batch_result", "batched_ode", "engine", "router")


def raw_numpy_namespace():
    """A protocol-complete namespace assembled straight from numpy —
    the 'what the kernels did before the port' reference point."""

    class _Raw:
        name = "raw-numpy"

    raw = _Raw()
    for op in REQUIRED_OPS:
        if hasattr(np, op):
            setattr(raw, op, getattr(np, op))
    raw.inv = np.linalg.inv
    raw.batched_inv = np.linalg.inv
    raw.norm = np.linalg.norm
    raw.batched_matvec = (
        lambda matrices, vectors: np.einsum("bij,bj->bi",
                                            matrices, vectors))
    return validate_backend(raw)


def swap_backend(namespace) -> dict:
    """Point every gpu module at ``namespace``; returns the previous
    bindings for :func:`restore_backend`."""
    previous = {}
    for name in XP_MODULES:
        module = __import__(f"repro.gpu.{name}", fromlist=[name])
        previous[name] = module.xp
        module.xp = namespace
    return previous


def restore_backend(previous: dict) -> None:
    for name, namespace in previous.items():
        module = __import__(f"repro.gpu.{name}", fromlist=[name])
        module.xp = namespace


def one_run(simulator: BatchSimulator, batch):
    started = time.perf_counter()
    for _ in range(SIMS_PER_SAMPLE):
        result = simulator.simulate(T_SPAN, T_EVAL, batch)
    elapsed = time.perf_counter() - started
    return elapsed / SIMS_PER_SAMPLE, result


def main() -> int:
    model = generate_symmetric(32, seed=11)
    rng = np.random.default_rng(42)
    batch = perturbed_batch(model.nominal_parameterization(), BATCH_SIZE,
                            rng, spread=0.05)
    simulator = BatchSimulator(model, method="dopri5")
    raw = raw_numpy_namespace()

    one_run(simulator, batch)  # warm-up (allocators, caches)

    # Pair the measurements back-to-back and take the median of the
    # per-pair ratios: machine drift hits both sides of a pair alike
    # and cancels. The order inside each pair alternates so whichever
    # side runs second (warmer caches) doesn't get a systematic edge.
    ratios, raw_seconds, backend_seconds = [], [], []
    rows_identical = True
    for repeat in range(REPEATS):
        def timed_raw():
            previous = swap_backend(raw)
            try:
                return one_run(simulator, batch)
            finally:
                restore_backend(previous)

        if repeat % 2 == 0:
            baseline, raw_result = timed_raw()
            through_backend, backend_result = one_run(simulator, batch)
        else:
            through_backend, backend_result = one_run(simulator, batch)
            baseline, raw_result = timed_raw()
        raw_seconds.append(baseline)
        backend_seconds.append(through_backend)
        ratios.append(through_backend / baseline)
        rows_identical &= (
            raw_result.y.tobytes() == backend_result.y.tobytes()
            and raw_result.status_codes.tobytes()
            == backend_result.status_codes.tobytes()
            and raw_result.n_steps.tobytes()
            == backend_result.n_steps.tobytes())

    overhead = float(np.median(ratios)) - 1.0
    print(f"raw numpy     : {min(raw_seconds) * 1e3:8.2f} ms (best)")
    print(f"via backend   : {min(backend_seconds) * 1e3:8.2f} ms (best)")
    print(f"overhead      : {overhead * 100:+7.2f}%  "
          f"(budget {MAX_OVERHEAD * 100:.0f}%)")
    print(f"rows identical: {rows_identical}")
    write_bench_json("backend_overhead", {
        "batch_size": BATCH_SIZE,
        "repeats": REPEATS,
        "sims_per_sample": SIMS_PER_SAMPLE,
        "max_overhead": MAX_OVERHEAD,
        "raw_seconds": raw_seconds,
        "backend_seconds": backend_seconds,
        "ratios": ratios,
        "overhead": overhead,
        "rows_identical": rows_identical,
        "backend": xp.name,
    })
    if not rows_identical:
        print("FAIL: backend indirection changed the E1 result rows")
        return 1
    if overhead > MAX_OVERHEAD:
        print("FAIL: backend indirection is not free on the hot path")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
