"""E1 — headline speedup of the batched engine vs batch size.

Regenerates the paper family's central claim: the batched GPU-style
engine amortizes its overhead over the batch, so its advantage over the
per-simulation CPU loop (SciPy LSODA) grows with the number of parallel
simulations. The report table lists, per batch size, the batched
wall-clock, the (budgeted, extrapolated) LSODA wall-clock, and the
speedup.

Expected shape: speedup < 1 (or ~1) for a single simulation, growing
monotonically with the batch size.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.core.comparison import time_engine
from repro.solvers import SolverOptions
from repro.synth import generate_symmetric

from common import timed, write_bench_json, write_report

BATCH_SIZES = [1, 4, 16, 64, 256]
MODEL = generate_symmetric(32, seed=11)
T_SPAN = (0.0, 2.0)
T_EVAL = np.linspace(0.0, 2.0, 11)
OPTIONS = SolverOptions(max_steps=50_000)

batched_seconds: dict[int, float] = {}
lsoda_seconds: dict[int, float] = {}


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batched_engine(benchmark, batch_size):
    def run():
        seconds, _ = time_engine(MODEL, "batched-hybrid", batch_size,
                                 T_SPAN, T_EVAL, OPTIONS, seed=0)
        batched_seconds[batch_size] = seconds

    benchmark.pedantic(run, rounds=2, iterations=1)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_lsoda_loop(benchmark, batch_size):
    def run():
        seconds, _ = time_engine(MODEL, "lsoda", batch_size, T_SPAN,
                                 T_EVAL, OPTIONS, seed=0,
                                 time_budget_seconds=5.0)
        lsoda_seconds[batch_size] = seconds

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report(benchmark):
    def render():
        rows = []
        for batch_size in BATCH_SIZES:
            batched = batched_seconds.get(batch_size, float("nan"))
            lsoda = lsoda_seconds.get(batch_size, float("nan"))
            rows.append((batch_size, f"{batched * 1e3:.1f} ms",
                         f"{lsoda * 1e3:.1f} ms",
                         f"{lsoda / batched:.1f}x"))
        return format_table(
            ["batch", "batched-hybrid", "lsoda loop", "speedup"], rows)

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    write_report("e1_speedup_vs_batch", table)
    write_bench_json("e1_speedup_vs_batch", {
        "batch_sizes": BATCH_SIZES,
        "batched_seconds": {str(b): batched_seconds.get(b)
                            for b in BATCH_SIZES},
        "lsoda_seconds": {str(b): lsoda_seconds.get(b)
                          for b in BATCH_SIZES},
        "speedups": {str(b): lsoda_seconds[b] / batched_seconds[b]
                     for b in BATCH_SIZES
                     if b in batched_seconds and b in lsoda_seconds},
        "metrics": _traced_metrics(BATCH_SIZES[-2]),
    })
    # Shape assertion: the speedup at the largest batch exceeds the
    # single-simulation speedup.
    largest = lsoda_seconds[BATCH_SIZES[-1]] / batched_seconds[BATCH_SIZES[-1]]
    smallest = lsoda_seconds[1] / batched_seconds[1]
    assert largest > smallest


def _traced_metrics(batch_size: int) -> dict:
    """Kernel metrics of one instrumented headline run, embedded in the
    artifact so a speedup shift can be attributed (step counts vs
    per-step cost) without re-running under a profiler."""
    from repro.gpu import BatchSimulator
    from repro.model import perturbed_batch

    batch = perturbed_batch(MODEL.nominal_parameterization(), batch_size,
                            np.random.default_rng(0))
    simulator = BatchSimulator(MODEL, OPTIONS)
    simulator.simulate(T_SPAN, T_EVAL, batch)
    return simulator.last_report.metrics.to_dict()
