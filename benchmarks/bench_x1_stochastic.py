"""X1 (extension) — stochastic substrate: SSA vs tau-leaping.

The simulator family's ecosystem pairs the deterministic engine with
coarse-grained stochastic engines (SSA and cuTauLeaping). This
extension bench regenerates their two standard claims on our batched
substrate:

* the tau-leaping accelerator compresses the exact event stream by
  orders of magnitude at large molecule populations while preserving
  the ensemble mean;
* batched ensembles scale sub-linearly in the number of replicas
  (the coarse-grained axis amortizes kernel work).
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.core import simulate
from repro.models import dimerization
from repro.stochastic import StochasticSimulator

from common import timed, write_report

GRID = np.linspace(0.0, 3.0, 7)
MODEL = dimerization(bind=2.0, unbind=1.0, initial=1.0)

state = {}


@pytest.mark.parametrize("method", ["ssa", "tau-leaping"])
def test_method_at_large_volume(benchmark, method):
    simulator = StochasticSimulator(MODEL, volume=10_000.0, method=method,
                                    seed=0)

    def run():
        result = simulator.simulate((0.0, 3.0), GRID, n_replicates=8)
        state[method] = result
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.all_success


@pytest.mark.parametrize("replicas", [8, 32, 128])
def test_ensemble_scaling(benchmark, replicas):
    simulator = StochasticSimulator(MODEL, volume=300.0, method="ssa",
                                    seed=1)
    results = state.setdefault("scaling", {})

    def run():
        result = simulator.simulate((0.0, 3.0), GRID,
                                    n_replicates=replicas)
        results[replicas] = result.elapsed_seconds
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_report(benchmark):
    deterministic = simulate(MODEL, (0.0, 3.0), GRID)

    def render():
        lines = ["tau-leaping vs exact SSA at volume 10000 "
                 "(8 replicas each):", ""]
        rows = []
        for method in ("ssa", "tau-leaping"):
            result = state[method]
            work = float((result.n_events + result.n_leaps).mean())
            error = np.max(np.abs(result.ensemble_mean()
                                  - deterministic.y[0])
                           / (np.abs(deterministic.y[0]) + 1e-3))
            rows.append((method, f"{result.elapsed_seconds:.3f} s",
                         f"{work:.0f}", f"{error:.4f}"))
        lines.append(format_table(
            ["method", "wall clock", "steps/replica", "mean err vs ODE"],
            rows))
        lines.append("")
        lines.append("batched ensemble scaling (SSA, volume 300):")
        scaling = state["scaling"]
        base = scaling[8] / 8
        for replicas in (8, 32, 128):
            per_replica = scaling[replicas] / replicas
            lines.append(f"  {replicas:4d} replicas: "
                         f"{scaling[replicas]:.3f} s total, "
                         f"{per_replica * 1e3:.2f} ms/replica "
                         f"({per_replica / base:.2f}x of the 8-replica "
                         "cost)")
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    write_report("x1_stochastic", text)

    # Shape assertions.
    ssa_work = float((state["ssa"].n_events + state["ssa"].n_leaps).mean())
    tau_work = float((state["tau-leaping"].n_events
                      + state["tau-leaping"].n_leaps).mean())
    assert tau_work < ssa_work / 10.0
    for method in ("ssa", "tau-leaping"):
        error = np.max(np.abs(state[method].ensemble_mean()
                              - deterministic.y[0])
                       / (np.abs(deterministic.y[0]) + 1e-3))
        assert error < 0.05
    # Amortization: per-replica cost does not grow with the ensemble.
    scaling = state["scaling"]
    assert scaling[128] / 128 <= scaling[8] / 8 * 1.5
