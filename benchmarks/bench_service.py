"""Multi-tenant campaign-service load generator and fairness gate.

Drives :class:`repro.service.CampaignService` with a storm of small
synthetic campaigns — 240 jobs across 4 symmetric tenants by default
(plus a misbehaving "flood" tenant whose quota rejects most of its
burst) — under injected scheduler faults (kills and hangs addressed by
admission index), client cancellations and queued-past-deadline jobs,
then audits the wreckage::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke]

Three assertions gate the run (the CI ``service-chaos`` job executes
``--smoke``, a 48-job variant of the same storm):

* **no job lost** — every admitted job sits in exactly one terminal
  state and ``admitted == completed + shed + cancelled + quarantined``
  (and ``submitted == admitted + rejected``);
* **fair shares** — Jain's fairness index over the symmetric tenants'
  weight-normalized granted rows stays >= 0.9;
* **every fault observed** — the injected kill/hang count is reflected
  in ``service.jobs.faults``.

The numbers land in ``benchmarks/out/BENCH_service.json``: per-state
counts, Jain index, p50/p99 queue-wait seconds and throughput.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

import numpy as np

from repro.errors import AdmissionError
from repro.model import perturbed_batch
from repro.models import lotka_volterra
from repro.resilience import FaultPlan
from repro.service import (CampaignService, JobRequest, JobState,
                           ServiceConfig, TenantQuota)

from common import write_bench_json

MODEL = lotka_volterra()
T_SPAN = (0.0, 2.0)
T_EVAL = np.linspace(0.0, 2.0, 5)
TENANTS = ("alpha", "bravo", "charlie", "delta")
ROWS_PER_JOB = 4
CHUNK_SIZE = 2
FLOOD_JOBS = 12
FLOOD_QUOTA = 4
DOOMED_JOBS = 8
CANCELLED_JOBS = 6
FAULT_STRIDE = 16          # every 16th admitted job is killed or hung
MIN_JAIN = 0.9


def jain(values) -> float:
    values = [float(v) for v in values]
    total = sum(values)
    squares = sum(v * v for v in values)
    return total * total / (len(values) * squares) if squares else 1.0


def build_config(n_jobs: int) -> ServiceConfig:
    return ServiceConfig(
        max_running_jobs=6,
        max_inflight_chunks=8,
        queue_capacity=n_jobs + DOOMED_JOBS + FLOOD_QUOTA + 8,
        default_quota=TenantQuota(max_queued=n_jobs,
                                  max_inflight_chunks=4),
        quotas={"flood": TenantQuota(max_queued=FLOOD_QUOTA)},
        max_job_attempts=2,
        attempt_timeout=0.5,
    )


def build_fault_plan(n_jobs: int) -> FaultPlan:
    return FaultPlan(
        sched_kill_jobs=tuple(range(5, n_jobs, FAULT_STRIDE)),
        sched_hang_jobs=tuple(range(11, n_jobs, FAULT_STRIDE)),
    )


def request(tenant: str, batch, priority: int, **kwargs) -> JobRequest:
    return JobRequest(model=MODEL, t_span=T_SPAN, t_eval=T_EVAL,
                      parameters=batch, chunk_size=CHUNK_SIZE,
                      tenant=tenant, priority=priority, **kwargs)


async def drive(n_jobs: int):
    """Submit the storm, cancel a few victims, drain, return the
    service plus the records of every submission."""
    config = build_config(n_jobs)
    plan = build_fault_plan(n_jobs)
    service = CampaignService(config=config, fault_plan=plan)
    rng = np.random.default_rng(2024)
    batch = perturbed_batch(MODEL.nominal_parameterization(),
                            ROWS_PER_JOB, rng, spread=0.05)
    await service.start()

    admitted = []
    rejections = 0
    # the main storm: symmetric tenants, rotating priorities
    for index in range(n_jobs):
        job = service.submit(request(TENANTS[index % len(TENANTS)],
                                     batch, priority=index % 3))
        admitted.append(job)
    # doomed stragglers: lowest priority, deadline far shorter than the
    # drain time of the queue ahead of them -> shed while queued
    for index in range(DOOMED_JOBS):
        admitted.append(service.submit(
            request(TENANTS[index % len(TENANTS)], batch, priority=-5,
                    deadline_seconds=0.05)))
    # the flood tenant bursts past its own quota
    for _ in range(FLOOD_JOBS):
        try:
            admitted.append(service.submit(
                request("flood", batch, priority=0)))
        except AdmissionError:
            rejections += 1
    # client cancels a deterministic spread of still-queued storm jobs
    # (stride 7 touches every tenant), picked off the fault grid so
    # every injected fault still fires
    faulted = set(plan.sched_kill_jobs) | set(plan.sched_hang_jobs)
    victims = [admitted[index] for index in range(3, n_jobs, 7)
               if index not in faulted]
    for job in victims[:CANCELLED_JOBS]:
        service.cancel(job.job_id)

    await service.drain()
    await service.stop()
    return service, admitted, rejections


def audit(service, admitted, rejections, n_jobs, elapsed):
    counters = service.metrics.counters
    failures = []

    states = {}
    for job in admitted:
        states[job.state] = states.get(job.state, 0) + 1
        if not job.terminal:
            failures.append(f"job {job.job_id} not terminal: {job.state}")
    terminal_sum = sum(
        counters.get(f"service.jobs.{state}", 0)
        for state in (JobState.COMPLETED, JobState.SHED,
                      JobState.CANCELLED, JobState.QUARANTINED))
    if counters.get("service.jobs.admitted", 0) != terminal_sum:
        failures.append(
            f"conservation broken: admitted "
            f"{counters.get('service.jobs.admitted')} != terminal "
            f"{terminal_sum}")
    if counters.get("service.jobs.submitted", 0) != \
            counters.get("service.jobs.admitted", 0) \
            + counters.get("service.jobs.rejected", 0):
        failures.append("submitted != admitted + rejected")
    if counters.get("service.jobs.rejected", 0) != rejections:
        failures.append("rejected counter disagrees with raised errors")

    plan = service.fault_plan
    injected = len(plan.sched_kill_jobs) + len(plan.sched_hang_jobs)
    if counters.get("service.jobs.faults", 0) < injected:
        failures.append(
            f"only {counters.get('service.jobs.faults', 0)} of "
            f"{injected} injected faults observed")

    stats = service.scheduler.stats()
    shares = [stats[tenant]["granted_rows"] / stats[tenant]["weight"]
              for tenant in TENANTS]
    fairness = jain(shares)
    if fairness < MIN_JAIN:
        failures.append(f"Jain index {fairness:.3f} < {MIN_JAIN}")

    waits = sorted(job.wait_seconds for job in admitted
                   if job.wait_seconds is not None)
    p50, p99 = (float(np.percentile(waits, 50)),
                float(np.percentile(waits, 99))) if waits else (0.0, 0.0)
    completed = states.get(JobState.COMPLETED, 0)
    degraded = sum(1 for job in admitted if job.degraded)

    print(f"jobs: {n_jobs} main + {DOOMED_JOBS} doomed + {FLOOD_JOBS} "
          f"flood across {len(TENANTS)}+1 tenants")
    print(f"states: " + ", ".join(f"{state}={count}" for state, count
                                  in sorted(states.items()))
          + f", rejected={rejections}")
    print(f"faults injected/observed: {injected}/"
          f"{counters.get('service.jobs.faults', 0)}, "
          f"degraded jobs: {degraded}")
    print(f"tenant rows: " + ", ".join(
        f"{tenant}={stats[tenant]['granted_rows']}"
        for tenant in TENANTS))
    print(f"Jain fairness: {fairness:.4f}  (gate >= {MIN_JAIN})")
    print(f"queue wait: p50 {p50 * 1e3:.1f} ms, p99 {p99 * 1e3:.1f} ms")
    print(f"throughput: {completed / elapsed:.1f} completed jobs/s "
          f"({elapsed:.2f} s wall)")

    payload = {
        "workload": {"model": MODEL.name, "n_jobs": n_jobs,
                     "doomed_jobs": DOOMED_JOBS,
                     "flood_jobs": FLOOD_JOBS,
                     "rows_per_job": ROWS_PER_JOB,
                     "chunk_size": CHUNK_SIZE,
                     "tenants": list(TENANTS)},
        "states": dict(sorted(states.items())),
        "rejected": rejections,
        "faults_injected": injected,
        "faults_observed": counters.get("service.jobs.faults", 0),
        "degraded_jobs": degraded,
        "jain_fairness": fairness,
        "tenant_granted_rows": {tenant: stats[tenant]["granted_rows"]
                                for tenant in TENANTS},
        "wait_seconds": {"p50": p50, "p99": p99},
        "elapsed_seconds": elapsed,
        "jobs_per_second": completed / elapsed,
        "conserved": not failures,
    }
    return failures, payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="48-job variant for CI")
    parser.add_argument("--jobs", type=int, default=None,
                        help="override the main-storm job count")
    args = parser.parse_args()
    n_jobs = args.jobs if args.jobs is not None \
        else (48 if args.smoke else 240)

    started = time.perf_counter()
    service, admitted, rejections = asyncio.run(drive(n_jobs))
    elapsed = time.perf_counter() - started

    failures, payload = audit(service, admitted, rejections, n_jobs,
                              elapsed)
    write_bench_json("service", payload)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
