"""E4 — PSA-2D oscillation-amplitude map on an oscillatory model.

Regenerates the paper family's two-parameter sweep of an oscillatory
network (their autophagy/translation switch; here the Brusselator,
whose Hopf boundary b = 1 + a^2 is analytic — see DESIGN.md for the
substitution). Reports the amplitude map, its agreement with theory,
and the simulations-per-time-budget comparison against the sequential
LSODA loop.

Expected shape: the batched engine completes the whole map orders of
magnitude faster than the LSODA loop completes it; the computed
oscillating region matches the analytic boundary.
"""

import numpy as np
import pytest

from repro.core import (ParameterRange, SequentialSimulator, SweepTarget,
                        amplitude_metric, run_psa_2d)
from repro.core.psa import build_sweep_batch
from repro.models import brusselator, oscillates
from repro.solvers import SolverOptions

from common import write_report

GRID = 10
T_END = 60.0
T_EVAL = np.linspace(0.0, T_END, 301)
OPTIONS = SolverOptions(max_steps=100_000)

state = {}


def test_psa2d_batched(benchmark):
    model = brusselator()
    target_a = SweepTarget.rate_constant(model, 0, ParameterRange(0.4, 1.8))
    target_b = SweepTarget.rate_constant(model, 2, ParameterRange(0.4, 5.5))

    def run():
        return run_psa_2d(model, target_a, target_b, GRID, GRID,
                          (0.0, T_END), T_EVAL,
                          metric=amplitude_metric(model, "X"),
                          options=OPTIONS)

    psa = benchmark.pedantic(run, rounds=1, iterations=1)
    state["psa"] = psa
    state["model"] = model
    state["targets"] = (target_a, target_b)
    state["batched_seconds"] = psa.simulation.elapsed_seconds
    assert psa.simulation.all_success


def test_psa2d_lsoda_budget(benchmark):
    psa = state["psa"]
    model = state["model"]
    target_a, target_b = state["targets"]
    pairs = np.stack(np.meshgrid(psa.values_x, psa.values_y,
                                 indexing="ij"), axis=-1).reshape(-1, 2)
    batch = build_sweep_batch(model, [target_a, target_b], pairs)
    budget = max(state["batched_seconds"], 0.2)
    holder = {}

    def run():
        simulator = SequentialSimulator(model, OPTIONS, "lsoda")
        result = simulator.simulate((0.0, T_END), T_EVAL, batch,
                                    time_budget_seconds=budget)
        holder["completed"] = sum(s == "success"
                                  for s in result.statuses())

    benchmark.pedantic(run, rounds=1, iterations=1)
    state["lsoda_completed"] = holder["completed"]


def test_report(benchmark):
    def render():
        psa = state["psa"]
        agreement = sum(
            (psa.metric_map[i, j] > 0) == oscillates(psa.values_x[i],
                                                     psa.values_y[j])
            for i in range(GRID) for j in range(GRID))
        lines = [
            f"grid                : {GRID} x {GRID} = {GRID * GRID} sims",
            f"batched wall clock  : {state['batched_seconds']:.2f} s",
            f"boundary agreement  : {agreement}/{GRID * GRID} cells",
            f"LSODA sims in the same budget: "
            f"{state['lsoda_completed']}/{GRID * GRID}",
            "",
            "amplitude map (rows b descending, cols a ascending; "
            "# oscillating):",
        ]
        for j in reversed(range(GRID)):
            row = "".join("#" if psa.metric_map[i, j] > 0 else "."
                          for i in range(GRID))
            lines.append(f"  b={psa.values_y[j]:4.2f} {row}")
        return "\n".join(lines), agreement

    (text, agreement) = benchmark.pedantic(render, rounds=1, iterations=1)
    write_report("e4_psa2d", text)
    assert agreement >= 0.8 * GRID * GRID
    assert state["lsoda_completed"] < GRID * GRID
