"""E2 — comparison map over symmetric RBMs (N = M).

Regenerates the paper family's symmetric comparison map: for a grid of
model sizes x batch sizes, every engine (CPU LSODA/VODE loops, and the
batched engine under its three granularity policies) is timed on the
same perturbed workload, and the fastest engine wins the cell.

Expected shape: the sequential CPU loop wins only the single-simulation
small-model corner; the batched engine wins everywhere else, with the
break-even frontier moving toward smaller models as the batch grows.
"""

import numpy as np
import pytest

from repro.core import run_comparison_map
from repro.solvers import SolverOptions
from repro.synth import generate_symmetric

from common import write_report

SIZES = [8, 16, 32, 64]
BATCHES = [1, 16, 128]
ENGINES = ("lsoda", "vode", "batched-hybrid", "batched-coarse",
           "batched-fine")
OPTIONS = SolverOptions(max_steps=50_000)
T_EVAL = np.linspace(0.0, 1.0, 6)

MODELS = [(f"{size}x{size}", generate_symmetric(size, seed=21))
          for size in SIZES]


def test_symmetric_map(benchmark):
    holder = {}

    def run():
        holder["map"] = run_comparison_map(
            MODELS, BATCHES, (0.0, 1.0), T_EVAL, engines=ENGINES,
            options=OPTIONS, seed=0, time_budget_seconds=4.0)
        return holder["map"]

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [comparison.render(), "", "cell timings (seconds):"]
    for label, _ in MODELS:
        for batch in BATCHES:
            cell = comparison.cells[(label, batch)]
            timings = "  ".join(f"{engine}={seconds:.3f}"
                                for engine, seconds in
                                sorted(cell.seconds.items()))
            lines.append(f"  {label:>8s} x{batch:<4d} {timings}")
    write_report("e2_map_symmetric", "\n".join(lines))

    # Shape assertions: CPU wins the small single-sim corner, the
    # batched engine wins the large-batch column everywhere.
    assert comparison.best("8x8", 1) in ("lsoda", "vode")
    for label, _ in MODELS:
        assert comparison.best(label, 128).startswith("batched")
