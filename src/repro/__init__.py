"""Accelerated analysis of biological parameter space.

A from-scratch reproduction of the GPU-powered deterministic-simulation
workflow for reaction-based models (RBMs): batches of independent ODE
simulations — one per point of a parameter space — are executed on a
vectorized (GPU-style) substrate with per-simulation DOPRI5 / Radau IIA
method routing, and feed the classic Systems Biology analyses:
Parameter Sweep Analysis, Sobol Sensitivity Analysis and Parameter
Estimation.

Quickstart::

    import numpy as np
    from repro import ReactionBasedModel, simulate

    model = ReactionBasedModel("toy")
    model.add_species("A", 1.0)
    model.add("A -> B @ 0.5")
    result = simulate(model, (0.0, 10.0), np.linspace(0, 10, 51))
    print(result.species("B")[0])

See DESIGN.md for the system inventory and the hardware-substitution
rationale (the GPU is modeled by a batched NumPy execution substrate).
"""

from .core import (FreeParameter, ParameterEstimation, ParameterRange,
                   SequentialSimulator, SimulationResult, SweepTarget,
                   amplitude_metric, analyze_model, endpoint_metric,
                   find_steady_state, run_bifurcation_scan,
                   run_comparison_map, run_morris_screening, run_psa_1d,
                   run_psa_2d, run_sobol_sa, simulate, synthetic_target)
from .gpu import BatchSimulator, TITAN_X, VirtualDevice
from .guards import (GuardConfig, GuardLog, GuardViolation, InvariantMonitor,
                     KernelGuard, MemoryGovernor, project_nonnegative)
from .lint import (ALL_RULES, LintFinding, LintReport, lint_gate,
                   lint_kernels, lint_model, stiffness_risk_score)
from .resilience import (CampaignConfig, CampaignResult, FailureRecord,
                         FaultPlan, QuarantineLog, RetryPolicy, RetryStage,
                         default_retry_policy, run_campaign)
from .stochastic import StochasticSimulator
from .telemetry import (CalibrationReport, CalibrationTable, MetricsHub,
                        MetricsRegistry, SLOTracker, TenantSLO, Tracer,
                        read_trace_jsonl, render_prometheus,
                        validate_trace, write_chrome_trace)
from .model import (Hill, MassAction, MichaelisMenten, ODESystem,
                    Parameterization, ParameterizationBatch,
                    ReactionBasedModel, Reaction, Species, parse_reaction,
                    perturbed_batch)
from .solvers import SolverOptions

_SERVICE_NAMES = ("CampaignService", "JobRequest", "ServiceConfig",
                  "TenantQuota", "submit_campaign")

__version__ = "1.0.0"


def __getattr__(name: str):
    # The serving layer sits above everything else (asyncio, sockets),
    # so it loads lazily — importing repro stays cheap for library use.
    if name in _SERVICE_NAMES:
        from . import service
        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "FreeParameter", "ParameterEstimation", "ParameterRange",
    "SequentialSimulator", "SimulationResult", "SweepTarget",
    "amplitude_metric", "analyze_model", "endpoint_metric",
    "find_steady_state", "run_bifurcation_scan", "run_comparison_map",
    "run_morris_screening", "run_psa_1d", "run_psa_2d", "run_sobol_sa",
    "simulate", "synthetic_target",
    "BatchSimulator", "TITAN_X", "VirtualDevice", "StochasticSimulator",
    "GuardConfig", "GuardLog", "GuardViolation", "InvariantMonitor",
    "KernelGuard", "MemoryGovernor", "project_nonnegative",
    "ALL_RULES", "LintFinding", "LintReport", "lint_gate", "lint_kernels",
    "lint_model", "stiffness_risk_score",
    "CampaignConfig", "CampaignResult", "FailureRecord", "FaultPlan",
    "QuarantineLog", "RetryPolicy", "RetryStage", "default_retry_policy",
    "run_campaign",
    "CalibrationReport", "CalibrationTable", "MetricsHub",
    "MetricsRegistry", "SLOTracker", "TenantSLO", "Tracer",
    "read_trace_jsonl", "render_prometheus", "validate_trace",
    "write_chrome_trace",
    "Hill", "MassAction", "MichaelisMenten", "ODESystem",
    "Parameterization", "ParameterizationBatch", "ReactionBasedModel",
    "Reaction", "Species", "parse_reaction", "perturbed_batch",
    "SolverOptions",
    *_SERVICE_NAMES,
    "__version__",
]
