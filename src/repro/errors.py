"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ModelError(ReproError):
    """A reaction-based model is structurally invalid."""


class KineticsError(ModelError):
    """A kinetic law is malformed or incompatible with its reaction."""


class ParseError(ReproError):
    """A textual model description could not be parsed."""


class SolverError(ReproError):
    """Numerical integration failed or was configured inconsistently."""


class ConvergenceError(SolverError):
    """An iterative method (Newton, power iteration) did not converge."""


class AnalysisError(ReproError):
    """A parameter-space analysis was configured inconsistently."""


class FormatError(ReproError):
    """A model file (BioSimWare folder, SBML document) is malformed."""


class LintError(ReproError):
    """Static analysis failed or found findings above the configured
    severity threshold (see :mod:`repro.lint`)."""


class LintGateError(LintError):
    """A lint gate refused to launch: findings at or above the gate's
    severity threshold.

    Distinct from :class:`LintError` (which also covers analyzer
    malfunctions such as unreadable sources) so that callers — and the
    CLI exit-code contract — can tell "the gate correctly rejected this
    subject" from "the linter itself crashed". Carries the offending
    :class:`~repro.lint.report.LintReport` as ``report``.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class BackendError(ReproError):
    """An array backend does not satisfy the substrate protocol —
    required ops are missing — or a backend was requested under an
    unknown name (see :mod:`repro.backend`)."""


class ResilienceError(ReproError):
    """A resilience component (retry policy, fault plan, campaign
    checkpoint, shard-executor configuration) is misconfigured, or a
    journal is inconsistent with the campaign it claims to belong to —
    a mismatched fingerprint (including differing solver numerics) or a
    corrupt chunk archive (see :mod:`repro.resilience`)."""


class GuardError(ReproError):
    """A numerical-integrity guard is misconfigured, or the memory
    governor determined that a launch cannot fit the device at any
    split (see :mod:`repro.guards`)."""


class TelemetryError(ReproError):
    """The telemetry layer was misused or fed a malformed artifact.

    Raised when a span nests under an incompatible category, a span
    handle is ended twice, a metric name is reused across instrument
    kinds, or a trace file contains records that do not parse as spans
    (see :mod:`repro.telemetry`).
    """


class ServiceError(ReproError):
    """The multi-tenant campaign service was misused or misconfigured
    (see :mod:`repro.service`): an invalid quota or scheduler setting,
    a request against a stopped service, or an operation on an unknown
    job id."""


class AdmissionError(ServiceError):
    """The service refused to admit a job at submission time.

    Base class for all typed rejections; carries the ``tenant`` the
    decision applied to. Callers that do not care which limit fired
    can catch this single class.
    """

    def __init__(self, message: str, tenant: str = "") -> None:
        super().__init__(message)
        self.tenant = tenant


class QuotaExceeded(AdmissionError):
    """The submitting tenant is at its ``max_queued`` job quota."""


class QueueFull(AdmissionError):
    """The global queue is at capacity and no queued job has strictly
    lower priority than the new one, so nothing could be shed to make
    room."""


class WorkingSetExceeded(AdmissionError):
    """The job's estimated working set (from
    :func:`repro.gpu.perfmodel.memory_footprint_doubles`) exceeds the
    tenant's ``working_set_doubles`` budget."""


class CampaignInterrupted(ResilienceError):
    """A chunked campaign stopped before all launches completed.

    Raised on an injected crash (:class:`repro.resilience.FaultPlan`)
    or a ``KeyboardInterrupt`` during campaign execution — by the
    serial loop and the supervised shard executor alike. Launches that
    finished before the interruption are already journaled, so re-running
    the same campaign with the same checkpoint path resumes instead of
    recomputing them.
    """

    def __init__(self, message: str, checkpoint_path=None,
                 completed_chunks: int = 0) -> None:
        super().__init__(message)
        self.checkpoint_path = checkpoint_path
        self.completed_chunks = completed_chunks
