"""Per-simulation stiffness routing (the phase-P2 analog).

Before integrating, every simulation's Jacobian at its initial state is
probed by batched power iteration; simulations whose spectral radius
exceeds the configured threshold are routed to the batched Radau IIA
solver, the rest to batched DOPRI5. Simulations that DOPRI5 fails to
finish (step-budget exhaustion or breakdown — the usual symptom of
undetected stiffness) are *re-executed* with Radau IIA, mirroring the
paper family's fallback re-run of failed explicit simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..backend import Array, xp
from ..lint.model_rules import STIFFNESS_SAFE_DECADES, stiffness_risk_score
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions
from ..solvers.stiffness import power_iteration_matvec
from .batch_dopri5 import BatchDopri5
from .batch_radau5 import BatchRadau5
from .batch_result import (METHOD_DOPRI5, OK, BatchSolveResult,
                           allocate_result)
from .batched_ode import BatchedODEProblem


@dataclass(frozen=True)
class RoutingDecision:
    """Outcome of the stiffness classification of a batch.

    Attributes
    ----------
    stiff_mask:
        Boolean per-simulation stiff/non-stiff classification.
    spectral_radii:
        Dominant-eigenvalue magnitude estimates, shape (B,). All zero
        when the probe was skipped.
    threshold:
        The cutoff the mask was computed against.
    probe_skipped:
        True when the static stiffness-risk prefilter (see
        :func:`repro.lint.model_rules.stiffness_risk_score`) classified
        the whole batch as safely non-stiff, so the power-iteration
        probe never ran.
    stiff_method:
        Implicit solver the stiff rows (and failed-row re-executions)
        were sent to — ``"radau5"`` by default, ``"bdf"`` when a
        calibrated cost model said BDF is cheaper for this bucket.
    """

    stiff_mask: Array
    spectral_radii: Array
    threshold: float
    probe_skipped: bool = False
    stiff_method: str = "radau5"

    @property
    def n_stiff(self) -> int:
        return int(xp.sum(self.stiff_mask))

    def to_dict(self) -> dict:
        return {"stiff_mask": [bool(v) for v in self.stiff_mask],
                "spectral_radii": [float(v) for v in self.spectral_radii],
                "threshold": float(self.threshold),
                "probe_skipped": bool(self.probe_skipped),
                "stiff_method": str(self.stiff_method)}

    @classmethod
    def from_dict(cls, data: dict) -> "RoutingDecision":
        return cls(xp.asarray(data["stiff_mask"], dtype=bool),
                   xp.asarray(data["spectral_radii"], dtype=xp.float64),
                   float(data["threshold"]),
                   bool(data.get("probe_skipped", False)),
                   str(data.get("stiff_method", "radau5")))


def classify_batch(problem: BatchedODEProblem, t0: float,
                   threshold: float,
                   initial_states: Array | None = None,
                   static_risk: float | None = None) -> RoutingDecision:
    """Stiffness classification of every simulation in a batch.

    Uses a matrix-free power iteration on the Jacobian action
    (finite-difference directional derivatives of the batched RHS), so
    the probe costs a handful of RHS kernel launches instead of a full
    (B, N, N) Jacobian assembly.

    ``static_risk`` is the linter's static stiffness-risk score for the
    batch (decades spanned by the rate constants). When it is below
    :data:`~repro.lint.model_rules.STIFFNESS_SAFE_DECADES` the whole
    batch is classified non-stiff without running the probe; this is
    safe because DOPRI5 detects stiffness at run time and the router
    re-executes any failed simulation with Radau IIA.
    """
    if static_risk is not None and static_risk < STIFFNESS_SAFE_DECADES:
        batch = problem.batch_size
        return RoutingDecision(xp.zeros(batch, dtype=bool),
                               xp.zeros(batch), threshold,
                               probe_skipped=True)
    states = (problem.initial_states() if initial_states is None
              else xp.asarray(initial_states, dtype=xp.float64))
    rows = xp.arange(problem.batch_size)
    times = xp.full(rows.size, t0)
    base = problem.fun(times, states, rows)
    scale = 1e-7 * (xp.norm(states, axis=1, keepdims=True) + 1.0)

    def jacobian_action(directions: Array) -> Array:
        probes = states + scale * directions
        return (problem.fun(times, probes, rows) - base) / scale

    estimate = power_iteration_matvec(jacobian_action, states)
    return RoutingDecision(estimate.spectral_radius > threshold,
                           estimate.spectral_radius, threshold)


class StiffnessRouter:
    """Route each simulation to DOPRI5 or Radau IIA and merge results."""

    name = "router"

    def __init__(self, options: SolverOptions = DEFAULT_OPTIONS,
                 retry_failed_with_radau: bool = True,
                 use_static_prefilter: bool = True,
                 cost_model=None) -> None:
        self.options = options
        self.retry_failed_with_radau = retry_failed_with_radau
        self.use_static_prefilter = use_static_prefilter
        # Optional fitted CalibrationReport (or anything exposing
        # ``preferred_stiff_method(rows, n_species)``): lets measured
        # per-row cost pick the implicit rung instead of the Radau
        # default. No model / no evidence -> behavior is unchanged.
        self.cost_model = cost_model

    def _implicit_solver(self, batch_size: int, n_species: int):
        """Implicit solver class + name for this batch shape."""
        if self.cost_model is not None:
            preferred = self.cost_model.preferred_stiff_method(
                batch_size, n_species)
            if preferred == "bdf":
                from .batch_bdf import BatchBDF
                return BatchBDF, "bdf"
        return BatchRadau5, "radau5"

    def solve(self, problem: BatchedODEProblem, t_span: tuple[float, float],
              t_eval: Array | None = None,
              initial_states: Array | None = None
              ) -> tuple[BatchSolveResult, RoutingDecision]:
        """Integrate a batch with per-simulation method selection."""
        static_risk = None
        if self.use_static_prefilter and self.retry_failed_with_radau:
            static_risk = stiffness_risk_score(
                problem.parameters.rate_constants)
        decision = classify_batch(problem, float(t_span[0]),
                                  self.options.stiffness_threshold,
                                  initial_states, static_risk)
        states = (problem.initial_states() if initial_states is None
                  else xp.asarray(initial_states, dtype=xp.float64))

        batch = problem.batch_size
        if t_eval is None:
            t_eval = xp.array([float(t_span[0]), float(t_span[1])])
        t_eval = xp.asarray(t_eval, dtype=xp.float64)
        merged = allocate_result(t_eval, batch, problem.n_species,
                                 METHOD_DOPRI5)
        merged.counters = problem.counters

        nonstiff_rows = xp.flatnonzero(~decision.stiff_mask)
        stiff_rows = xp.flatnonzero(decision.stiff_mask)
        implicit_cls, stiff_method = self._implicit_solver(
            batch, problem.n_species)
        decision = replace(decision, stiff_method=stiff_method)

        if nonstiff_rows.size:
            explicit = BatchDopri5(
                self.options,
                abort_on_stiffness=self.retry_failed_with_radau).solve(
                    problem.subset(nonstiff_rows), t_span, t_eval,
                    states[nonstiff_rows])
            self._splice(merged, explicit, nonstiff_rows)
            if self.retry_failed_with_radau:
                failed_rows = nonstiff_rows[explicit.status_codes != OK]
                if failed_rows.size:
                    retried = implicit_cls(self.options).solve(
                        problem.subset(failed_rows), t_span, t_eval,
                        states[failed_rows])
                    self._splice(merged, retried, failed_rows)
        if stiff_rows.size:
            implicit = implicit_cls(self.options).solve(
                problem.subset(stiff_rows), t_span, t_eval,
                states[stiff_rows])
            self._splice(merged, implicit, stiff_rows)
        return merged, decision

    @staticmethod
    def _splice(merged: BatchSolveResult, part: BatchSolveResult,
                rows: Array) -> None:
        merged.y[rows] = part.y
        merged.status_codes[rows] = part.status_codes
        merged.method_codes[rows] = part.method_codes
        merged.n_steps[rows] += part.n_steps
        merged.n_accepted[rows] += part.n_accepted
        merged.n_rejected[rows] += part.n_rejected
