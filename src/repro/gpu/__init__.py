"""GPU-style batched execution substrate (see DESIGN.md for the
hardware substitution rationale)."""

from .batch_bdf import BatchBDF
from .batch_dopri5 import BatchDopri5
from .batch_radau5 import BatchRadau5
from .batch_result import (BROKEN, EXHAUSTED, GUARD, METHOD_DOPRI5,
                           METHOD_RADAU5, METHOD_NAMES, OK, RUNNING,
                           STATUS_NAMES, STIFF, BatchSolveResult,
                           allocate_result)
from .batched_ode import BatchedODEProblem, KernelCounters
from .device import DEVICES, GTX_1650, TITAN_X, VirtualDevice
from .engine import METHODS, BatchSimulator, EngineReport
from .perfmodel import (DeviceTimeEstimate, estimate_device_time,
                        fits_device, memory_footprint_doubles, occupancy)
from .router import RoutingDecision, StiffnessRouter, classify_batch

__all__ = [
    "BatchBDF", "BatchDopri5", "BatchRadau5",
    "BROKEN", "EXHAUSTED", "GUARD", "METHOD_DOPRI5", "METHOD_RADAU5",
    "METHOD_NAMES", "OK", "RUNNING", "STATUS_NAMES", "STIFF",
    "BatchSolveResult", "allocate_result",
    "BatchedODEProblem", "KernelCounters",
    "DEVICES", "GTX_1650", "TITAN_X", "VirtualDevice",
    "METHODS", "BatchSimulator", "EngineReport",
    "DeviceTimeEstimate", "estimate_device_time", "fits_device",
    "memory_footprint_doubles", "occupancy",
    "RoutingDecision", "StiffnessRouter", "classify_batch",
]
