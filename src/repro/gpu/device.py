"""Virtual GPU device descriptions.

No physical GPU is available in this reproduction (see DESIGN.md), so
the device is modeled analytically: a :class:`VirtualDevice` captures
the architectural parameters that drive the performance of the paper
family's simulators — core count, clock, memory latencies and the
kernel-launch overheads (including the extra cost of dynamic-parallelism
child launches). The performance model in
:mod:`repro.gpu.perfmodel` uses these figures to convert the substrate's
kernel counters into *estimated device times*, which the comparison
benches can report next to honest wall-clock measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SolverError


@dataclass(frozen=True)
class VirtualDevice:
    """Architectural description of a modeled accelerator.

    Attributes
    ----------
    name:
        Marketing name of the modeled device.
    cores:
        Number of scalar cores (CUDA cores).
    clock_ghz:
        Core clock in GHz.
    memory_gb:
        Device memory size, used for capacity checks.
    global_latency_cycles:
        Latency of an uncached global-memory access.
    kernel_launch_overhead_us:
        Host-side launch overhead of one kernel.
    child_launch_overhead_us:
        Device-side launch overhead of one dynamic-parallelism child
        grid.
    child_launch_saturation:
        Number of concurrently pending child grids beyond which launch
        time degrades sharply (the saturation knee reported for DP).
    flops_per_core_per_cycle:
        Fused multiply-add throughput per core per cycle.
    """

    name: str
    cores: int
    clock_ghz: float
    memory_gb: float
    global_latency_cycles: int = 400
    kernel_launch_overhead_us: float = 5.0
    child_launch_overhead_us: float = 1.5
    child_launch_saturation: int = 2048
    flops_per_core_per_cycle: float = 2.0

    def __post_init__(self) -> None:
        if self.cores < 1 or self.clock_ghz <= 0.0 or self.memory_gb <= 0.0:
            raise SolverError(f"invalid device description {self!r}")

    @property
    def peak_gflops(self) -> float:
        """Peak single-issue throughput in GFLOP/s."""
        return self.cores * self.clock_ghz * self.flops_per_core_per_cycle

    def memory_fits(self, n_doubles: int) -> bool:
        """Whether a working set of float64 values fits in device memory."""
        return n_doubles * 8 <= self.memory_gb * 1024 ** 3


#: The device used throughout the paper family's evaluations.
TITAN_X = VirtualDevice(
    name="GeForce GTX Titan X",
    cores=3072,
    clock_ghz=1.075,
    memory_gb=12.0,
)

#: A mid-range laptop part, for cheaper what-if modeling.
GTX_1650 = VirtualDevice(
    name="GeForce GTX 1650",
    cores=896,
    clock_ghz=1.485,
    memory_gb=4.0,
)

DEVICES = {device.name: device for device in (TITAN_X, GTX_1650)}
