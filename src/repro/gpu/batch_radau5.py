"""Batched Radau IIA order-5 integrator.

The stiff half of the GPU-style substrate: every active simulation runs
its own simplified-Newton iteration on the transformed three-stage
system, but all linear algebra is executed as *batched* operations —
``numpy.linalg.inv`` over a stacked (b, N, N) axis plays the role the
paper family assigns to cuBLAS batched factorizations, and Newton
updates become batched matrix-vector products.

Each simulation keeps its own step size, Jacobian freshness flag,
factorization cache, collocation polynomial (used to predict the next
step's stage values) and predictive step controller, exactly like the
scalar :class:`~repro.solvers.radau5.Radau5` it is validated against.
"""

from __future__ import annotations

from ..backend import Array, xp
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions, validate_time_grid
from ..solvers.radau5 import (MU_COMPLEX, MU_REAL, RADAU_C, RADAU_E, RADAU_T,
                              RADAU_TI)
from ..telemetry.tracer import NULL_TRACER
from .batch_dopri5 import _initial_steps, _scaled_error_norms
from .batch_result import (BROKEN, EXHAUSTED, METHOD_RADAU5, OK, RUNNING,
                           BatchSolveResult, allocate_result)
from .batched_ode import BatchedODEProblem

_EDGE = 1e-12
_TI_COMPLEX = RADAU_TI[1] + 1j * RADAU_TI[2]

#: Inverse of the collocation Vandermonde basis (theta^(j+1) at the
#: Radau nodes); maps stage increments to polynomial coefficients.
_VANDERMONDE_INV = xp.inv(
    xp.vander(RADAU_C, 3, increasing=True) * RADAU_C[:, None])


class BatchRadau5:
    """Adaptive batched Radau IIA solver for stiff sub-batches."""

    name = "batch-radau5"
    method_code = METHOD_RADAU5

    def __init__(self, options: SolverOptions = DEFAULT_OPTIONS,
                 reuse_jacobian: bool = True) -> None:
        self.options = options
        self.reuse_jacobian = reuse_jacobian

    def solve(self, problem: BatchedODEProblem, t_span: tuple[float, float],
              t_eval: Array | None = None,
              initial_states: Array | None = None) -> BatchSolveResult:
        options = self.options
        t_eval = validate_time_grid(t_span, t_eval)
        t0, t1 = float(t_span[0]), float(t_span[1])
        batch = problem.batch_size
        n = problem.n_species
        identity = xp.eye(n)
        tracer = problem.tracer or NULL_TRACER
        compile_span = tracer.start("compile", "phase",
                                    parent=problem.trace_span,
                                    solver=self.name, rows=batch)

        newton_tol = max(10.0 * xp.finfo(float).eps / options.rtol,
                         min(options.newton_tol_factor, options.rtol ** 0.5))
        max_newton = options.newton_max_iterations

        states = (problem.initial_states() if initial_states is None
                  else xp.array(initial_states, dtype=xp.float64))
        result = allocate_result(t_eval, batch, n, self.method_code)
        result.counters = problem.counters

        times = xp.full(batch, t0)
        save_index = xp.zeros(batch, dtype=xp.int64)
        if t_eval[0] == t0:
            result.y[:, 0, :] = states
            save_index[:] = 1

        all_rows = xp.arange(batch)
        derivatives = problem.fun(times, states, all_rows)
        if options.first_step is not None:
            steps = xp.full(batch, options.first_step)
        else:
            steps = _initial_steps(problem, t0, states, derivatives, 5,
                                   options, t1 - t0)
        max_step = min(options.max_step, t1 - t0)

        jacobians = problem.jacobian(times, states, all_rows)
        jac_current = xp.ones(batch, dtype=bool)
        inv_real = xp.zeros((batch, n, n))
        inv_complex = xp.zeros((batch, n, n), dtype=xp.complex128)
        h_factored = xp.full(batch, -1.0)

        poly_coeffs = xp.zeros((batch, 3, n))
        poly_y_start = xp.zeros((batch, n))
        has_poly = xp.zeros(batch, dtype=bool)
        h_previous = steps.copy()
        err_previous = xp.full(batch, -1.0)

        status = result.status_codes
        status[save_index >= t_eval.size] = OK
        tracer.end(compile_span)
        loop_span = tracer.start("step-loop", "phase",
                                 parent=problem.trace_span,
                                 solver=self.name)

        while True:
            active = xp.flatnonzero(status == RUNNING)
            if active.size == 0:
                break
            exhausted = active[result.n_steps[active] >= options.max_steps]
            if exhausted.size:
                status[exhausted] = EXHAUSTED
                active = xp.flatnonzero(status == RUNNING)
                if active.size == 0:
                    break

            t_act = times[active]
            h_act = xp.minimum(steps[active], t1 - t_act)
            next_save = t_eval[xp.minimum(save_index[active],
                                          t_eval.size - 1)]
            hit = t_act + h_act >= next_save - _EDGE * xp.maximum(
                1.0, xp.abs(next_save))
            h_act = xp.where(hit, next_save - t_act, h_act)
            underflow = (h_act <= xp.abs(t_act) * 1e-15) | \
                (h_act < 1e-300) | ~xp.isfinite(h_act)
            if xp.any(underflow):
                dead = active[underflow]
                status[dead] = BROKEN
                if problem.guard is not None:
                    problem.guard.on_step_break(
                        dead, problem.row_ids[dead], t_act[underflow],
                        h_act[underflow], status)
                keep = ~underflow
                active, t_act, h_act, hit = (active[keep], t_act[keep],
                                             h_act[keep], hit[keep])
                if active.size == 0:
                    continue
            steps[active] = h_act
            result.n_steps[active] += 1

            self._refresh_factorizations(active, h_act, h_factored,
                                         jacobians, inv_real, inv_complex,
                                         identity, problem)

            stage_guess = self._predict_stages(active, h_act, h_previous,
                                               has_poly, poly_coeffs,
                                               poly_y_start, states, n)
            converged, n_iter, rate, increments = self._newton(
                problem, active, t_act, h_act, states, stage_guess,
                inv_real, inv_complex, newton_tol, max_newton, options)

            # --- Newton failures: refresh Jacobian or halve the step.
            failed = ~converged
            if xp.any(failed):
                failed_rows = active[failed]
                stale = failed_rows[~jac_current[failed_rows]]
                if stale.size:
                    jacobians[stale] = problem.jacobian(
                        times[stale], states[stale], stale)
                    jac_current[stale] = True
                    h_factored[stale] = -1.0
                fresh = failed_rows[jac_current[failed_rows]]
                # Rows whose Jacobian was already current halve the step.
                overlap = xp.setdiff1d(fresh, stale, assume_unique=True)
                steps[overlap] = steps[overlap] * 0.5
                h_factored[overlap] = -1.0
                result.n_rejected[failed_rows] += 1

            if not xp.any(converged):
                continue
            conv_rows = active[converged]
            z = increments[converged]
            h_conv = h_act[converged]
            t_conv = t_act[converged]
            y_conv = states[conv_rows]
            n_iter_conv = n_iter[converged]
            rate_conv = rate[converged]

            y_new = y_conv + z[:, 2, :]
            stage_error = xp.einsum("s,bsn->bn", RADAU_E, z) / h_conv[:, None]
            error = xp.batched_matvec(inv_real[conv_rows],
                              derivatives[conv_rows] + stage_error)
            err = _scaled_error_norms(error, y_conv, y_new, options)
            needs_refinement = err >= 1.0
            if xp.any(needs_refinement):
                ref_local = xp.flatnonzero(needs_refinement)
                ref_rows = conv_rows[ref_local]
                refined_f = problem.fun(t_conv[ref_local],
                                        y_conv[ref_local]
                                        + error[ref_local], ref_rows)
                refined = xp.batched_matvec(inv_real[ref_rows],
                                    refined_f + stage_error[ref_local])
                err[ref_local] = _scaled_error_norms(
                    refined, y_conv[ref_local], y_new[ref_local], options)

            finite = xp.all(xp.isfinite(y_new), axis=1)
            err = xp.where(finite, err, xp.inf)
            safety = (options.safety * (2 * max_newton + 1)
                      / (2 * max_newton + n_iter_conv))

            accepted = err < 1.0
            rej_local = xp.flatnonzero(~accepted)
            if rej_local.size:
                rej_rows = conv_rows[rej_local]
                result.n_rejected[rej_rows] += 1
                err_rej = err[rej_local]
                shrink = xp.where(
                    xp.isfinite(err_rej),
                    xp.clip(safety[rej_local] * err_rej ** -0.25,
                            options.min_step_factor, 1.0),
                    options.min_step_factor)
                steps[rej_rows] = h_conv[rej_local] * shrink

            acc_local = xp.flatnonzero(accepted)
            if acc_local.size == 0:
                continue
            acc_rows = conv_rows[acc_local]
            result.n_accepted[acc_rows] += 1
            t_new = t_conv[acc_local] + h_conv[acc_local]
            states[acc_rows] = y_new[acc_local]
            times[acc_rows] = t_new
            if problem.guard is not None:
                problem.guard.after_accept(states, acc_rows,
                                           problem.row_ids[acc_rows],
                                           t_new, status)
            derivatives[acc_rows] = problem.fun(t_new, states[acc_rows],
                                                acc_rows)

            poly_y_start[acc_rows] = y_conv[acc_local]
            poly_coeffs[acc_rows] = xp.einsum("ij,bjn->bin",
                                              _VANDERMONDE_INV,
                                              z[acc_local])
            has_poly[acc_rows] = True
            h_previous[acc_rows] = h_conv[acc_local]

            hit_mask = hit[converged][acc_local]
            hit_rows = acc_rows[hit_mask]
            hit_rows = hit_rows[status[hit_rows] == RUNNING]
            if hit_rows.size:
                result.y[hit_rows, save_index[hit_rows], :] = \
                    states[hit_rows]
                save_index[hit_rows] += 1
                status[hit_rows[save_index[hit_rows] >= t_eval.size]] = OK

            err_acc = xp.maximum(err[acc_local], 1e-10)
            factor = xp.minimum(options.max_step_factor,
                                safety[acc_local] * err_acc ** -0.25)
            memory = err_previous[acc_rows]
            has_memory = memory > 0.0
            predictive = xp.where(
                has_memory,
                safety[acc_local] * (xp.maximum(memory, 1e-10) / err_acc)
                ** 0.1 * err_acc ** -0.25,
                xp.inf)
            factor = xp.minimum(factor, predictive)
            factor = xp.maximum(factor, options.min_step_factor)
            err_previous[acc_rows] = err_acc
            h_new = xp.minimum(h_conv[acc_local] * factor, max_step)

            if self.reuse_jacobian:
                refresh_mask = (n_iter_conv[acc_local] > 2) & \
                    (rate_conv[acc_local] > 1e-3)
            else:
                refresh_mask = xp.ones(acc_local.size, dtype=bool)
            refresh_rows = acc_rows[refresh_mask]
            if refresh_rows.size:
                jacobians[refresh_rows] = problem.jacobian(
                    times[refresh_rows], states[refresh_rows], refresh_rows)
                jac_current[refresh_rows] = True
                h_factored[refresh_rows] = -1.0
            keep_rows = acc_rows[~refresh_mask]
            jac_current[keep_rows] = False

            # Keep the factorization when the step barely changes.
            significant = xp.abs(h_new - h_conv[acc_local]) > \
                0.1 * h_conv[acc_local]
            steps[acc_rows] = xp.where(significant, h_new,
                                       h_conv[acc_local])

        tracer.end(loop_span)
        # Save points are recorded in-loop (collocation interpolation at
        # clipped steps); dense output proper does not exist on this
        # substrate, so the phase only covers the result hand-off.
        with tracer.span("dense-output", "phase",
                         parent=problem.trace_span, solver=self.name):
            return result

    # ------------------------------------------------------------------

    @staticmethod
    def _refresh_factorizations(active, h_act, h_factored, jacobians,
                                inv_real, inv_complex, identity,
                                problem) -> None:
        needs = h_factored[active] != h_act
        rows = active[needs]
        if rows.size == 0:
            return
        h_rows = h_act[needs]
        jac_rows = jacobians[rows]
        real_matrices = (MU_REAL / h_rows)[:, None, None] * identity \
            - jac_rows
        complex_matrices = (MU_COMPLEX / h_rows)[:, None, None] * identity \
            - jac_rows.astype(xp.complex128)
        inv_real[rows] = xp.batched_inv(real_matrices)
        inv_complex[rows] = xp.batched_inv(complex_matrices)
        h_factored[rows] = h_rows
        problem.counters.factorizations += 2 * rows.size

    @staticmethod
    def _predict_stages(active, h_act, h_previous, has_poly, poly_coeffs,
                        poly_y_start, states, n) -> Array:
        guess = xp.zeros((active.size, 3, n))
        predictable = has_poly[active]
        rows = active[predictable]
        if rows.size == 0:
            return guess
        ratio = h_act[predictable] / h_previous[rows]
        theta = 1.0 + ratio[:, None] * RADAU_C[None, :]       # (b, 3)
        powers = xp.stack([theta, theta ** 2, theta ** 3], axis=2)
        offsets = xp.einsum("bij,bjn->bin", powers, poly_coeffs[rows])
        guess[predictable] = offsets + (poly_y_start[rows]
                                        - states[rows])[:, None, :]
        return guess

    def _newton(self, problem, active, t_act, h_act, states, stage_guess,
                inv_real, inv_complex, tol, max_iterations, options):
        """Vectorized simplified Newton over the active sub-batch."""
        b = active.size
        n = states.shape[1]
        increments = stage_guess.copy()                        # (b, 3, n)
        transformed = xp.einsum("ij,bjn->bin", RADAU_TI, increments)
        stage_times = t_act[:, None] + RADAU_C[None, :] * h_act[:, None]
        converged = xp.zeros(b, dtype=bool)
        failed = xp.zeros(b, dtype=bool)
        n_iterations = xp.zeros(b, dtype=xp.int64)
        rates = xp.full(b, xp.inf)
        previous_norms = xp.full(b, -1.0)
        scale = options.atol + xp.abs(states[active]) * options.rtol

        for iteration in range(max_iterations):
            work = xp.flatnonzero(~converged & ~failed)
            if work.size == 0:
                break
            rows = active[work]
            n_iterations[work] += 1
            problem.counters.newton_iterations += work.size
            stage_derivatives = xp.empty((work.size, 3, n))
            for i in range(3):
                stage_derivatives[:, i, :] = problem.fun(
                    stage_times[work, i],
                    states[rows] + increments[work, i, :], rows)
            bad = ~xp.all(xp.isfinite(stage_derivatives), axis=(1, 2))
            if xp.any(bad):
                failed[work[bad]] = True
                good = ~bad
                work = work[good]
                if work.size == 0:
                    continue
                rows = active[work]
                stage_derivatives = stage_derivatives[good]

            residual_real = xp.einsum("s,bsn->bn", RADAU_TI[0],
                                      stage_derivatives) \
                - (MU_REAL / h_act[work])[:, None] * transformed[work, 0, :]
            zeta = transformed[work, 1, :] + 1j * transformed[work, 2, :]
            residual_complex = xp.einsum("s,bsn->bn", _TI_COMPLEX,
                                         stage_derivatives) \
                - (MU_COMPLEX / h_act[work])[:, None] * zeta
            delta_real = xp.batched_matvec(inv_real[rows],
                                   residual_real)
            delta_complex = xp.batched_matvec(inv_complex[rows],
                                      residual_complex)
            delta = xp.stack([delta_real, delta_complex.real,
                              delta_complex.imag], axis=1)
            transformed[work] += delta
            increments[work] = xp.einsum("ij,bjn->bin", RADAU_T,
                                         transformed[work])

            delta_norms = xp.sqrt(xp.mean(
                (delta / scale[work, None, :]) ** 2, axis=(1, 2)))
            have_previous = previous_norms[work] > 0.0
            current_rates = xp.where(
                have_previous,
                delta_norms / xp.maximum(previous_norms[work], 1e-300),
                xp.inf)
            rates[work] = xp.where(have_previous, current_rates, rates[work])

            diverged = have_previous & (current_rates >= 1.0)
            remaining = max_iterations - iteration - 1
            with xp.errstate(over="ignore", invalid="ignore",
                             divide="ignore"):
                hopeless = have_previous & ~diverged & (
                    current_rates ** remaining / (1.0 - current_rates)
                    * delta_norms > tol)
                done = xp.where(
                    have_previous,
                    ~diverged & (current_rates / (1.0 - current_rates)
                                 * delta_norms < tol),
                    delta_norms < tol)
            failed[work[diverged | hopeless]] = True
            converged[work[done & ~(diverged | hopeless)]] = True
            previous_norms[work] = delta_norms

        return converged, n_iterations, rates, increments
