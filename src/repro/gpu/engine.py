"""The batched GPU-style simulation engine.

:class:`BatchSimulator` is the top-level deterministic simulator of
this reproduction: it compiles a reaction-based model once, splits a
parameterization batch into device-sized launches, routes every
simulation to DOPRI5 or Radau IIA (method ``"auto"``), executes the
batched integrators over the vectorized substrate and merges the
trajectories. It is the component the parameter-space analyses
(PSA / SA / PE in :mod:`repro.core`) run on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import SolverError
from ..model import (ODESystem, Parameterization, ParameterizationBatch,
                     ReactionBasedModel)
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions
from .batch_dopri5 import BatchDopri5
from .batch_radau5 import BatchRadau5
from .batch_result import BatchSolveResult
from .batched_ode import BatchedODEProblem, KernelCounters
from .device import TITAN_X, VirtualDevice
from .perfmodel import DeviceTimeEstimate, estimate_device_time
from .router import RoutingDecision, StiffnessRouter

METHODS = ("auto", "dopri5", "radau5", "bdf")


@dataclass
class EngineReport:
    """Execution metadata of one :meth:`BatchSimulator.simulate` call."""

    elapsed_seconds: float
    n_launches: int
    routing: list[RoutingDecision] = field(default_factory=list)
    counters: KernelCounters = field(default_factory=KernelCounters)
    modeled_device_time: DeviceTimeEstimate | None = None


class BatchSimulator:
    """Fine- and coarse-grained batched deterministic simulator.

    Parameters
    ----------
    model:
        The reaction-based model to simulate.
    options:
        Shared numerical options (tolerances, step caps, stiffness
        threshold).
    policy:
        Substrate evaluation policy: ``"hybrid"`` (vectorize over batch
        and reactions), ``"coarse"`` or ``"fine"`` — see
        :mod:`repro.model.odesystem`.
    method:
        ``"auto"`` routes per simulation between DOPRI5 and Radau IIA;
        ``"dopri5"`` / ``"radau5"`` force one method.
    max_batch_per_launch:
        Upper bound on simulations per launch; larger batches are split,
        mirroring the paper family's observation that launches beyond
        ~2048 concurrent child grids saturate the device.
    device:
        Virtual device used for the modeled-time estimate in the report.
    """

    def __init__(self, model: ReactionBasedModel,
                 options: SolverOptions = DEFAULT_OPTIONS,
                 policy: str = "hybrid", method: str = "auto",
                 max_batch_per_launch: int = 512,
                 device: VirtualDevice = TITAN_X) -> None:
        if method not in METHODS:
            raise SolverError(f"unknown method {method!r}; "
                              f"expected one of {METHODS}")
        if max_batch_per_launch < 1:
            raise SolverError("max_batch_per_launch must be >= 1")
        self.model = model
        self.system = ODESystem.from_model(model)
        self.options = options
        self.policy = policy
        self.method = method
        self.max_batch_per_launch = max_batch_per_launch
        self.device = device
        self.last_report: EngineReport | None = None

    # ------------------------------------------------------------------

    def simulate(self, t_span: tuple[float, float],
                 t_eval: np.ndarray | None = None,
                 parameters: ParameterizationBatch | Parameterization |
                 None = None) -> BatchSolveResult:
        """Run the batch and return merged trajectories.

        ``parameters`` defaults to a single simulation of the model's
        nominal parameterization. Execution metadata (wall-clock,
        routing decisions, kernel counters, modeled device time) is
        stored in :attr:`last_report`.
        """
        batch = self._normalize_parameters(parameters)
        if t_eval is None:
            t_eval = np.array([float(t_span[0]), float(t_span[1])])
        t_eval = np.asarray(t_eval, dtype=np.float64)

        counters = KernelCounters()
        report = EngineReport(elapsed_seconds=0.0, n_launches=0,
                              counters=counters)
        chunks: list[BatchSolveResult] = []
        started = time.perf_counter()
        for start in range(0, batch.size, self.max_batch_per_launch):
            stop = min(start + self.max_batch_per_launch, batch.size)
            sub_batch = batch.subset(np.arange(start, stop))
            problem = BatchedODEProblem(self.system, sub_batch, self.policy,
                                        counters)
            chunks.append(self._run_launch(problem, t_span, t_eval, report))
            report.n_launches += 1
        report.elapsed_seconds = time.perf_counter() - started
        report.modeled_device_time = estimate_device_time(
            counters, batch.size, self.system.n_species,
            self.system.n_reactions, self.device)

        result = self._merge(chunks, t_eval)
        result.elapsed_seconds = report.elapsed_seconds
        self.last_report = report
        return result

    # ------------------------------------------------------------------

    def _normalize_parameters(self, parameters) -> ParameterizationBatch:
        if parameters is None:
            parameters = self.model.nominal_parameterization()
        if isinstance(parameters, Parameterization):
            self.model.check_parameterization(parameters)
            parameters = ParameterizationBatch.from_parameterizations(
                [parameters])
        if not isinstance(parameters, ParameterizationBatch):
            raise SolverError(
                "parameters must be a Parameterization, a "
                f"ParameterizationBatch or None, got {type(parameters)!r}")
        return parameters

    def _run_launch(self, problem: BatchedODEProblem,
                    t_span: tuple[float, float], t_eval: np.ndarray,
                    report: EngineReport) -> BatchSolveResult:
        if self.method == "auto":
            result, decision = StiffnessRouter(self.options).solve(
                problem, t_span, t_eval)
            report.routing.append(decision)
            return result
        if self.method == "dopri5":
            return BatchDopri5(self.options).solve(problem, t_span, t_eval)
        if self.method == "bdf":
            from .batch_bdf import BatchBDF
            return BatchBDF(self.options).solve(problem, t_span, t_eval)
        return BatchRadau5(self.options).solve(problem, t_span, t_eval)

    @staticmethod
    def _merge(chunks: list[BatchSolveResult],
               t_eval: np.ndarray) -> BatchSolveResult:
        if len(chunks) == 1:
            return chunks[0]
        merged = BatchSolveResult(
            t=t_eval.copy(),
            y=np.concatenate([chunk.y for chunk in chunks]),
            status_codes=np.concatenate(
                [chunk.status_codes for chunk in chunks]),
            method_codes=np.concatenate(
                [chunk.method_codes for chunk in chunks]),
            n_steps=np.concatenate([chunk.n_steps for chunk in chunks]),
            n_accepted=np.concatenate(
                [chunk.n_accepted for chunk in chunks]),
            n_rejected=np.concatenate(
                [chunk.n_rejected for chunk in chunks]),
            counters=chunks[0].counters,
        )
        return merged
