"""The batched GPU-style simulation engine.

:class:`BatchSimulator` is the top-level deterministic simulator of
this reproduction: it compiles a reaction-based model once, splits a
parameterization batch into device-sized launches, routes every
simulation to DOPRI5 or Radau IIA (method ``"auto"``), executes the
batched integrators over the vectorized substrate and merges the
trajectories. It is the component the parameter-space analyses
(PSA / SA / PE in :mod:`repro.core`) run on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import CampaignInterrupted, SolverError
from ..model import (ODESystem, Parameterization, ParameterizationBatch,
                     ReactionBasedModel)
from ..resilience.faults import FaultPlan
from ..resilience.policy import RetryPolicy
from ..resilience.quarantine import (FailureRecord, QuarantineLog,
                                     RetryAttempt)
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions
from .batch_dopri5 import BatchDopri5
from .batch_radau5 import BatchRadau5
from .batch_result import (BROKEN, OK, STATUS_NAMES, BatchSolveResult)
from .batched_ode import BatchedODEProblem, KernelCounters
from .device import TITAN_X, VirtualDevice
from .perfmodel import DeviceTimeEstimate, estimate_device_time
from .router import RoutingDecision, StiffnessRouter

METHODS = ("auto", "dopri5", "radau5", "bdf")


@dataclass
class EngineReport:
    """Execution metadata of one :meth:`BatchSimulator.simulate` call.

    ``quarantine`` holds the rows that exhausted the retry ladder (only
    populated when the simulator runs with a
    :class:`~repro.resilience.RetryPolicy`); ``n_retried_rows`` counts
    row-attempts the ladder executed and ``n_recovered_rows`` how many
    failed rows a retry rung rescued.
    """

    elapsed_seconds: float
    n_launches: int
    routing: list[RoutingDecision] = field(default_factory=list)
    counters: KernelCounters = field(default_factory=KernelCounters)
    modeled_device_time: DeviceTimeEstimate | None = None
    quarantine: QuarantineLog = field(default_factory=QuarantineLog)
    n_retried_rows: int = 0
    n_recovered_rows: int = 0


class BatchSimulator:
    """Fine- and coarse-grained batched deterministic simulator.

    Parameters
    ----------
    model:
        The reaction-based model to simulate.
    options:
        Shared numerical options (tolerances, step caps, stiffness
        threshold).
    policy:
        Substrate evaluation policy: ``"hybrid"`` (vectorize over batch
        and reactions), ``"coarse"`` or ``"fine"`` — see
        :mod:`repro.model.odesystem`.
    method:
        ``"auto"`` routes per simulation between DOPRI5 and Radau IIA;
        ``"dopri5"`` / ``"radau5"`` force one method.
    max_batch_per_launch:
        Upper bound on simulations per launch; larger batches are split,
        mirroring the paper family's observation that launches beyond
        ~2048 concurrent child grids saturate the device.
    device:
        Virtual device used for the modeled-time estimate in the report.
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy`: after each
        launch's first pass, its failed-row subset is re-executed up the
        solver ladder and recovered rows are spliced back; rows that
        exhaust the ladder are quarantined on the report instead of
        silently NaN-ing downstream analyses. ``None`` (the default)
        keeps the legacy single-pass behavior.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` for deterministic
        fault injection (tests and resilience drills only).
    """

    def __init__(self, model: ReactionBasedModel,
                 options: SolverOptions = DEFAULT_OPTIONS,
                 policy: str = "hybrid", method: str = "auto",
                 max_batch_per_launch: int = 512,
                 device: VirtualDevice = TITAN_X,
                 retry_policy: RetryPolicy | None = None,
                 fault_plan: FaultPlan | None = None) -> None:
        if method not in METHODS:
            raise SolverError(f"unknown method {method!r}; "
                              f"expected one of {METHODS}")
        if max_batch_per_launch < 1:
            raise SolverError("max_batch_per_launch must be >= 1")
        self.model = model
        self.system = ODESystem.from_model(model)
        self.options = options
        self.policy = policy
        self.method = method
        self.max_batch_per_launch = max_batch_per_launch
        self.device = device
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.last_report: EngineReport | None = None

    # ------------------------------------------------------------------

    def simulate(self, t_span: tuple[float, float],
                 t_eval: np.ndarray | None = None,
                 parameters: ParameterizationBatch | Parameterization |
                 None = None) -> BatchSolveResult:
        """Run the batch and return merged trajectories.

        ``parameters`` defaults to a single simulation of the model's
        nominal parameterization. Execution metadata (wall-clock,
        routing decisions, kernel counters, modeled device time) is
        stored in :attr:`last_report`.
        """
        batch = self._normalize_parameters(parameters)
        if t_eval is None:
            t_eval = np.array([float(t_span[0]), float(t_span[1])])
        t_eval = np.asarray(t_eval, dtype=np.float64)

        counters = KernelCounters()
        report = EngineReport(elapsed_seconds=0.0, n_launches=0,
                              counters=counters)
        chunks: list[BatchSolveResult] = []
        started = time.perf_counter()
        for start in range(0, batch.size, self.max_batch_per_launch):
            if self.fault_plan is not None and \
                    self.fault_plan.crashes_before_launch(report.n_launches):
                raise CampaignInterrupted(
                    f"injected crash before launch {report.n_launches}",
                    completed_chunks=report.n_launches)
            stop = min(start + self.max_batch_per_launch, batch.size)
            sub_batch = batch.subset(np.arange(start, stop))
            problem = BatchedODEProblem(self.system, sub_batch, self.policy,
                                        counters, self.fault_plan,
                                        np.arange(start, stop))
            chunk = self._run_launch(problem, t_span, t_eval, report)
            if self.fault_plan is not None and \
                    self.fault_plan.forces_launch_failure(report.n_launches):
                chunk.status_codes[:] = BROKEN
                chunk.y[:] = np.nan
            if self.retry_policy is not None:
                self._retry_failed_rows(problem, chunk, t_span, t_eval,
                                        report)
            chunks.append(chunk)
            report.n_launches += 1
        report.elapsed_seconds = time.perf_counter() - started
        report.modeled_device_time = estimate_device_time(
            counters, batch.size, self.system.n_species,
            self.system.n_reactions, self.device)

        result = self._merge(chunks, t_eval)
        result.elapsed_seconds = report.elapsed_seconds
        self.last_report = report
        return result

    # ------------------------------------------------------------------

    def _normalize_parameters(self, parameters) -> ParameterizationBatch:
        if parameters is None:
            parameters = self.model.nominal_parameterization()
        if isinstance(parameters, Parameterization):
            self.model.check_parameterization(parameters)
            parameters = ParameterizationBatch.from_parameterizations(
                [parameters])
        if not isinstance(parameters, ParameterizationBatch):
            raise SolverError(
                "parameters must be a Parameterization, a "
                f"ParameterizationBatch or None, got {type(parameters)!r}")
        return parameters

    def _run_launch(self, problem: BatchedODEProblem,
                    t_span: tuple[float, float], t_eval: np.ndarray,
                    report: EngineReport) -> BatchSolveResult:
        if self.method == "auto":
            result, decision = StiffnessRouter(self.options).solve(
                problem, t_span, t_eval)
            report.routing.append(decision)
            return result
        if self.method == "dopri5":
            return BatchDopri5(self.options).solve(problem, t_span, t_eval)
        if self.method == "bdf":
            from .batch_bdf import BatchBDF
            return BatchBDF(self.options).solve(problem, t_span, t_eval)
        return BatchRadau5(self.options).solve(problem, t_span, t_eval)

    # ------------------------------------------------------------------
    # retry escalation + quarantine (the resilience layer)

    @staticmethod
    def _retry_solver(method: str, options: SolverOptions):
        if method == "dopri5":
            return BatchDopri5(options)
        if method == "radau5":
            return BatchRadau5(options)
        from .batch_bdf import BatchBDF
        return BatchBDF(options)

    def _retry_failed_rows(self, problem: BatchedODEProblem,
                           chunk: BatchSolveResult,
                           t_span: tuple[float, float], t_eval: np.ndarray,
                           report: EngineReport) -> None:
        """Climb the retry ladder for the launch's failed-row subset.

        Recovered rows are spliced back into ``chunk`` via
        :meth:`~repro.gpu.batch_result.BatchSolveResult.merge_rows`;
        rows that survive every rung become
        :class:`~repro.resilience.FailureRecord` entries (full
        per-attempt history) in ``report.quarantine``.
        """
        failed = np.flatnonzero(chunk.failed_mask)
        if failed.size == 0:
            return
        histories = {
            int(row): [RetryAttempt(
                "first-pass",
                chunk.methods()[row],
                STATUS_NAMES[int(chunk.status_codes[row])],
                int(chunk.n_steps[row]),
                self.options.rtol, self.options.atol,
                self.options.max_steps)]
            for row in failed}
        for rung, stage in enumerate(self.retry_policy.planned_stages()):
            if failed.size == 0:
                break
            options = stage.derive_options(self.options)
            solver = self._retry_solver(stage.method, options)
            retried = solver.solve(problem.subset(failed), t_span, t_eval)
            report.n_retried_rows += int(failed.size)
            for local, row in enumerate(failed):
                histories[int(row)].append(RetryAttempt(
                    f"retry-{rung + 1}", stage.method,
                    STATUS_NAMES[int(retried.status_codes[local])],
                    int(retried.n_steps[local]),
                    options.rtol, options.atol, options.max_steps))
            recovered = np.flatnonzero(retried.status_codes == OK)
            if recovered.size:
                chunk.merge_rows(retried.take_rows(recovered),
                                 failed[recovered])
                report.n_recovered_rows += int(recovered.size)
            failed = failed[retried.status_codes != OK]
        for row in failed:
            global_row = int(problem.row_ids[row])
            report.quarantine.add(FailureRecord(
                global_row,
                problem.parameters.rate_constants[row].copy(),
                problem.parameters.initial_states[row].copy(),
                histories[int(row)]))

    @staticmethod
    def _merge(chunks: list[BatchSolveResult],
               t_eval: np.ndarray) -> BatchSolveResult:
        if len(chunks) == 1:
            return chunks[0]
        merged = BatchSolveResult(
            t=t_eval.copy(),
            y=np.concatenate([chunk.y for chunk in chunks]),
            status_codes=np.concatenate(
                [chunk.status_codes for chunk in chunks]),
            method_codes=np.concatenate(
                [chunk.method_codes for chunk in chunks]),
            n_steps=np.concatenate([chunk.n_steps for chunk in chunks]),
            n_accepted=np.concatenate(
                [chunk.n_accepted for chunk in chunks]),
            n_rejected=np.concatenate(
                [chunk.n_rejected for chunk in chunks]),
            counters=chunks[0].counters,
        )
        return merged
