"""The batched GPU-style simulation engine.

:class:`BatchSimulator` is the top-level deterministic simulator of
this reproduction: it compiles a reaction-based model once, splits a
parameterization batch into device-sized launches, routes every
simulation to DOPRI5 or Radau IIA (method ``"auto"``), executes the
batched integrators over the vectorized substrate and merges the
trajectories. It is the component the parameter-space analyses
(PSA / SA / PE in :mod:`repro.core`) run on.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..backend import Array, xp
from ..errors import CampaignInterrupted, SolverError
from ..guards import (GuardConfig, GuardLog, InvariantMonitor, KernelGuard,
                      MemoryEvent, MemoryGovernor)
from ..guards.violations import INVARIANT_DRIFT, GuardViolation
from ..model import (ODESystem, Parameterization, ParameterizationBatch,
                     ReactionBasedModel)
from ..resilience.faults import FaultPlan
from ..resilience.policy import RetryPolicy
from ..resilience.quarantine import (FailureRecord, QuarantineLog,
                                     RetryAttempt)
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions
from ..telemetry import clock
from ..telemetry.calibration import LaunchCost
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.tracer import SpanHandle, as_tracer
from .batch_dopri5 import BatchDopri5
from .batch_radau5 import BatchRadau5
from .batch_result import (BROKEN, GUARD, OK, STATUS_NAMES, BatchSolveResult,
                           allocate_result)
from .batched_ode import BatchedODEProblem, KernelCounters
from .device import TITAN_X, VirtualDevice
from .perfmodel import (DeviceTimeEstimate, estimate_device_time,
                        memory_footprint_doubles)
from .router import RoutingDecision, StiffnessRouter

METHODS = ("auto", "dopri5", "radau5", "bdf")


@dataclass
class EngineReport:
    """Execution metadata of one :meth:`BatchSimulator.simulate` call.

    ``quarantine`` holds the rows that exhausted the retry ladder (only
    populated when the simulator runs with a
    :class:`~repro.resilience.RetryPolicy`); ``n_retried_rows`` counts
    row-attempts the ladder executed and ``n_recovered_rows`` how many
    failed rows a retry rung rescued.

    ``guard_log`` collects the numerical-integrity violations (only
    populated when the simulator runs with a
    :class:`~repro.guards.GuardConfig`); ``memory_events`` records each
    launch the memory governor had to split to stay under the device
    budget.

    ``metrics`` is the typed telemetry registry
    (:class:`~repro.telemetry.MetricsRegistry`): step/kernel/Newton
    counters, guard and retry accounting, and per-launch working-set
    histograms, always populated (the registry is timestamp-free, so
    it is safe to embed in campaign checkpoints).

    ``launch_costs`` pairs every launch's perfmodel prediction with
    its observed wall-clock and working set — the raw material of
    :mod:`repro.telemetry.calibration`. Wall-clock lives here (next to
    ``elapsed_seconds``), never in ``metrics``.
    """

    elapsed_seconds: float
    n_launches: int
    routing: list[RoutingDecision] = field(default_factory=list)
    counters: KernelCounters = field(default_factory=KernelCounters)
    modeled_device_time: DeviceTimeEstimate | None = None
    quarantine: QuarantineLog = field(default_factory=QuarantineLog)
    n_retried_rows: int = 0
    n_recovered_rows: int = 0
    guard_log: GuardLog = field(default_factory=GuardLog)
    memory_events: list[MemoryEvent] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    launch_costs: list[LaunchCost] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Lossless JSON-safe form (see :meth:`from_dict`)."""
        modeled = self.modeled_device_time
        return {
            "elapsed_seconds": float(self.elapsed_seconds),
            "n_launches": int(self.n_launches),
            "routing": [decision.to_dict() for decision in self.routing],
            "counters": asdict(self.counters),
            "modeled_device_time": (None if modeled is None
                                    else asdict(modeled)),
            "quarantine": self.quarantine.to_dicts(),
            # Derived headline count, so dashboards reading the JSON
            # need not parse the full quarantine records; from_dict
            # rebuilds it from "quarantine", keeping round-trips exact.
            "n_quarantined": len(self.quarantine),
            "n_retried_rows": int(self.n_retried_rows),
            "n_recovered_rows": int(self.n_recovered_rows),
            "guard_log": {
                "violations": self.guard_log.to_dicts(),
                "n_clamped_steps": int(self.guard_log.n_clamped_steps),
            },
            "memory_events": [asdict(event)
                              for event in self.memory_events],
            "metrics": self.metrics.to_dict(),
            "launch_costs": [cost.to_dict()
                             for cost in self.launch_costs],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "EngineReport":
        guard_data = data.get("guard_log", {})
        guard_log = GuardLog.from_dicts(guard_data.get("violations", []))
        # GuardLog.from_dicts only rebuilds the violation list; the
        # clamp counter rides next to it in the serialized form.
        guard_log.n_clamped_steps = int(
            guard_data.get("n_clamped_steps", 0))
        modeled = data.get("modeled_device_time")
        return cls(
            elapsed_seconds=float(data["elapsed_seconds"]),
            n_launches=int(data["n_launches"]),
            routing=[RoutingDecision.from_dict(entry)
                     for entry in data.get("routing", [])],
            counters=KernelCounters(**data.get("counters", {})),
            modeled_device_time=(None if modeled is None
                                 else DeviceTimeEstimate(**modeled)),
            quarantine=QuarantineLog.from_dicts(data.get("quarantine", [])),
            n_retried_rows=int(data.get("n_retried_rows", 0)),
            n_recovered_rows=int(data.get("n_recovered_rows", 0)),
            guard_log=guard_log,
            memory_events=[MemoryEvent(**entry)
                           for entry in data.get("memory_events", [])],
            metrics=MetricsRegistry.from_dict(data.get("metrics", {})),
            launch_costs=[LaunchCost.from_dict(entry)
                          for entry in data.get("launch_costs", [])],
        )


class BatchSimulator:
    """Fine- and coarse-grained batched deterministic simulator.

    Parameters
    ----------
    model:
        The reaction-based model to simulate.
    options:
        Shared numerical options (tolerances, step caps, stiffness
        threshold).
    policy:
        Substrate evaluation policy: ``"hybrid"`` (vectorize over batch
        and reactions), ``"coarse"`` or ``"fine"`` — see
        :mod:`repro.model.odesystem`.
    method:
        ``"auto"`` routes per simulation between DOPRI5 and Radau IIA;
        ``"dopri5"`` / ``"radau5"`` force one method.
    max_batch_per_launch:
        Upper bound on simulations per launch; larger batches are split,
        mirroring the paper family's observation that launches beyond
        ~2048 concurrent child grids saturate the device.
    device:
        Virtual device used for the modeled-time estimate in the report.
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy`: after each
        launch's first pass, its failed-row subset is re-executed up the
        solver ladder and recovered rows are spliced back; rows that
        exhaust the ladder are quarantined on the report instead of
        silently NaN-ing downstream analyses. ``None`` (the default)
        keeps the legacy single-pass behavior.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` for deterministic
        fault injection (tests and resilience drills only).
    guard_config:
        Optional :class:`~repro.guards.GuardConfig` enabling the
        numerical-integrity guards: the in-kernel state-validity checks
        run inside every integrator step and the conservation-law
        monitor checks every finished trajectory. Violating rows get
        status ``guard_violation`` and flow through the retry ladder
        and quarantine exactly like solver failures. ``None`` (the
        default) runs guard-free.
    memory_governor:
        Optional :class:`~repro.guards.MemoryGovernor` enforcing a
        device-memory budget per launch: over-budget launches are
        split into contiguous segments (exponential backoff) and
        re-merged, with each degradation recorded on the report.
        ``None`` skips budget checks unless the fault plan injects
        memory pressure (which then uses a default governor).
    tracer:
        Optional telemetry: a :class:`~repro.telemetry.Tracer`, a trace
        file path, or ``None`` (the default, the <2%-overhead no-op
        tracer). Each launch emits ``launch -> rung -> phase`` spans and
        the report's :class:`~repro.telemetry.MetricsRegistry` is
        populated either way.
    trace_parent:
        Optional parent span handle under which this simulate call's
        launch spans nest (the campaign runner passes its chunk span);
        ``None`` makes the launches trace roots.
    cost_model:
        Optional fitted :class:`~repro.telemetry.calibration.
        CalibrationReport`. When present, ``"auto"`` routing may pick
        BDF over Radau IIA for the implicit rung where the calibrated
        per-row cost says it is cheaper. Predictions are *recorded*
        on ``launch_costs`` either way — the model only changes
        decisions, never measurements.
    """

    def __init__(self, model: ReactionBasedModel,
                 options: SolverOptions = DEFAULT_OPTIONS,
                 policy: str = "hybrid", method: str = "auto",
                 max_batch_per_launch: int = 512,
                 device: VirtualDevice = TITAN_X,
                 retry_policy: RetryPolicy | None = None,
                 fault_plan: FaultPlan | None = None,
                 guard_config: GuardConfig | None = None,
                 memory_governor: MemoryGovernor | None = None,
                 tracer=None,
                 trace_parent: SpanHandle | None = None,
                 cost_model=None) -> None:
        if method not in METHODS:
            raise SolverError(f"unknown method {method!r}; "
                              f"expected one of {METHODS}")
        if max_batch_per_launch < 1:
            raise SolverError("max_batch_per_launch must be >= 1")
        self.model = model
        self.system = ODESystem.from_model(model)
        self.options = options
        self.policy = policy
        self.method = method
        self.max_batch_per_launch = max_batch_per_launch
        self.device = device
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.guard_config = guard_config
        self.memory_governor = memory_governor
        self.tracer = as_tracer(tracer)
        self.trace_parent = trace_parent
        self.cost_model = cost_model
        self.last_report: EngineReport | None = None

    # ------------------------------------------------------------------

    def simulate(self, t_span: tuple[float, float],
                 t_eval: Array | None = None,
                 parameters: ParameterizationBatch | Parameterization |
                 None = None) -> BatchSolveResult:
        """Run the batch and return merged trajectories.

        ``parameters`` defaults to a single simulation of the model's
        nominal parameterization. Execution metadata (wall-clock,
        routing decisions, kernel counters, modeled device time) is
        stored in :attr:`last_report`.
        """
        batch = self._normalize_parameters(parameters)
        if t_eval is None:
            t_eval = xp.array([float(t_span[0]), float(t_span[1])])
        t_eval = xp.asarray(t_eval, dtype=xp.float64)

        counters = KernelCounters()
        report = EngineReport(elapsed_seconds=0.0, n_launches=0,
                              counters=counters)
        kernel_guard, invariant_monitor = self._build_guards(batch, report)
        tracer = self.tracer
        chunks: list[BatchSolveResult] = []
        started = clock.monotonic()
        for start in range(0, batch.size, self.max_batch_per_launch):
            if self.fault_plan is not None and \
                    self.fault_plan.crashes_before_launch(report.n_launches):
                raise CampaignInterrupted(
                    f"injected crash before launch {report.n_launches}",
                    completed_chunks=report.n_launches)
            stop = min(start + self.max_batch_per_launch, batch.size)
            sub_batch = batch.subset(xp.arange(start, stop))
            problem = BatchedODEProblem(self.system, sub_batch, self.policy,
                                        counters, self.fault_plan,
                                        xp.arange(start, stop), kernel_guard,
                                        tracer)
            launch_span = tracer.start(
                f"launch-{report.n_launches}", "launch",
                parent=self.trace_parent, rows=stop - start,
                species=self.system.n_species,
                reactions=self.system.n_reactions)
            rung_span = tracer.start("rung-0", "rung", parent=launch_span,
                                     method=self.method)
            problem.trace_span = rung_span
            routing_before = len(report.routing)
            counters_before = KernelCounters(**asdict(counters))
            launch_t0 = clock.monotonic()
            chunk = self._run_launch_governed(problem, t_span, t_eval,
                                              report)
            tracer.end(rung_span)
            if self.fault_plan is not None and \
                    self.fault_plan.forces_launch_failure(report.n_launches):
                chunk.status_codes[:] = BROKEN
                chunk.y[:] = xp.nan
            if invariant_monitor is not None:
                self._check_invariants(invariant_monitor, report, problem,
                                       chunk)
            if self.retry_policy is not None:
                self._retry_failed_rows(problem, chunk, t_span, t_eval,
                                        report, invariant_monitor,
                                        launch_span)
            observed = clock.monotonic() - launch_t0
            cost = self._launch_cost(report, routing_before,
                                     counters_before, observed,
                                     stop - start, t_eval.size)
            tracer.end(launch_span, method=self.method,
                       predicted_ms=cost.predicted_seconds * 1.0e3,
                       predicted_doubles=cost.predicted_doubles,
                       actual_doubles=cost.actual_doubles)
            self._observe_launch(report, stop - start, t_eval.size)
            chunks.append(chunk)
            report.n_launches += 1
        report.elapsed_seconds = clock.monotonic() - started
        report.modeled_device_time = estimate_device_time(
            counters, batch.size, self.system.n_species,
            self.system.n_reactions, self.device)

        with tracer.span("merge", "phase", parent=self.trace_parent,
                         launches=len(chunks)):
            result = self._merge(chunks, t_eval)
        result.elapsed_seconds = report.elapsed_seconds
        self._populate_metrics(report, result)
        self.last_report = report
        return result

    # ------------------------------------------------------------------

    def _normalize_parameters(self, parameters) -> ParameterizationBatch:
        if parameters is None:
            parameters = self.model.nominal_parameterization()
        if isinstance(parameters, Parameterization):
            self.model.check_parameterization(parameters)
            parameters = ParameterizationBatch.from_parameterizations(
                [parameters])
        if not isinstance(parameters, ParameterizationBatch):
            raise SolverError(
                "parameters must be a Parameterization, a "
                f"ParameterizationBatch or None, got {type(parameters)!r}")
        return parameters

    # ------------------------------------------------------------------
    # telemetry metrics

    def _observe_launch(self, report: EngineReport, rows: int,
                        n_save_points: int) -> None:
        """Histogram one launch's width and device working set."""
        report.metrics.observe("launch.rows", rows)
        report.metrics.observe(
            "launch.working_set_doubles",
            memory_footprint_doubles(rows, self.system.n_species,
                                     self.system.n_reactions,
                                     n_save_points, self.method))

    def _launch_cost(self, report: EngineReport, routing_before: int,
                     counters_before: KernelCounters, observed: float,
                     rows: int, n_save_points: int) -> LaunchCost:
        """Record one launch's predicted-vs-observed cost.

        Prediction uses only the launch's *own* kernel counters (the
        delta against the pre-launch snapshot, so retries and memory
        splits are attributed to the launch that incurred them). The
        actual working set discounts ``"auto"`` down to the rows that
        really took the implicit path — the prediction conservatively
        budgets Radau storage for every row; the routing decisions say
        how many used it.
        """
        counters = report.counters
        delta = KernelCounters(**{
            name: value - getattr(counters_before, name)
            for name, value in asdict(counters).items()})
        n_species = self.system.n_species
        n_reactions = self.system.n_reactions
        predicted = estimate_device_time(delta, rows, n_species,
                                         n_reactions, self.device)
        predicted_doubles = memory_footprint_doubles(
            rows, n_species, n_reactions, n_save_points, self.method)
        if self.method == "auto":
            n_stiff = sum(decision.n_stiff for decision
                          in report.routing[routing_before:])
            actual_doubles = memory_footprint_doubles(
                rows, n_species, n_reactions, n_save_points,
                "dopri5") + 4 * n_stiff * n_species * n_species
        else:
            actual_doubles = predicted_doubles
        cost = LaunchCost(
            method=self.method, rows=int(rows), n_species=int(n_species),
            n_reactions=int(n_reactions),
            predicted_seconds=float(predicted.total_seconds),
            observed_seconds=float(observed),
            predicted_doubles=int(predicted_doubles),
            actual_doubles=int(actual_doubles))
        report.launch_costs.append(cost)
        return cost

    @staticmethod
    def _populate_metrics(report: EngineReport,
                          result: BatchSolveResult) -> None:
        """Fold the run's counters and logs into the metrics registry.

        Everything here is a deterministic count — no timestamps — so
        the registry is safe to journal in campaign checkpoints
        (deep-lint rule DET005 keeps it that way).
        """
        metrics = report.metrics
        metrics.count("steps.accepted", int(result.n_accepted.sum()))
        metrics.count("steps.rejected", int(result.n_rejected.sum()))
        counters = report.counters
        metrics.count("kernel.rhs_launches", counters.rhs_kernel_launches)
        metrics.count("kernel.rhs_evals",
                      counters.rhs_simulation_evaluations)
        metrics.count("kernel.jacobian_launches",
                      counters.jacobian_kernel_launches)
        metrics.count("kernel.jacobian_evals",
                      counters.jacobian_simulation_evaluations)
        metrics.count("newton.iterations", counters.newton_iterations)
        metrics.count("newton.factorizations", counters.factorizations)
        metrics.count("guard.clamped_steps",
                      report.guard_log.n_clamped_steps)
        for kind, count in report.guard_log.counts().items():
            metrics.count(f"guard.violations.{kind}", count)
        metrics.count("retry.retried_rows", report.n_retried_rows)
        metrics.count("retry.recovered_rows", report.n_recovered_rows)
        metrics.count("governor.splits", len(report.memory_events))
        metrics.count("governor.segments",
                      sum(event.n_splits for event in report.memory_events))
        metrics.count("quarantine.rows", len(report.quarantine))

    # ------------------------------------------------------------------
    # numerical-integrity guards + memory governor

    def _build_guards(self, batch: ParameterizationBatch,
                      report: EngineReport
                      ) -> tuple[KernelGuard | None, InvariantMonitor | None]:
        """Instantiate the per-run guard objects from the config.

        The kernel guard and the invariant monitor share one law basis
        (derived once from the model's stoichiometry) and one violation
        log (the report's), and the guard indexes its per-row bands and
        reference totals by global row id over the *full* campaign
        batch, so it travels unchanged through subsets and launches.
        """
        config = self.guard_config
        if config is None or not config.enabled:
            return None, None
        laws = self.model.conservation_law_basis()
        laws = laws if laws.shape[0] else None
        kernel_guard = None
        if config.check_negativity or config.check_nonfinite or \
                config.check_step_collapse:
            kernel_guard = KernelGuard(config, report.guard_log, GUARD,
                                       batch.initial_states, laws)
        invariant_monitor = None
        if config.check_invariants and laws is not None:
            invariant_monitor = InvariantMonitor(laws, config)
        return kernel_guard, invariant_monitor

    def _check_invariants(self, monitor: InvariantMonitor,
                          report: EngineReport,
                          problem: BatchedODEProblem,
                          result: BatchSolveResult) -> None:
        """Flag finished rows whose conserved totals drifted.

        Only rows with status OK are checked: failed rows' NaN tails
        carry no drift information and are already being handled.
        Violating rows get status GUARD, which re-enters
        ``failed_mask`` so the retry ladder / quarantine / analysis
        masking pick them up like any solver failure.
        """
        log = report.guard_log
        ok_rows = xp.flatnonzero(result.status_codes == OK)
        if ok_rows.size == 0:
            return
        ratios = monitor.drift_ratios(
            result.y[ok_rows], problem.parameters.initial_states[ok_rows])
        violated = xp.flatnonzero(ratios > 1.0)
        if violated.size == 0:
            return
        rows = ok_rows[violated]
        result.status_codes[rows] = GUARD
        report.metrics.count("guard.invariant_restamps", int(rows.size))
        for local, row in zip(violated, rows):
            log.add(GuardViolation(
                INVARIANT_DRIFT, int(problem.row_ids[row]),
                float(result.t[-1]), float(ratios[local]),
                f"conserved totals drifted {ratios[local]:.2f}x the "
                f"allowed tolerance over the trajectory"))

    def _run_launch_governed(self, problem: BatchedODEProblem,
                             t_span: tuple[float, float],
                             t_eval: Array,
                             report: EngineReport) -> BatchSolveResult:
        """Run one launch under the memory governor (if any).

        When the estimated working set exceeds the budget — or the
        fault plan injects memory pressure on this launch — the launch
        is split into contiguous row segments that run independently
        and merge back via ``merge_rows``. Per-row adaptive stepping
        makes every row's trajectory independent of its neighbors, so
        the merged result is bit-identical to the unsplit launch.
        """
        governor = self.memory_governor
        forced_fit_rows = None
        if self.fault_plan is not None and \
                self.fault_plan.forces_memory_pressure(report.n_launches):
            forced_fit_rows = self.fault_plan.oom_fit_rows
            if forced_fit_rows is None:
                forced_fit_rows = max(1, (problem.batch_size + 1) // 2)
            if governor is None:
                governor = MemoryGovernor()
        if governor is None:
            return self._run_launch(problem, t_span, t_eval, report)
        plan = governor.plan(problem.batch_size, problem.n_species,
                             self.system.n_reactions, t_eval.size,
                             self.method, self.device,
                             forced_fit_rows=forced_fit_rows)
        if not plan.split:
            return self._run_launch(problem, t_span, t_eval, report)
        merged = allocate_result(t_eval, problem.batch_size,
                                 problem.n_species, 0)
        merged.counters = problem.counters
        for start, stop in plan.segments:
            rows = xp.arange(start, stop)
            segment = self._run_launch(problem.subset(rows), t_span,
                                       t_eval, report)
            merged.merge_rows(segment, rows)
        report.memory_events.append(MemoryEvent(
            launch_index=report.n_launches,
            requested_rows=problem.batch_size,
            granted_rows=plan.segment_rows,
            n_splits=plan.n_splits,
            estimated_doubles=plan.estimated_doubles,
            budget_doubles=plan.budget_doubles,
            injected=plan.injected))
        return merged

    def _run_launch(self, problem: BatchedODEProblem,
                    t_span: tuple[float, float], t_eval: Array,
                    report: EngineReport) -> BatchSolveResult:
        if self.method == "auto":
            result, decision = StiffnessRouter(
                self.options, cost_model=self.cost_model).solve(
                    problem, t_span, t_eval)
            report.routing.append(decision)
            return result
        if self.method == "dopri5":
            return BatchDopri5(self.options).solve(problem, t_span, t_eval)
        if self.method == "bdf":
            from .batch_bdf import BatchBDF
            return BatchBDF(self.options).solve(problem, t_span, t_eval)
        return BatchRadau5(self.options).solve(problem, t_span, t_eval)

    # ------------------------------------------------------------------
    # retry escalation + quarantine (the resilience layer)

    @staticmethod
    def _retry_solver(method: str, options: SolverOptions):
        if method == "dopri5":
            return BatchDopri5(options)
        if method == "radau5":
            return BatchRadau5(options)
        from .batch_bdf import BatchBDF
        return BatchBDF(options)

    def _retry_failed_rows(self, problem: BatchedODEProblem,
                           chunk: BatchSolveResult,
                           t_span: tuple[float, float], t_eval: Array,
                           report: EngineReport,
                           invariant_monitor: InvariantMonitor | None = None,
                           launch_span: SpanHandle | None = None
                           ) -> None:
        """Climb the retry ladder for the launch's failed-row subset.

        Recovered rows are spliced back into ``chunk`` via
        :meth:`~repro.gpu.batch_result.BatchSolveResult.merge_rows`;
        rows that survive every rung become
        :class:`~repro.resilience.FailureRecord` entries (full
        per-attempt history) in ``report.quarantine``. Retried results
        are re-checked against the invariant monitor before a row
        counts as recovered — a rung that converges but still drifts is
        not a rescue.
        """
        failed = xp.flatnonzero(chunk.failed_mask)
        if failed.size == 0:
            return
        histories = {
            int(row): [RetryAttempt(
                "first-pass",
                chunk.methods()[row],
                STATUS_NAMES[int(chunk.status_codes[row])],
                int(chunk.n_steps[row]),
                self.options.rtol, self.options.atol,
                self.options.max_steps)]
            for row in failed}
        for rung, stage in enumerate(self.retry_policy.planned_stages()):
            if failed.size == 0:
                break
            options = stage.derive_options(self.options)
            solver = self._retry_solver(stage.method, options)
            subproblem = problem.subset(failed)
            rung_span = self.tracer.start(
                f"rung-{rung + 1}", "rung", parent=launch_span,
                method=stage.method, rows=int(failed.size))
            subproblem.trace_span = rung_span
            retried = solver.solve(subproblem, t_span, t_eval)
            self.tracer.end(rung_span)
            if invariant_monitor is not None:
                self._check_invariants(invariant_monitor, report,
                                       subproblem, retried)
            report.n_retried_rows += int(failed.size)
            report.metrics.count(f"retry.rung{rung + 1}.rows",
                                 int(failed.size))
            for local, row in enumerate(failed):
                histories[int(row)].append(RetryAttempt(
                    f"retry-{rung + 1}", stage.method,
                    STATUS_NAMES[int(retried.status_codes[local])],
                    int(retried.n_steps[local]),
                    options.rtol, options.atol, options.max_steps))
            recovered = xp.flatnonzero(retried.status_codes == OK)
            if recovered.size:
                chunk.merge_rows(retried.take_rows(recovered),
                                 failed[recovered])
                report.n_recovered_rows += int(recovered.size)
                report.metrics.count(f"retry.rung{rung + 1}.recovered",
                                     int(recovered.size))
            failed = failed[retried.status_codes != OK]
        for row in failed:
            global_row = int(problem.row_ids[row])
            report.quarantine.add(FailureRecord(
                global_row,
                problem.parameters.rate_constants[row].copy(),
                problem.parameters.initial_states[row].copy(),
                histories[int(row)]))

    @staticmethod
    def _merge(chunks: list[BatchSolveResult],
               t_eval: Array) -> BatchSolveResult:
        if len(chunks) == 1:
            return chunks[0]
        merged = BatchSolveResult(
            t=t_eval.copy(),
            y=xp.concatenate([chunk.y for chunk in chunks]),
            status_codes=xp.concatenate(
                [chunk.status_codes for chunk in chunks]),
            method_codes=xp.concatenate(
                [chunk.method_codes for chunk in chunks]),
            n_steps=xp.concatenate([chunk.n_steps for chunk in chunks]),
            n_accepted=xp.concatenate(
                [chunk.n_accepted for chunk in chunks]),
            n_rejected=xp.concatenate(
                [chunk.n_rejected for chunk in chunks]),
            counters=chunks[0].counters,
        )
        return merged
