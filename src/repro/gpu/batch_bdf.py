"""Batched variable-order BDF integrator (the cupSODA-analog engine).

The original coarse-grained GPU simulator (cupSODA) runs one
LSODA-style multistep integration per device thread. This module is
its NumPy analog built on our from-scratch scalar
:class:`~repro.solvers.bdf.BDF`: every simulation carries its own
backward-difference table, step size, *order* and Newton state, and the
per-step math executes as batched kernels over groups of simulations
that share the same current order (orders 1-5, so at most five groups
per sweep).

Step-size rescalings of the difference table are per-simulation (the
R(factor) matrices are tiny and factor-specific), which mirrors the
original's per-thread sequential bookkeeping.
"""

from __future__ import annotations

from ..backend import Array, xp
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions, validate_time_grid
from ..solvers.bdf import (ALPHA, ERROR_CONST, GAMMA, MAX_ORDER,
                           NEWTON_MAXITER, change_difference_array)
from ..telemetry.tracer import NULL_TRACER
from .batch_dopri5 import _initial_steps, _scaled_error_norms
from .batch_result import (BROKEN, EXHAUSTED, METHOD_BDF, OK, RUNNING,
                           BatchSolveResult, allocate_result)
from .batched_ode import BatchedODEProblem

_EDGE = 1e-12


class BatchBDF:
    """Adaptive-order batched BDF for coarse-grained stiff batches."""

    name = "batch-bdf"
    method_code = METHOD_BDF

    def __init__(self, options: SolverOptions = DEFAULT_OPTIONS,
                 max_order: int = MAX_ORDER) -> None:
        self.options = options
        self.max_order = max_order

    def solve(self, problem: BatchedODEProblem, t_span: tuple[float, float],
              t_eval: Array | None = None,
              initial_states: Array | None = None) -> BatchSolveResult:
        options = self.options
        t_eval = validate_time_grid(t_span, t_eval)
        t0, t1 = float(t_span[0]), float(t_span[1])
        batch = problem.batch_size
        n = problem.n_species
        identity = xp.eye(n)
        newton_tol = max(10 * xp.finfo(float).eps / options.rtol,
                         min(0.03, options.rtol ** 0.5))
        tracer = problem.tracer or NULL_TRACER
        compile_span = tracer.start("compile", "phase",
                                    parent=problem.trace_span,
                                    solver=self.name, rows=batch)

        states = (problem.initial_states() if initial_states is None
                  else xp.array(initial_states, dtype=xp.float64))
        result = allocate_result(t_eval, batch, n, self.method_code)
        result.counters = problem.counters

        times = xp.full(batch, t0)
        save_index = xp.zeros(batch, dtype=xp.int64)
        if t_eval[0] == t0:
            result.y[:, 0, :] = states
            save_index[:] = 1

        all_rows = xp.arange(batch)
        derivatives = problem.fun(times, states, all_rows)
        if options.first_step is not None:
            steps = xp.full(batch, options.first_step)
        else:
            steps = _initial_steps(problem, t0, states, derivatives, 1,
                                   options, t1 - t0)
        max_step = min(options.max_step, t1 - t0)

        differences = xp.zeros((batch, MAX_ORDER + 3, n))
        differences[:, 0, :] = states
        differences[:, 1, :] = derivatives * steps[:, None]
        orders = xp.ones(batch, dtype=xp.int64)
        steps_at_order = xp.zeros(batch, dtype=xp.int64)

        jacobians = problem.jacobian(times, states, all_rows)
        jac_current = xp.ones(batch, dtype=bool)
        inverses = xp.zeros((batch, n, n))
        c_factored = xp.full(batch, -1.0)

        status = result.status_codes
        status[save_index >= t_eval.size] = OK
        tracer.end(compile_span)
        loop_span = tracer.start("step-loop", "phase",
                                 parent=problem.trace_span,
                                 solver=self.name)

        while True:
            active = xp.flatnonzero(status == RUNNING)
            if active.size == 0:
                break
            exhausted = active[result.n_steps[active] >= options.max_steps]
            if exhausted.size:
                status[exhausted] = EXHAUSTED
                active = xp.flatnonzero(status == RUNNING)
                if active.size == 0:
                    break

            # Catch-up guard: a row that drifted past its next save
            # point by floating-point accident records the current
            # state there (the drift is below the solver tolerance).
            behind = active[
                (save_index[active] < t_eval.size)
                & (t_eval[xp.minimum(save_index[active], t_eval.size - 1)]
                   < times[active] - _EDGE * xp.maximum(
                       1.0, xp.abs(times[active])))]
            # lint: skip=KRN001 -- rare FP-drift repair on a handful of rows
            for row in behind:
                result.y[row, save_index[row], :] = differences[row, 0, :]
                save_index[row] += 1
                if save_index[row] >= t_eval.size:
                    status[row] = OK
            if behind.size:
                active = xp.flatnonzero(status == RUNNING)
                if active.size == 0:
                    continue

            # Clip to the horizon and the next save point (per-sim D
            # rescale for real step changes).
            t_act = times[active]
            limit = xp.minimum(t1, t_eval[xp.minimum(save_index[active],
                                                     t_eval.size - 1)])
            target = limit - t_act
            needs_clip = steps[active] > target * (1.0 + 1e-12)
            # Each row clips by a different factor and the difference-
            # table rescale is order-local, so this stays per-row.
            # lint: skip=KRN001 -- per-row D rescale, scalar by design
            for local in xp.flatnonzero(needs_clip):
                row = active[local]
                factor = target[local] / steps[row]
                if factor <= 0.0:
                    continue
                # lint: skip=KRN002 -- mixed per-row orders, scalar by design
                change_difference_array(differences[row], int(orders[row]),
                                        factor)
                steps[row] = target[local]
                steps_at_order[row] = 0
            underflow = (steps[active] <= xp.abs(t_act) * 1e-15) | \
                (steps[active] < 1e-300) | ~xp.isfinite(steps[active])
            if xp.any(underflow):
                dead = active[underflow]
                status[dead] = BROKEN
                if problem.guard is not None:
                    problem.guard.on_step_break(
                        dead, problem.row_ids[dead], times[dead],
                        steps[dead], status)
                active = active[~underflow]
                if active.size == 0:
                    continue
            result.n_steps[active] += 1

            # Group on a snapshot: a row that raises its order inside
            # this sweep must not be stepped again by the higher-order
            # group of the same sweep.
            orders_snapshot = orders.copy()
            for order in range(1, self.max_order + 1):
                group = active[orders_snapshot[active] == order]
                if group.size:
                    self._step_group(problem, group, order, times, steps,
                                     differences, orders, steps_at_order,
                                     jacobians, jac_current, inverses,
                                     c_factored, identity, newton_tol,
                                     result, save_index, status, t_eval,
                                     max_step)

        tracer.end(loop_span)
        # Save points are recorded in-loop from the difference table;
        # the dense-output phase only covers the result hand-off.
        with tracer.span("dense-output", "phase",
                         parent=problem.trace_span, solver=self.name):
            return result

    # ------------------------------------------------------------------

    def _step_group(self, problem, rows, order, times, steps, differences,
                    orders, steps_at_order, jacobians, jac_current,
                    inverses, c_factored, identity, newton_tol, result,
                    save_index, status, t_eval, max_step) -> None:
        options = self.options
        h = steps[rows]
        t_new = times[rows] + h
        d_group = differences[rows]
        y_predict = d_group[:, :order + 1, :].sum(axis=1)
        psi = xp.einsum("bon,o->bn", d_group[:, 1:order + 1, :],
                        GAMMA[1:order + 1]) / ALPHA[order]
        c = h / ALPHA[order]

        refactor = c_factored[rows] != c
        if xp.any(refactor):
            ref_rows = rows[refactor]
            matrices = identity[None] - c[refactor, None, None] \
                * jacobians[ref_rows]
            inverses[ref_rows] = xp.batched_inv(matrices)
            c_factored[ref_rows] = c[refactor]
            problem.counters.factorizations += ref_rows.size

        converged, n_iter, y_new, correction = self._newton(
            problem, rows, t_new, y_predict, c, psi, inverses, newton_tol)

        failed = ~converged
        if xp.any(failed):
            failed_rows = rows[failed]
            stale = failed_rows[~jac_current[failed_rows]]
            if stale.size:
                jacobians[stale] = problem.jacobian(times[stale],
                                                    differences[stale, 0, :],
                                                    stale)
                jac_current[stale] = True
                c_factored[stale] = -1.0
            fresh = xp.setdiff1d(failed_rows, stale, assume_unique=True)
            # lint: skip=KRN001 -- Newton-failure fallback on a small subset
            for row in fresh:
                change_difference_array(differences[row], order, 0.5)
                steps[row] *= 0.5
                steps_at_order[row] = 0
                c_factored[row] = -1.0
            result.n_rejected[failed_rows] += 1
        if not xp.any(converged):
            return

        conv_rows = rows[converged]
        y_new = y_new[converged]
        correction = correction[converged]
        h_conv = h[converged]
        n_iter = n_iter[converged]
        y_old = differences[conv_rows, 0, :]
        error = ERROR_CONST[order] * correction
        err = _scaled_error_norms(error, y_old, y_new, options)
        finite = xp.all(xp.isfinite(y_new), axis=1)
        err = xp.where(finite, err, xp.inf)
        safety = 0.9 * (2 * NEWTON_MAXITER + 1) / \
            (2 * NEWTON_MAXITER + n_iter)

        rejected = err >= 1.0
        if xp.any(rejected):
            rej_rows = conv_rows[rejected]
            result.n_rejected[rej_rows] += 1
            # lint: skip=KRN001 -- rejected rows shrink by per-row factors
            for local, row in zip(xp.flatnonzero(rejected), rej_rows):
                factor = options.min_step_factor
                if xp.isfinite(err[local]) and err[local] > 0:
                    factor = max(options.min_step_factor,
                                 safety[local]
                                 * err[local] ** (-1.0 / (order + 1)))
                change_difference_array(differences[row], order, factor)
                steps[row] *= factor
                steps_at_order[row] = 0
                c_factored[row] = -1.0

        accepted = ~rejected
        if not xp.any(accepted):
            return
        acc_rows = conv_rows[accepted]
        result.n_accepted[acc_rows] += 1
        times[acc_rows] += h_conv[accepted]
        jac_current[acc_rows] = False
        steps_at_order[acc_rows] += 1

        # Difference-table update (vectorized over the accepted group).
        corr = correction[accepted]
        differences[acc_rows, order + 2, :] = \
            corr - differences[acc_rows, order + 1, :]
        differences[acc_rows, order + 1, :] = corr
        for i in reversed(range(order + 1)):
            differences[acc_rows, i, :] += differences[acc_rows, i + 1, :]

        if problem.guard is not None:
            # The current state lives in the difference table's zeroth
            # slice; pass the basic-slice view so clamps write through.
            problem.guard.after_accept(differences[:, 0, :], acc_rows,
                                       problem.row_ids[acc_rows],
                                       times[acc_rows], status)

        tolerance = 1e-9 * xp.maximum(1.0, xp.abs(times[acc_rows]))
        hits = acc_rows[xp.abs(times[acc_rows]
                               - t_eval[xp.minimum(save_index[acc_rows],
                                                   t_eval.size - 1)])
                        <= tolerance]
        hit_valid = hits[save_index[hits] < t_eval.size]
        hit_valid = hit_valid[status[hit_valid] == RUNNING]
        if hit_valid.size:
            result.y[hit_valid, save_index[hit_valid], :] = \
                differences[hit_valid, 0, :]
            save_index[hit_valid] += 1
            status[hit_valid[save_index[hit_valid] >= t_eval.size]] = OK

        # Order/step adaptation for rows that completed order+1 steps.
        adapt = acc_rows[steps_at_order[acc_rows] >= order + 1]
        # lint: skip=KRN002 -- scalar map feeding the per-row order change
        err_by_row = {int(row): float(err[local])
                      for local, row in zip(xp.flatnonzero(accepted),
                                            acc_rows)}
        # Order adaptation is per-row by construction: rows sit at
        # different BDF orders, so their difference tables have
        # different shapes and cannot be updated as one kernel.
        # lint: skip=KRN001 -- mixed per-row orders, scalar by design
        for row in adapt:
            self._adapt_order(row, order, differences, steps, orders,
                              steps_at_order, c_factored,
                              err_by_row[int(row)], options, max_step)

    def _newton(self, problem, rows, t_new, y_predict, c, psi, inverses,
                tol):
        options = self.options
        b = rows.size
        y = y_predict.copy()
        correction = xp.zeros_like(y)
        scale = options.atol + options.rtol * xp.abs(y_predict)
        converged = xp.zeros(b, dtype=bool)
        failed = xp.zeros(b, dtype=bool)
        n_iterations = xp.zeros(b, dtype=xp.int64)
        previous = xp.full(b, -1.0)
        for _ in range(NEWTON_MAXITER):
            work = xp.flatnonzero(~converged & ~failed)
            if work.size == 0:
                break
            n_iterations[work] += 1
            problem.counters.newton_iterations += work.size
            f = problem.fun(t_new[work], y[work], rows[work])
            bad = ~xp.all(xp.isfinite(f), axis=1)
            if xp.any(bad):
                failed[work[bad]] = True
                work = work[~bad]
                if work.size == 0:
                    continue
                f = f[~bad]
            residual = c[work, None] * f - psi[work] - correction[work]
            delta = xp.batched_matvec(inverses[rows[work]], residual)
            norms = xp.sqrt(xp.mean((delta / scale[work]) ** 2, axis=1))
            have_prev = previous[work] > 0
            with xp.errstate(divide="ignore", invalid="ignore",
                             over="ignore"):
                rate = xp.where(have_prev,
                                norms / xp.maximum(previous[work], 1e-300),
                                xp.nan)
                hopeless = have_prev & ((rate >= 1.0)
                                        | (rate / (1 - rate) * norms > tol))
            failed[work[hopeless]] = True
            keep = ~hopeless
            work = work[keep]
            if work.size == 0:
                continue
            delta = delta[keep]
            norms = norms[keep]
            y[work] += delta
            correction[work] += delta
            with xp.errstate(divide="ignore", invalid="ignore"):
                done = (norms == 0.0) | (
                    (previous[work] > 0)
                    & ((norms / xp.maximum(previous[work], 1e-300))
                       / (1 - xp.minimum(norms / xp.maximum(previous[work],
                                                            1e-300),
                                         0.999)) * norms < tol))
            converged[work[done]] = True
            previous[work] = norms
        return converged, n_iterations, y, correction

    def _adapt_order(self, row, order, differences, steps, orders,
                     steps_at_order, c_factored, current_err, options,
                     max_step) -> None:
        scale = options.atol + options.rtol * \
            xp.abs(differences[row, 0, :])

        def norm_of(vector):
            return float(xp.sqrt(xp.mean((vector / scale) ** 2)))

        candidates = [order]
        norms = [max(current_err, 1e-10)]
        if order > 1:
            candidates.insert(0, order - 1)
            norms.insert(0, max(norm_of(ERROR_CONST[order - 1]
                                        * differences[row, order, :]),
                                1e-10))
        if order < self.max_order:
            candidates.append(order + 1)
            norms.append(max(norm_of(ERROR_CONST[order + 1]
                                     * differences[row, order + 2, :]),
                             1e-10))
        factors = [norms[i] ** (-1.0 / (candidates[i] + 1))
                   for i in range(len(candidates))]
        best = int(xp.argmax(factors))
        new_order = candidates[best]
        factor = float(xp.clip(0.9 * factors[best],
                               options.min_step_factor,
                               options.max_step_factor))
        orders[row] = new_order
        new_h = min(steps[row] * factor, max_step)
        factor = new_h / steps[row]
        if factor > 0:
            change_difference_array(differences[row], int(new_order),
                                    factor)
            steps[row] = new_h
        steps_at_order[row] = 0
        c_factored[row] = -1.0
