"""Analytic performance model of the batched simulator on a GPU.

Converts the substrate's workload counters (kernel launches, per
simulation evaluations, factorizations, Newton iterations) into an
*estimated* execution time on a :class:`~repro.gpu.device.VirtualDevice`.

The model captures the three effects the paper family discusses:

1. every kernel launch pays a fixed overhead (dynamic-parallelism child
   launches pay a smaller one, but degrade once too many are in
   flight);
2. per-simulation arithmetic is throughput-limited: the cost of one RHS
   evaluation scales with the number of reactions M (each monomial is a
   couple of fused multiply-adds plus the stoichiometric scatter), and
   one Radau factorization scales with N^3;
3. a batch only uses the device fully when batch x species work covers
   the core count — small batches of small models leave cores idle,
   which is why per-simulation CPU solvers win that corner of the maps.

The estimates are *not* wall-clock truth — they are the modeled device
times reported alongside the honest NumPy-substrate measurements, used
to discuss map shapes. See DESIGN.md ("Hardware substitution").
"""

from __future__ import annotations

from dataclasses import dataclass

from .batched_ode import KernelCounters
from .device import TITAN_X, VirtualDevice

#: FLOPs charged per reaction per RHS evaluation (monomial product,
#: constant multiply, stoichiometric scatter).
FLOPS_PER_REACTION = 8.0
#: FLOPs charged per species per RHS evaluation (accumulation).
FLOPS_PER_SPECIES = 2.0
#: FLOPs charged per Jacobian evaluation per nonzero partial.
FLOPS_PER_PARTIAL = 6.0


@dataclass(frozen=True)
class DeviceTimeEstimate:
    """Decomposed estimated device time, all in seconds."""

    launch_seconds: float
    arithmetic_seconds: float
    linear_algebra_seconds: float

    @property
    def total_seconds(self) -> float:
        return (self.launch_seconds + self.arithmetic_seconds
                + self.linear_algebra_seconds)


def memory_footprint_doubles(batch_size: int, n_species: int,
                             n_reactions: int, n_save_points: int,
                             method: str = "auto") -> int:
    """Device-resident float64 count of a batched integration.

    Counts the big allocations: trajectories (B T N), integrator state
    (states/derivatives/stages ~ 10 B N), parameter matrix (B M), and —
    for Radau-routed work — Jacobians plus the real and complex
    factorizations (B N^2 * 4, the complex pair counting double). This
    is the accounting behind the paper family's observation that
    coarse-grained simulators with per-simulation matrices cannot fit
    large RBMs in device memory.
    """
    trajectories = batch_size * n_save_points * n_species
    integrator_state = 10 * batch_size * n_species
    parameters = batch_size * n_reactions
    total = trajectories + integrator_state + parameters
    if method in ("auto", "radau5"):
        total += 4 * batch_size * n_species * n_species
    elif method == "bdf":
        # Jacobians plus the real Newton-iteration inverses.
        total += 2 * batch_size * n_species * n_species
    return int(total)


def fits_device(batch_size: int, n_species: int, n_reactions: int,
                n_save_points: int, device: VirtualDevice = TITAN_X,
                method: str = "auto") -> bool:
    """Whether the batched working set fits in device memory."""
    return device.memory_fits(memory_footprint_doubles(
        batch_size, n_species, n_reactions, n_save_points, method))


def occupancy(batch_size: int, n_species: int,
              device: VirtualDevice) -> float:
    """Fraction of device cores kept busy by a batch.

    One simulation's fine-grained work spreads over ~N lanes; the
    coarse-grained axis multiplies by the batch size. Anything beyond
    the core count saturates at 1.
    """
    lanes = batch_size * max(n_species, 1)
    return min(1.0, lanes / device.cores)


def estimate_device_time(counters: KernelCounters, batch_size: int,
                         n_species: int, n_reactions: int,
                         device: VirtualDevice = TITAN_X) -> DeviceTimeEstimate:
    """Estimated device time for a recorded workload."""
    launch_overhead = device.kernel_launch_overhead_us * 1e-6
    child_overhead = device.child_launch_overhead_us * 1e-6
    if batch_size > device.child_launch_saturation:
        child_overhead *= batch_size / device.child_launch_saturation
    total_launches = (counters.rhs_kernel_launches
                      + counters.jacobian_kernel_launches)
    launch_seconds = total_launches * (launch_overhead
                                       + batch_size * child_overhead /
                                       max(batch_size, 1))

    used_fraction = occupancy(batch_size, n_species, device)
    effective_gflops = max(device.peak_gflops * used_fraction, 1e-6)
    rhs_flops = counters.rhs_simulation_evaluations * (
        FLOPS_PER_REACTION * n_reactions + FLOPS_PER_SPECIES * n_species)
    jac_flops = counters.jacobian_simulation_evaluations * (
        FLOPS_PER_PARTIAL * 2.0 * n_reactions * n_species ** 0.5)
    arithmetic_seconds = (rhs_flops + jac_flops) / (effective_gflops * 1e9)

    lu_flops = counters.factorizations * (2.0 / 3.0) * n_species ** 3
    newton_flops = counters.newton_iterations * 2.0 * n_species ** 2
    linear_algebra_seconds = (lu_flops + newton_flops) / \
        (effective_gflops * 1e9)

    return DeviceTimeEstimate(launch_seconds, arithmetic_seconds,
                              linear_algebra_seconds)
