"""Batched right-hand-side bindings for the GPU-style engines.

A :class:`BatchedODEProblem` binds a compiled
:class:`~repro.model.odesystem.ODESystem` to a batch of
parameterizations and an evaluation policy, exposing the masked-subset
evaluation interface the batched integrators consume:

    fun(times, states, rows)      -> derivatives for the selected sims
    jacobian(times, states, rows) -> batched Jacobians for the selection

``rows`` indexes into the batch (the active-simulation subset of the
current integration step), so per-simulation kinetic constants are
looked up device-side without host round trips — the analog of keeping
the parameter matrix resident in GPU global memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..backend import Array, xp
from ..errors import SolverError
from ..model import ODESystem, ParameterizationBatch
from ..model.odesystem import POLICIES

if TYPE_CHECKING:  # layering: resilience.faults is a leaf data module
    from ..guards.state import KernelGuard
    from ..resilience.faults import FaultPlan
    from ..telemetry.tracer import SpanHandle, Tracer


@dataclass
class KernelCounters:
    """Workload counters of the batched substrate.

    ``kernel_launches`` counts vectorized evaluation calls (the analog
    of CUDA kernel launches); ``simulation_evaluations`` counts the
    per-simulation work they performed (launches x active batch width).
    """

    rhs_kernel_launches: int = 0
    rhs_simulation_evaluations: int = 0
    jacobian_kernel_launches: int = 0
    jacobian_simulation_evaluations: int = 0
    factorizations: int = 0
    newton_iterations: int = 0

    def merge(self, other: "KernelCounters") -> None:
        self.rhs_kernel_launches += other.rhs_kernel_launches
        self.rhs_simulation_evaluations += other.rhs_simulation_evaluations
        self.jacobian_kernel_launches += other.jacobian_kernel_launches
        self.jacobian_simulation_evaluations += \
            other.jacobian_simulation_evaluations
        self.factorizations += other.factorizations
        self.newton_iterations += other.newton_iterations


@dataclass
class BatchedODEProblem:
    """An ODE system bound to a parameter batch and an eval policy.

    ``row_ids`` gives every row a stable *global* identity (its index
    in the full campaign batch) that survives router/retry subsetting;
    ``fault_plan`` is the deterministic fault-injection hook of the
    resilience layer — rows listed in its ``nan_rows`` get NaN
    derivatives on every RHS evaluation, and rows in ``drift_rows`` get
    a constant bias added (violating conservation), keyed by global
    identity so the fault follows the row through subsets and launch
    chunks. ``guard`` is the in-kernel state-validity guard
    (:class:`repro.guards.KernelGuard`), likewise keyed by global ids
    and travelling through every subset.

    ``tracer``/``trace_span`` carry the telemetry context into the
    integrators: solvers emit their kernel-phase spans
    (compile / step-loop / dense-output) as children of ``trace_span``
    through ``tracer`` (see :mod:`repro.telemetry`). Both default to
    off and, like the counters, travel through every subset.
    """

    system: ODESystem
    parameters: ParameterizationBatch
    policy: str = "hybrid"
    counters: KernelCounters = field(default_factory=KernelCounters)
    fault_plan: "FaultPlan | None" = None
    row_ids: Array | None = None
    guard: "KernelGuard | None" = None
    tracer: "Tracer | None" = None
    trace_span: "SpanHandle | None" = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise SolverError(f"unknown policy {self.policy!r}; "
                              f"expected one of {POLICIES}")
        if self.row_ids is None:
            self.row_ids = xp.arange(self.parameters.size, dtype=xp.int64)
        else:
            self.row_ids = xp.asarray(self.row_ids, dtype=xp.int64)
            if self.row_ids.shape != (self.parameters.size,):
                raise SolverError(
                    f"row_ids shape {self.row_ids.shape} does not match "
                    f"batch size {self.parameters.size}")
        if self.parameters.n_reactions != self.system.n_reactions:
            raise SolverError(
                f"parameter batch has {self.parameters.n_reactions} rate "
                f"constants, system has {self.system.n_reactions} reactions")
        if self.parameters.n_species != self.system.n_species:
            raise SolverError(
                f"parameter batch has {self.parameters.n_species} species "
                f"columns, system has {self.system.n_species} species")

    @property
    def batch_size(self) -> int:
        return self.parameters.size

    @property
    def n_species(self) -> int:
        return self.system.n_species

    def initial_states(self) -> Array:
        return self.parameters.initial_states.copy()

    def fun(self, times: Array, states: Array,
            rows: Array) -> Array:
        """Batched dX/dt for the simulations selected by ``rows``.

        ``times`` is accepted for interface uniformity; RBM dynamics are
        autonomous so it is unused.
        """
        del times
        constants = self.parameters.rate_constants[rows]
        self.counters.rhs_kernel_launches += 1
        self.counters.rhs_simulation_evaluations += rows.shape[0]
        derivatives = self.system.rhs(states, constants, self.policy)
        if self.fault_plan is not None:
            if self.fault_plan.injects_nan:
                faulted = self.fault_plan.nan_mask(self.row_ids[rows])
                if faulted.any():
                    derivatives[faulted] = xp.nan
            if self.fault_plan.injects_drift:
                drifting = self.fault_plan.drift_mask(self.row_ids[rows])
                if drifting.any():
                    derivatives[drifting] += self.fault_plan.drift_rate
        return derivatives

    def jacobian(self, times: Array, states: Array,
                 rows: Array) -> Array:
        """Batched Jacobians for the selected simulations."""
        del times
        constants = self.parameters.rate_constants[rows]
        self.counters.jacobian_kernel_launches += 1
        self.counters.jacobian_simulation_evaluations += rows.shape[0]
        return self.system.jacobian(states, constants)

    def subset(self, rows: Array) -> "BatchedODEProblem":
        """Problem restricted to a subset of simulations.

        The kernel counters are *shared* with the parent problem so
        router-split sub-batches keep accumulating into one workload
        account; global row identities, the fault plan and the kernel
        guard travel with the subset.
        """
        return BatchedODEProblem(self.system, self.parameters.subset(rows),
                                 self.policy, self.counters,
                                 self.fault_plan, self.row_ids[rows],
                                 self.guard, self.tracer, self.trace_span)
