"""Batched Dormand-Prince 5(4) integrator.

The coarse-grained axis of the substrate: every active simulation in
the batch advances through the same sequence of vectorized stage
kernels, but each keeps its own time, step size, PI controller memory
and accept/reject decision — the NumPy realization of one CUDA thread
(block) per simulation with per-thread adaptive stepping.

Save times are shared across the batch and hit exactly by per-sim step
clipping, which is how the coarse-grained GPU simulators of this paper
family record dynamics without dense output.
"""

from __future__ import annotations

from ..backend import Array, xp
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions, validate_time_grid
from ..solvers.tableaus import DOPRI5
from ..telemetry.tracer import NULL_TRACER
from .batch_result import (BROKEN, EXHAUSTED, METHOD_DOPRI5, OK, RUNNING,
                           STIFF, BatchSolveResult, allocate_result)
from .batched_ode import BatchedODEProblem

_EDGE = 1e-12  # relative tolerance when matching save times
#: Hairer's DOPRI5 stability-boundary constant for the stiffness test.
_STIFFNESS_BOUNDARY = 3.25
#: Consecutive violations before a simulation is declared stiff.
_STIFFNESS_PATIENCE = 15


def _combine_stages(weights: Array, stages: Array) -> Array:
    """Weighted stage sum with per-row rounding independent of how many
    rows are in flight.

    ``xp.tensordot`` lowers to a BLAS product whose row results can
    change with the array width; this element-wise accumulation keeps
    split launches bit-identical to unsplit ones.
    """
    combined = weights[0] * stages[0]
    for j in range(1, len(weights)):
        combined += weights[j] * stages[j]
    return combined


def _scaled_error_norms(error: Array, reference: Array,
                        candidate: Array,
                        options: SolverOptions) -> Array:
    scale = options.atol + options.rtol * xp.maximum(xp.abs(reference),
                                                     xp.abs(candidate))
    return xp.sqrt(xp.mean((error / scale) ** 2, axis=1))


def _initial_steps(problem: BatchedODEProblem, t0: float, states: Array,
                   derivatives: Array, order: int,
                   options: SolverOptions, span: float) -> Array:
    """Vectorized Hairer starting-step heuristic (one extra kernel)."""
    rows = xp.arange(states.shape[0])
    scale = options.atol + xp.abs(states) * options.rtol
    d0 = xp.sqrt(xp.mean((states / scale) ** 2, axis=1))
    d1 = xp.sqrt(xp.mean((derivatives / scale) ** 2, axis=1))
    h0 = xp.where((d0 < 1e-5) | (d1 < 1e-5), 1e-6, 0.01 * d0 / (d1 + 1e-300))
    probe = states + h0[:, None] * derivatives
    f1 = problem.fun(xp.full(states.shape[0], t0) + h0, probe, rows)
    d2 = xp.sqrt(xp.mean(((f1 - derivatives) / scale) ** 2, axis=1)) / h0
    dmax = xp.maximum(d1, d2)
    h1 = xp.where(dmax <= 1e-15, xp.maximum(1e-6, h0 * 1e-3),
                  (0.01 / xp.maximum(dmax, 1e-300)) ** (1.0 / (order + 1)))
    # Pairwise minimum in fixed order: bit-identical to the former
    # minimum.reduce over the same three operands.
    cap = xp.full_like(h0, min(options.max_step, span))
    return xp.minimum(xp.minimum(100.0 * h0, h1), cap)


class BatchDopri5:
    """Adaptive batched DOPRI5 with per-simulation step control.

    With ``abort_on_stiffness`` enabled (the router's configuration),
    simulations whose Hairer stiffness test fires persistently are
    stopped early with status ``STIFF`` so that the router can
    re-execute them with Radau IIA instead of letting them burn the
    whole step budget near the explicit stability boundary.
    """

    name = "batch-dopri5"
    method_code = METHOD_DOPRI5

    def __init__(self, options: SolverOptions = DEFAULT_OPTIONS,
                 use_pi_controller: bool = True,
                 abort_on_stiffness: bool = False) -> None:
        self.options = options
        self.use_pi_controller = use_pi_controller
        self.abort_on_stiffness = abort_on_stiffness

    def solve(self, problem: BatchedODEProblem, t_span: tuple[float, float],
              t_eval: Array | None = None,
              initial_states: Array | None = None) -> BatchSolveResult:
        options = self.options
        tableau = DOPRI5
        t_eval = validate_time_grid(t_span, t_eval)
        t0, t1 = float(t_span[0]), float(t_span[1])
        batch = problem.batch_size
        n = problem.n_species
        tracer = problem.tracer or NULL_TRACER
        compile_span = tracer.start("compile", "phase",
                                    parent=problem.trace_span,
                                    solver=self.name, rows=batch)

        states = (problem.initial_states() if initial_states is None
                  else xp.array(initial_states, dtype=xp.float64))
        result = allocate_result(t_eval, batch, n, self.method_code)
        result.counters = problem.counters

        times = xp.full(batch, t0)
        save_index = xp.zeros(batch, dtype=xp.int64)
        if t_eval[0] == t0:
            result.y[:, 0, :] = states
            save_index[:] = 1

        all_rows = xp.arange(batch)
        derivatives = problem.fun(times, states, all_rows)
        if options.first_step is not None:
            steps = xp.full(batch, options.first_step)
        else:
            steps = _initial_steps(problem, t0, states, derivatives,
                                   tableau.order, options, t1 - t0)
        previous_errors = xp.full(batch, -1.0)  # <0: no PI memory yet
        error_exponent = -1.0 / (tableau.error_order + 1)
        max_step = min(options.max_step, t1 - t0)
        status = result.status_codes
        stiffness_strikes = xp.zeros(batch, dtype=xp.int64)
        nonstiff_streak = xp.zeros(batch, dtype=xp.int64)

        # Simulations whose whole grid is already recorded.
        status[save_index >= t_eval.size] = OK
        tracer.end(compile_span)
        loop_span = tracer.start("step-loop", "phase",
                                 parent=problem.trace_span,
                                 solver=self.name)

        while True:
            active = xp.flatnonzero(status == RUNNING)
            if active.size == 0:
                break
            exhausted = active[result.n_steps[active] >= options.max_steps]
            if exhausted.size:
                status[exhausted] = EXHAUSTED
                active = xp.flatnonzero(status == RUNNING)
                if active.size == 0:
                    break

            t_act = times[active]
            h_act = xp.minimum(steps[active], t1 - t_act)
            next_save = t_eval[xp.minimum(save_index[active],
                                          t_eval.size - 1)]
            hit = t_act + h_act >= next_save - _EDGE * xp.maximum(
                1.0, xp.abs(next_save))
            h_act = xp.where(hit, next_save - t_act, h_act)

            # Non-finite steps (a NaN RHS poisoned the step heuristic or
            # controller) can never recover — break those rows at once.
            broken_step = ~xp.isfinite(h_act) | \
                (h_act <= xp.abs(t_act) * 1e-15)
            dead = active[broken_step]
            if dead.size:
                status[dead] = BROKEN
                if problem.guard is not None:
                    problem.guard.on_step_break(
                        dead, problem.row_ids[dead], t_act[broken_step],
                        h_act[broken_step], status)
                keep = ~broken_step
                active, t_act, h_act, hit = (active[keep], t_act[keep],
                                             h_act[keep], hit[keep])
                if active.size == 0:
                    continue

            result.n_steps[active] += 1
            y_act = states[active]
            stage_k = xp.empty((tableau.n_stages, active.size, n))
            stage_k[0] = derivatives[active]
            penultimate_states = None
            # Diverging rows overflow transiently before they are caught
            # by the finiteness check; keep those FP warnings quiet.
            with xp.errstate(over="ignore", invalid="ignore"):
                for i in range(1, tableau.n_stages):
                    increment = _combine_stages(tableau.a[i, :i],
                                                stage_k[:i])
                    stage_states = y_act + h_act[:, None] * increment
                    if i == tableau.n_stages - 2:
                        penultimate_states = stage_states
                    stage_times = t_act + tableau.c[i] * h_act
                    stage_k[i] = problem.fun(stage_times, stage_states,
                                             active)

                y_new = y_act + h_act[:, None] * _combine_stages(
                    tableau.b, stage_k)
                local_error = h_act[:, None] * _combine_stages(
                    tableau.e, stage_k)
                err = _scaled_error_norms(local_error, y_act, y_new,
                                          options)
            finite = xp.all(xp.isfinite(y_new), axis=1)
            err = xp.where(finite, err, xp.inf)

            accepted = err <= 1.0
            acc_rows = active[accepted]
            rej_rows = active[~accepted]
            result.n_accepted[acc_rows] += 1
            result.n_rejected[rej_rows] += 1

            if acc_rows.size:
                t_new = t_act[accepted] + h_act[accepted]
                accepted_states = y_new[accepted]
                states[acc_rows] = accepted_states
                derivatives[acc_rows] = stage_k[-1, accepted]  # FSAL
                times[acc_rows] = t_new

                if problem.guard is not None:
                    problem.guard.after_accept(
                        states, acc_rows, problem.row_ids[acc_rows],
                        t_new, status, gathered=accepted_states)

                if self.abort_on_stiffness:
                    self._stiffness_test(
                        acc_rows, accepted, h_act, y_new,
                        penultimate_states, stage_k, status,
                        stiffness_strikes, nonstiff_streak)

                hits = xp.flatnonzero(accepted & hit)
                if hits.size:
                    # Save from `states` (possibly guard-clamped), and
                    # only for rows the guard left running.
                    hit_rows = active[hits]
                    hit_rows = hit_rows[status[hit_rows] == RUNNING]
                    result.y[hit_rows, save_index[hit_rows], :] = \
                        states[hit_rows]
                    save_index[hit_rows] += 1
                    status[hit_rows[save_index[hit_rows] >= t_eval.size]] = OK

                err_acc = xp.maximum(err[accepted], 1e-10)
                factor = options.safety * err_acc ** error_exponent
                if self.use_pi_controller:
                    memory = previous_errors[acc_rows]
                    has_memory = memory > 0.0
                    pi_scale = xp.where(
                        has_memory,
                        (xp.maximum(memory, 1e-10) / err_acc) ** 0.04, 1.0)
                    factor *= pi_scale
                factor = xp.clip(factor, options.min_step_factor,
                                 options.max_step_factor)
                previous_errors[acc_rows] = err_acc
                steps[acc_rows] = xp.minimum(h_act[accepted] * factor,
                                             max_step)

            if rej_rows.size:
                err_rej = err[~accepted]
                shrink = xp.where(
                    xp.isfinite(err_rej),
                    xp.maximum(options.min_step_factor,
                               options.safety * err_rej ** error_exponent),
                    options.min_step_factor)
                steps[rej_rows] = h_act[~accepted] * shrink

        tracer.end(loop_span)
        # Save points are recorded in-loop by per-sim step clipping, so
        # the dense-output phase of this substrate is only the result
        # hand-off; the span keeps the phase catalog uniform.
        with tracer.span("dense-output", "phase",
                         parent=problem.trace_span, solver=self.name):
            return result

    @staticmethod
    def _stiffness_test(acc_rows, accepted, h_act, y_new, penultimate_states,
                        stage_k, status, strikes, nonstiff_streak) -> None:
        """Vectorized Hairer stiffness test on the accepted subset.

        The last two DOPRI5 stages both sit at t + h; the ratio of their
        derivative difference to their state difference estimates
        h * rho(J). Persistent violations of the explicit stability
        boundary flag the simulation as stiff and deactivate it (unless
        it already finished).
        """
        with xp.errstate(over="ignore", invalid="ignore",
                         divide="ignore"):
            numerator = xp.sum(
                (stage_k[-1, accepted] - stage_k[-2, accepted]) ** 2,
                axis=1)
            denominator = xp.sum(
                (y_new[accepted] - penultimate_states[accepted]) ** 2,
                axis=1)
            valid = (denominator > 0.0) & xp.isfinite(denominator)
            h_lambda = h_act[accepted] * xp.sqrt(numerator / denominator)
        violated = valid & (h_lambda > _STIFFNESS_BOUNDARY)
        strikes[acc_rows[violated]] += 1
        nonstiff_streak[acc_rows[violated]] = 0
        calm = acc_rows[~violated]
        nonstiff_streak[calm] += 1
        reset = calm[nonstiff_streak[calm] >= 6]
        strikes[reset] = 0
        flagged = acc_rows[strikes[acc_rows] >= _STIFFNESS_PATIENCE]
        still_running = flagged[status[flagged] == RUNNING]
        status[still_running] = STIFF
