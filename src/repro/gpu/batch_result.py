"""Result schema shared by the batched GPU-style integrators."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backend import Array, xp
from .batched_ode import KernelCounters

#: Per-simulation integer status codes.
RUNNING = 0
OK = 1
EXHAUSTED = 2
BROKEN = 3
STIFF = 4
GUARD = 5

STATUS_NAMES = {RUNNING: "running", OK: "success",
                EXHAUSTED: "max_steps", BROKEN: "failed",
                STIFF: "stiff_detected", GUARD: "guard_violation"}

#: Per-simulation method codes.
METHOD_DOPRI5 = 0
METHOD_RADAU5 = 1
METHOD_LSODA = 2
METHOD_VODE = 3
METHOD_AUTOSWITCH = 4
METHOD_SSA = 5
METHOD_TAU_LEAPING = 6
METHOD_BDF = 7
METHOD_NAMES = {METHOD_DOPRI5: "dopri5", METHOD_RADAU5: "radau5",
                METHOD_LSODA: "lsoda", METHOD_VODE: "vode",
                METHOD_AUTOSWITCH: "autoswitch", METHOD_SSA: "ssa",
                METHOD_TAU_LEAPING: "tau-leaping", METHOD_BDF: "bdf"}


@dataclass
class BatchSolveResult:
    """Trajectories and statistics of a batched integration.

    Attributes
    ----------
    t:
        Shared save-time grid, shape (T,).
    y:
        Trajectories, shape (B, T, N). Rows of failed simulations are
        valid up to their recorded save count and NaN afterwards.
    status_codes:
        Shape (B,), values in {OK, EXHAUSTED, BROKEN, STIFF, GUARD}
        (STIFF only appears transiently: the router re-executes
        stiff-flagged rows with Radau IIA before returning; GUARD marks
        rows a numerical-integrity guard deactivated).
    method_codes:
        Shape (B,), which integrator produced each row.
    n_steps, n_accepted, n_rejected:
        Per-simulation step counters, each shape (B,).
    counters:
        Substrate-level kernel/work counters.
    elapsed_seconds:
        Wall-clock of the integration (filled by the engine).
    """

    t: Array
    y: Array
    status_codes: Array
    method_codes: Array
    n_steps: Array
    n_accepted: Array
    n_rejected: Array
    counters: KernelCounters = field(default_factory=KernelCounters)
    elapsed_seconds: float = 0.0

    @property
    def batch_size(self) -> int:
        return self.y.shape[0]

    @property
    def n_species(self) -> int:
        return self.y.shape[2]

    @property
    def success_mask(self) -> Array:
        return self.status_codes == OK

    @property
    def failed_mask(self) -> Array:
        """Rows that did not finish (any status other than OK)."""
        return self.status_codes != OK

    @property
    def all_success(self) -> bool:
        return bool(xp.all(self.status_codes == OK))

    def statuses(self) -> list[str]:
        return [STATUS_NAMES[int(code)] for code in self.status_codes]

    def methods(self) -> list[str]:
        return [METHOD_NAMES[int(code)] for code in self.method_codes]

    def trajectory(self, index: int) -> Array:
        """One simulation's trajectory, shape (T, N)."""
        return self.y[index]

    def final_states(self) -> Array:
        """States at the last save time, shape (B, N)."""
        return self.y[:, -1, :]

    def merge_rows(self, other: "BatchSolveResult",
                   rows: Array) -> None:
        """Overwrite the given rows with another result's rows.

        Used by the router and the retry ladder to splice per-method
        sub-batches back into the full batch. ``other`` must hold
        exactly ``rows.size`` simulations on the same time grid.

        Counters are only merged when the two results do *not* already
        share one substrate account: the engine threads a single
        :class:`~repro.gpu.batched_ode.KernelCounters` through every
        launch chunk and router subset, and merging an account into
        itself would double-count all substrate work.
        """
        self.y[rows] = other.y
        self.status_codes[rows] = other.status_codes
        self.method_codes[rows] = other.method_codes
        self.n_steps[rows] = other.n_steps
        self.n_accepted[rows] = other.n_accepted
        self.n_rejected[rows] = other.n_rejected
        if other.counters is not self.counters:
            self.counters.merge(other.counters)

    def take_rows(self, rows: Array) -> "BatchSolveResult":
        """Copy of a row subset (fresh, empty counter account)."""
        return BatchSolveResult(
            t=self.t.copy(),
            y=self.y[rows].copy(),
            status_codes=self.status_codes[rows].copy(),
            method_codes=self.method_codes[rows].copy(),
            n_steps=self.n_steps[rows].copy(),
            n_accepted=self.n_accepted[rows].copy(),
            n_rejected=self.n_rejected[rows].copy(),
            elapsed_seconds=self.elapsed_seconds,
        )


def allocate_result(t_eval: Array, batch_size: int, n_species: int,
                    method_code: int) -> BatchSolveResult:
    """Fresh result with NaN trajectories and 'running' statuses."""
    return BatchSolveResult(
        t=t_eval.copy(),
        y=xp.full((batch_size, t_eval.size, n_species), xp.nan),
        status_codes=xp.full(batch_size, RUNNING, dtype=xp.int64),
        method_codes=xp.full(batch_size, method_code, dtype=xp.int64),
        n_steps=xp.zeros(batch_size, dtype=xp.int64),
        n_accepted=xp.zeros(batch_size, dtype=xp.int64),
        n_rejected=xp.zeros(batch_size, dtype=xp.int64),
    )
