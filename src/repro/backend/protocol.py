"""Array-backend protocol of the batched substrate.

The batched integrators (:mod:`repro.gpu`) never import numpy; every
array operation goes through the namespace ``xp`` exported by
:mod:`repro.backend`. This module declares the contract that namespace
must satisfy — the exact op surface (:data:`REQUIRED_OPS`) and the
validator that refuses an incomplete backend before any kernel touches
it — so a CuPy/torch substrate can drop in by implementing the same
surface.

The declared surface is also the source of truth for the
backend-conformance lint (``BKD003``): an ``xp.<op>`` read inside a
kernel must name an op declared here, which is what keeps the protocol
and its consumers from drifting apart silently.
"""

from __future__ import annotations

from ..errors import BackendError

#: Scalar constants exposed as plain attributes.
CONSTANT_OPS = ("nan", "inf")

#: Dtype objects and the array type used in annotations/isinstance.
DTYPE_OPS = ("float64", "int64", "complex128", "bool_", "ndarray")

#: Array creation.
CREATION_OPS = ("array", "asarray", "arange", "empty", "eye", "full",
                "full_like", "linspace", "ones", "vander", "zeros",
                "zeros_like")

#: Elementwise math (ufunc-style, broadcast over the batch axis).
ELEMENTWISE_OPS = ("abs", "clip", "isfinite", "maximum", "minimum",
                   "sqrt", "where")

#: Reductions (callers pass an explicit ``axis`` on batched arrays).
REDUCTION_OPS = ("all", "any", "argmax", "mean", "sum")

#: Shape / indexing / set ops.
STRUCTURAL_OPS = ("concatenate", "flatnonzero", "setdiff1d", "stack")

#: Linear algebra: the generic einsum passthrough plus the batched
#: factor/solve surface the stiff integrators are built on.
LINALG_OPS = ("batched_inv", "batched_matvec", "einsum", "inv", "norm")

#: Numeric introspection and floating-point error control.
CONTEXT_OPS = ("errstate", "finfo")

#: The full op surface every backend must expose.
REQUIRED_OPS: tuple[str, ...] = (CONSTANT_OPS + DTYPE_OPS + CREATION_OPS
                                 + ELEMENTWISE_OPS + REDUCTION_OPS
                                 + STRUCTURAL_OPS + LINALG_OPS
                                 + CONTEXT_OPS)


class ArrayBackend:
    """Structural interface of an array backend.

    A backend is any object exposing every op named in
    :data:`REQUIRED_OPS` plus a ``name`` string. Ops mirror the numpy
    call signatures; the named batched ops are:

    ``batched_inv(matrices)``
        Inverse of a stacked ``(b, n, n)`` matrix batch, one
        factorization per row.
    ``batched_matvec(matrices, vectors)``
        Row-wise matrix-vector products: ``(b, n, n) @ (b, n) ->
        (b, n)``, contracted as ``einsum("bij,bj->bi", ...)`` so the
        batch axis is never reduced.

    This base class only documents the contract; conformance is
    structural and checked by :func:`validate_backend`.
    """

    name: str = "abstract"


def validate_backend(backend) -> object:
    """Check a backend against :data:`REQUIRED_OPS`.

    Returns the backend unchanged when it conforms; raises
    :class:`~repro.errors.BackendError` naming every missing op
    otherwise, so a partial substrate fails loudly at selection time
    instead of deep inside an integration loop.
    """
    missing = [op for op in REQUIRED_OPS if not hasattr(backend, op)]
    if missing:
        label = getattr(backend, "name", type(backend).__name__)
        raise BackendError(
            f"backend {label!r} does not satisfy the array protocol: "
            f"missing op(s) {', '.join(missing)}")
    return backend
