"""Array-backend protocol and substrates (``repro.backend``).

The bridge between the batched integrators and the array library that
executes them. Kernels import the namespace ``xp`` (and the ``Array``
annotation alias) from this package and touch array math through it
exclusively — the conformance rules ``BKD001``–``BKD003``
(``repro lint --shapes``) keep that boundary from eroding — so the
numpy substrate, and eventually a CuPy/torch drop-in, are selectable
without touching kernel code.

* :data:`xp` — the process-wide backend (numpy substrate today).
* :data:`Array` — the backend's array type, for annotations.
* :func:`get_backend` — look a substrate up by name; raises
  :class:`~repro.errors.BackendError` for unknown names.
* :func:`validate_backend` / :data:`REQUIRED_OPS` — the protocol
  contract (see :mod:`repro.backend.protocol`).
"""

from __future__ import annotations

from ..errors import BackendError
from .numpy_backend import NumpyBackend, xp
from .protocol import (ArrayBackend, REQUIRED_OPS, validate_backend)

#: Array type of the active backend, for annotations and isinstance.
Array = xp.ndarray

#: Registered substrates by name.
_BACKENDS = {"numpy": xp}


def get_backend(name: str = "numpy"):
    """The substrate registered under ``name`` (default: numpy)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; registered: "
            f"{', '.join(sorted(_BACKENDS))}") from None


__all__ = ["Array", "ArrayBackend", "BackendError", "NumpyBackend",
           "REQUIRED_OPS", "get_backend", "validate_backend", "xp"]
