"""NumPy substrate of the array-backend protocol.

Every op delegates *directly* to the numpy callable it names — no
wrappers, no copies — so results through ``xp`` are bit-identical to
the raw numpy calls the kernels made before the protocol extraction
(locked by ``tests/test_backend.py`` and the backend-overhead
benchmark gate).

Ops are bound as instance attributes (not class attributes): plain
Python functions like ``np.mean`` are descriptors, and binding them on
the class would turn calls into bound methods with a spurious ``self``.
"""

from __future__ import annotations

import numpy as np

from .protocol import REQUIRED_OPS, validate_backend

#: Ops that exist on the numpy module under the same name.
_NUMPY_DIRECT = tuple(op for op in REQUIRED_OPS
                      if op not in ("batched_inv", "batched_matvec",
                                    "inv", "norm"))


def _batched_matvec(matrices: np.ndarray,
                    vectors: np.ndarray) -> np.ndarray:
    """Row-wise matrix-vector products ``(b, n, n) @ (b, n)``.

    Contracted as a batch-preserving einsum: the leading (row) axis
    stays in the output, so per-row rounding is independent of how many
    rows are in flight (the launch-splitting bit-identity invariant).
    """
    return np.einsum("bij,bj->bi", matrices, vectors)


class NumpyBackend:
    """The numpy realization of :data:`~repro.backend.protocol.REQUIRED_OPS`."""

    name = "numpy"

    def __init__(self) -> None:
        for op in _NUMPY_DIRECT:
            setattr(self, op, getattr(np, op))
        self.inv = np.linalg.inv
        self.batched_inv = np.linalg.inv
        self.norm = np.linalg.norm
        self.batched_matvec = _batched_matvec


#: The process-wide numpy substrate the gpu kernels call through.
xp = validate_backend(NumpyBackend())
