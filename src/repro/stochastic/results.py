"""Result container for the stochastic batched simulators."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .propensities import counts_to_concentrations

#: Per-simulation status codes (aligned with the deterministic engine).
RUNNING = 0
OK = 1
EXHAUSTED = 2

STATUS_NAMES = {RUNNING: "running", OK: "success", EXHAUSTED: "max_events"}


@dataclass
class StochasticBatchResult:
    """Trajectories (in molecule counts) of a stochastic batch.

    Attributes
    ----------
    t:
        Shared save grid, shape (T,).
    counts:
        Molecule counts at the save times, shape (B, T, N).
    status_codes:
        Shape (B,).
    n_events:
        Exact reaction firings (SSA steps) per simulation.
    n_leaps:
        Tau-leap steps per simulation (zero for pure SSA).
    volume:
        The Omega the simulation ran at.
    method:
        "ssa" or "tau-leaping".
    """

    t: np.ndarray
    counts: np.ndarray
    status_codes: np.ndarray
    n_events: np.ndarray
    n_leaps: np.ndarray
    volume: float
    method: str
    elapsed_seconds: float = 0.0

    @property
    def batch_size(self) -> int:
        return self.counts.shape[0]

    @property
    def all_success(self) -> bool:
        return bool(np.all(self.status_codes == OK))

    def statuses(self) -> list[str]:
        return [STATUS_NAMES[int(code)] for code in self.status_codes]

    def concentrations(self) -> np.ndarray:
        """Trajectories converted back to concentration units."""
        return counts_to_concentrations(self.counts, self.volume)

    def ensemble_mean(self) -> np.ndarray:
        """Mean concentration trajectory across the batch, shape (T, N)."""
        return self.concentrations().mean(axis=0)

    def ensemble_std(self) -> np.ndarray:
        """Std of the concentration trajectories, shape (T, N)."""
        return self.concentrations().std(axis=0)


def allocate(t_eval: np.ndarray, batch: int, n_species: int, volume: float,
             method: str) -> StochasticBatchResult:
    return StochasticBatchResult(
        t=t_eval.copy(),
        counts=np.zeros((batch, t_eval.size, n_species)),
        status_codes=np.full(batch, RUNNING, dtype=np.int64),
        n_events=np.zeros(batch, dtype=np.int64),
        n_leaps=np.zeros(batch, dtype=np.int64),
        volume=volume,
        method=method,
    )
