"""Batched tau-leaping stochastic simulator.

The accelerated approximate counterpart of the exact SSA (the
cuTauLeaping slot of the simulator family's "semiotic square"): each
leap fires Poisson-distributed reaction counts over a step tau chosen
by the Cao-Gillespie-Petzold bounded-relative-change criterion, with

* per-simulation adaptive tau (batched, like the deterministic step
  controllers),
* clipping of tau to the next save time, so the grid is hit exactly,
* automatic fallback to exact SSA micro-steps whenever tau would be
  smaller than a few expected event intervals,
* rejection and halving of leaps that would drive a population
  negative.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from .propensities import StochasticNetwork
from .results import EXHAUSTED, OK, RUNNING, StochasticBatchResult, allocate

#: Relative-change bound epsilon of the tau-selection rule.
EPSILON = 0.03
#: Leap/SSA switch: fall back to exact steps when tau < FALLBACK / a0.
FALLBACK_MULTIPLE = 10.0
#: Exact micro-steps taken per fallback activation.
SSA_BURST = 10


class BatchTauLeaping:
    """Adaptive batched tau-leaping with SSA fallback."""

    name = "tau-leaping"

    def __init__(self, max_steps: int = 1_000_000,
                 epsilon: float = EPSILON) -> None:
        if max_steps < 1:
            raise SolverError("max_steps must be >= 1")
        if not (0.0 < epsilon < 1.0):
            raise SolverError(f"epsilon must be in (0, 1), got {epsilon}")
        self.max_steps = max_steps
        self.epsilon = epsilon

    def solve(self, network: StochasticNetwork,
              initial_counts: np.ndarray, t_span: tuple[float, float],
              t_eval: np.ndarray,
              rng: np.random.Generator) -> StochasticBatchResult:
        t0, t1 = float(t_span[0]), float(t_span[1])
        t_eval = np.asarray(t_eval, dtype=np.float64)
        counts = np.array(np.atleast_2d(initial_counts), dtype=np.float64)
        batch, n = counts.shape
        result = allocate(t_eval, batch, n, network.volume, self.name)
        times = np.full(batch, t0)
        save_index = np.zeros(batch, dtype=np.int64)
        status = result.status_codes
        stoichiometry = network.stoichiometry.astype(np.float64)
        consumes_second_order = self._second_order_consumers(network)

        # Record grid points at or before t0.
        initial_hits = t_eval <= t0
        if np.any(initial_hits):
            hit_count = int(np.sum(initial_hits))
            result.counts[:, :hit_count, :] = counts[:, None, :]
            save_index[:] = hit_count

        while True:
            active = np.flatnonzero(status == RUNNING)
            if active.size == 0:
                break
            total_steps = result.n_leaps[active] + result.n_events[active]
            exhausted = active[total_steps >= self.max_steps]
            if exhausted.size:
                status[exhausted] = EXHAUSTED
                active = np.flatnonzero(status == RUNNING)
                if active.size == 0:
                    break

            propensities = network.propensities(counts[active])
            totals = propensities.sum(axis=1)
            dead = totals <= 0.0
            if np.any(dead):
                dead_rows = active[dead]
                for row in dead_rows:
                    remaining = save_index[row]
                    result.counts[row, remaining:, :] = counts[row]
                    save_index[row] = t_eval.size
                status[dead_rows] = OK
                keep = ~dead
                active, propensities, totals = (active[keep],
                                                propensities[keep],
                                                totals[keep])
                if active.size == 0:
                    continue

            tau = self._select_tau(counts[active], propensities,
                                   stoichiometry, consumes_second_order)
            # Clip to the next save time so the grid is hit exactly.
            next_save = t_eval[np.minimum(save_index[active],
                                          t_eval.size - 1)]
            limit = np.minimum(next_save, t1) - times[active]
            limit = np.maximum(limit, 0.0)
            tau = np.minimum(tau, limit)
            hits_grid = tau >= limit - 1e-15

            fallback = tau * totals < FALLBACK_MULTIPLE
            leap_mask = ~fallback

            if np.any(leap_mask):
                self._leap(network, counts, times, active[leap_mask],
                           propensities[leap_mask], tau[leap_mask],
                           stoichiometry, result, rng)
            if np.any(fallback):
                self._ssa_burst(network, counts, times, active[fallback],
                                min(t1, np.inf), result, rng)

            # Record rows that reached their next grid point.
            self._record_reached(result, counts, times, save_index, status,
                                 active)
            del hits_grid

        return result

    # ------------------------------------------------------------------

    @staticmethod
    def _second_order_consumers(network: StochasticNetwork) -> np.ndarray:
        """Highest reactant order per species (the g_j of the rule)."""
        g = np.ones(network.n_species)
        for i in range(network.n_reactions):
            slots = network.slot_species[i]
            filled = slots[slots >= 0]
            order = float(filled.size)
            for j in filled:
                g[j] = max(g[j], order)
        return g

    def _select_tau(self, counts, propensities, stoichiometry,
                    g) -> np.ndarray:
        """Cao's bounded-relative-change tau, per simulation."""
        mu = propensities @ stoichiometry            # (b, N)
        sigma2 = propensities @ stoichiometry ** 2   # (b, N)
        bound = np.maximum(self.epsilon * counts / g[None, :], 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            by_mean = np.where(np.abs(mu) > 0, bound / np.abs(mu), np.inf)
            by_var = np.where(sigma2 > 0, bound ** 2 / sigma2, np.inf)
        tau = np.minimum(by_mean, by_var).min(axis=1)
        return np.where(np.isfinite(tau), tau, np.inf)

    @staticmethod
    def _leap(network, counts, times, rows, propensities, tau,
              stoichiometry, result, rng) -> None:
        """Fire Poisson counts; halve tau on would-be-negative leaps."""
        pending = np.arange(rows.size)
        local_tau = tau.copy()
        for _ in range(30):
            if pending.size == 0:
                return
            firings = rng.poisson(
                propensities[pending] * local_tau[pending, None])
            delta = firings @ stoichiometry
            proposed = counts[rows[pending]] + delta
            ok = np.all(proposed >= 0.0, axis=1)
            accepted = pending[ok]
            if accepted.size:
                counts[rows[accepted]] = proposed[ok]
                times[rows[accepted]] += local_tau[accepted]
                result.n_leaps[rows[accepted]] += 1
            pending = pending[~ok]
            local_tau[pending] *= 0.5
        # Rows still pending after 30 halvings advance by zero this
        # iteration; the fallback branch will pick them up next loop.

    @staticmethod
    def _ssa_burst(network, counts, times, rows, t_end, result,
                   rng) -> None:
        """A few exact SSA events for rows in the stiff-leap regime."""
        stoichiometry = network.stoichiometry.astype(np.float64)
        active = rows.copy()
        for _ in range(SSA_BURST):
            if active.size == 0:
                return
            propensities = network.propensities(counts[active])
            totals = propensities.sum(axis=1)
            alive = totals > 0.0
            active = active[alive]
            if active.size == 0:
                return
            propensities = propensities[alive]
            totals = totals[alive]
            waits = rng.exponential(1.0, size=active.size) / totals
            thresholds = rng.random(active.size) * totals
            cumulative = np.cumsum(propensities, axis=1)
            reactions = (cumulative < thresholds[:, None]).sum(axis=1)
            reactions = np.minimum(reactions, network.n_reactions - 1)
            counts[active] += stoichiometry[reactions]
            np.maximum(counts[active], 0.0, out=counts[active])
            times[active] += waits
            result.n_events[active] += 1

    @staticmethod
    def _record_reached(result, counts, times, save_index, status,
                        rows) -> None:
        t_eval = result.t
        while rows.size:
            in_range = save_index[rows] < t_eval.size
            safe_index = np.minimum(save_index[rows], t_eval.size - 1)
            targets = np.where(in_range, t_eval[safe_index], np.inf)
            reached = times[rows] >= targets - 1e-12
            hit = rows[reached]
            if hit.size == 0:
                return
            result.counts[hit, save_index[hit], :] = counts[hit]
            save_index[hit] += 1
            finished = hit[save_index[hit] >= t_eval.size]
            status[finished] = OK
            rows = hit
