"""Batched Gillespie Stochastic Simulation Algorithm (direct method).

The coarse-grained stochastic analog of the batched deterministic
engine: every simulation in the batch advances through exact reaction
events with its own clock, but propensity evaluation, waiting-time
sampling, reaction selection and state updates all execute as batched
array kernels over the active subset — one CUDA-thread-per-simulation
in NumPy clothing, matching the SSA implementations of the GPU
simulator family.

Between events the state is piecewise constant, so save times falling
inside a waiting interval record the pre-event state exactly (no
interpolation error).
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from .propensities import StochasticNetwork
from .results import EXHAUSTED, OK, RUNNING, StochasticBatchResult, allocate


class BatchSSA:
    """Exact direct-method SSA over a batch of independent replicas."""

    name = "ssa"

    def __init__(self, max_events: int = 1_000_000) -> None:
        if max_events < 1:
            raise SolverError("max_events must be >= 1")
        self.max_events = max_events

    def solve(self, network: StochasticNetwork,
              initial_counts: np.ndarray, t_span: tuple[float, float],
              t_eval: np.ndarray,
              rng: np.random.Generator) -> StochasticBatchResult:
        t0, t1 = float(t_span[0]), float(t_span[1])
        t_eval = np.asarray(t_eval, dtype=np.float64)
        counts = np.array(np.atleast_2d(initial_counts), dtype=np.float64)
        batch, n = counts.shape
        result = allocate(t_eval, batch, n, network.volume, self.name)
        times = np.full(batch, t0)
        save_index = np.zeros(batch, dtype=np.int64)
        status = result.status_codes
        stoichiometry = network.stoichiometry.astype(np.float64)

        all_rows = np.arange(batch)
        self._record_crossings(result, counts, times[all_rows], save_index,
                               status, all_rows)

        while True:
            active = np.flatnonzero(status == RUNNING)
            if active.size == 0:
                break
            exhausted = active[result.n_events[active] >= self.max_events]
            if exhausted.size:
                status[exhausted] = EXHAUSTED
                active = np.flatnonzero(status == RUNNING)
                if active.size == 0:
                    break

            propensities = network.propensities(counts[active])
            totals = propensities.sum(axis=1)

            # Dead simulations (no reaction can fire): state is frozen,
            # so every remaining save point records the current counts.
            dead = totals <= 0.0
            if np.any(dead):
                dead_rows = active[dead]
                self._flush_remaining(result, counts, save_index, dead_rows)
                status[dead_rows] = OK
                keep = ~dead
                active = active[keep]
                propensities = propensities[keep]
                totals = totals[keep]
                if active.size == 0:
                    continue

            waits = rng.exponential(1.0, size=active.size) / totals
            new_times = times[active] + waits

            # Record every grid point the waiting interval jumps over
            # (pre-event state).
            finished = new_times > t1
            self._record_crossings(result, counts, new_times, save_index,
                                   status, active)

            done_rows = active[finished]
            if done_rows.size:
                self._flush_remaining(result, counts, save_index, done_rows)
                status[done_rows] = OK
            firing = ~finished
            fire_rows = active[firing]
            if fire_rows.size == 0:
                continue

            thresholds = rng.random(fire_rows.size) * totals[firing]
            cumulative = np.cumsum(propensities[firing], axis=1)
            reactions = (cumulative < thresholds[:, None]).sum(axis=1)
            reactions = np.minimum(reactions, network.n_reactions - 1)
            counts[fire_rows] += stoichiometry[reactions]
            np.maximum(counts[fire_rows], 0.0, out=counts[fire_rows])
            times[fire_rows] = new_times[firing]
            result.n_events[fire_rows] += 1

        return result

    @staticmethod
    def _record_crossings(result, counts, limits, save_index, status,
                          rows) -> None:
        """Record the current state at every grid point each row's clock
        jumps over.

        ``limits`` is aligned with ``rows`` and holds each row's new
        time; the pre-event state applies to every grid point at or
        before it. Vectorized; the loop only repeats while some row
        still has another grid point to record.
        """
        t_eval = result.t
        while rows.size:
            in_range = save_index[rows] < t_eval.size
            safe_index = np.minimum(save_index[rows], t_eval.size - 1)
            targets = np.where(in_range, t_eval[safe_index], np.inf)
            reached = targets <= limits
            hit = rows[reached]
            if hit.size == 0:
                return
            result.counts[hit, save_index[hit], :] = counts[hit]
            save_index[hit] += 1
            finished = hit[save_index[hit] >= t_eval.size]
            status[finished] = OK
            rows = rows[reached]
            limits = limits[reached]

    @staticmethod
    def _flush_remaining(result, counts, save_index, rows) -> None:
        """Fill all remaining grid points of finished rows."""
        t_eval = result.t
        for row in rows:
            remaining = save_index[row]
            if remaining < t_eval.size:
                result.counts[row, remaining:, :] = counts[row]
                save_index[row] = t_eval.size
