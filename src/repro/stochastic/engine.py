"""High-level stochastic simulation engine.

:class:`StochasticSimulator` mirrors the deterministic
:class:`~repro.gpu.engine.BatchSimulator`: it converts a mass-action RBM
into count space at a chosen volume, runs a batch of replicas (or of
distinct parameterizations) on the batched SSA or tau-leaping kernel,
and returns count trajectories with concentration accessors — the
engine the stochastic parameter-space analyses run on.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from ..model import (Parameterization, ParameterizationBatch,
                     ReactionBasedModel)
from ..telemetry import clock
from .propensities import build_network, concentrations_to_counts
from .results import StochasticBatchResult
from .ssa import BatchSSA
from .tau_leaping import BatchTauLeaping

METHODS = ("ssa", "tau-leaping")


class StochasticSimulator:
    """Batched stochastic simulator for mass-action RBMs.

    Parameters
    ----------
    model:
        The (mass-action, order <= 2) model to simulate.
    volume:
        System volume Omega linking concentrations and counts; larger
        volumes mean more molecules and dynamics closer to the ODE
        limit.
    method:
        ``"ssa"`` (exact) or ``"tau-leaping"`` (accelerated,
        approximate).
    seed:
        Seed of the simulation's random stream.
    max_events:
        Per-simulation cap on events (SSA) / steps (tau-leaping).
    """

    def __init__(self, model: ReactionBasedModel, volume: float = 1000.0,
                 method: str = "ssa", seed: int = 0,
                 max_events: int = 1_000_000) -> None:
        if method not in METHODS:
            raise SolverError(f"unknown stochastic method {method!r}; "
                              f"expected one of {METHODS}")
        self.model = model
        self.volume = volume
        self.method = method
        self.seed = seed
        self.max_events = max_events

    def simulate(self, t_span: tuple[float, float],
                 t_eval: np.ndarray | None = None,
                 parameters: ParameterizationBatch | Parameterization |
                 None = None,
                 n_replicates: int = 1) -> StochasticBatchResult:
        """Simulate the batch.

        With no explicit ``parameters``, ``n_replicates`` independent
        replicas of the nominal parameterization are run (the usual way
        to estimate intrinsic-noise statistics). With a
        :class:`ParameterizationBatch`, one replica per row is run and
        ``n_replicates`` must be 1.
        """
        if t_eval is None:
            t_eval = np.array([float(t_span[0]), float(t_span[1])])
        t_eval = np.asarray(t_eval, dtype=np.float64)
        batch = self._normalize(parameters, n_replicates)

        shared_constants = np.allclose(batch.rate_constants,
                                       batch.rate_constants[0])
        rng = np.random.default_rng(self.seed)
        started = clock.monotonic()
        if shared_constants:
            network = build_network(self.model, self.volume,
                                    batch.rate_constants[0])
            counts = concentrations_to_counts(batch.initial_states,
                                              self.volume)
            result = self._kernel().solve(network, counts, t_span, t_eval,
                                          rng)
        else:
            # Distinct constants per row: the count-space constants
            # differ, so each row gets its own (single-row) network but
            # shares the kernel and random stream.
            partials: list[StochasticBatchResult] = []
            for index in range(batch.size):
                network = build_network(self.model, self.volume,
                                        batch.rate_constants[index])
                counts = concentrations_to_counts(
                    batch.initial_states[index:index + 1], self.volume)
                partials.append(self._kernel().solve(
                    network, counts, t_span, t_eval, rng))
            result = _concatenate(partials)
        result.elapsed_seconds = clock.monotonic() - started
        return result

    def _kernel(self):
        if self.method == "ssa":
            return BatchSSA(self.max_events)
        return BatchTauLeaping(self.max_events)

    def _normalize(self, parameters, n_replicates) -> ParameterizationBatch:
        if parameters is None:
            parameters = self.model.nominal_parameterization()
        if isinstance(parameters, Parameterization):
            self.model.check_parameterization(parameters)
            return ParameterizationBatch.replicate(parameters,
                                                   max(n_replicates, 1))
        if not isinstance(parameters, ParameterizationBatch):
            raise SolverError(
                "parameters must be a Parameterization, "
                f"ParameterizationBatch or None, got {type(parameters)!r}")
        if n_replicates != 1:
            raise SolverError(
                "n_replicates > 1 requires a single Parameterization")
        return parameters


def _concatenate(partials: list[StochasticBatchResult]
                 ) -> StochasticBatchResult:
    first = partials[0]
    return StochasticBatchResult(
        t=first.t,
        counts=np.concatenate([p.counts for p in partials]),
        status_codes=np.concatenate([p.status_codes for p in partials]),
        n_events=np.concatenate([p.n_events for p in partials]),
        n_leaps=np.concatenate([p.n_leaps for p in partials]),
        volume=first.volume,
        method=first.method,
    )
