"""Stochastic reaction propensities and constant conversion.

The stochastic half of the simulator family (SSA / tau-leaping) works
on molecule *counts* n and propensity functions a_i(n); the
deterministic half works on concentrations X and mass-action rates.
With X = n / Omega the two are linked by

    a_i(n) = c_i * h_i(n),   c_i = k_i * Omega^(1 - order_i),

where h_i is the falling-factorial combinatorial count written as a
*slot product*: a reaction consuming species j with multiplicity m
contributes n_j (n_j - 1) ... (n_j - m + 1). (The usual 1/m!
normalization of h and the m! of the rate conversion cancel exactly,
which is why the slot-product form needs no special cases.) In the
large-Omega limit the mean of the stochastic process matches the ODE
dynamics — the property the test suite checks.

Reactions up to order 3 are supported (three reactant slots).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GuardError, ModelError
from ..model import ReactionBasedModel

#: Maximum supported reaction order (number of reactant slots).
MAX_ORDER = 3

#: Relative width of the negative-propensity noise band: a propensity
#: above ``-band * (1 + max a)`` is rounding noise and is clamped to
#: zero; anything below it indicates corrupted counts or constants and
#: raises :class:`~repro.errors.GuardError`.
PROPENSITY_CLAMP_BAND = 1e-12


@dataclass(frozen=True)
class StochasticNetwork:
    """Count-space encoding of a mass-action RBM.

    Attributes
    ----------
    stoichiometry:
        Net state-change matrix S = B - A, shape (M, N), int64.
    slot_species:
        Per-reaction reactant slots, shape (M, MAX_ORDER); -1 marks an
        empty slot. A species consumed with multiplicity m occupies m
        slots.
    slot_offsets:
        Falling-factorial offsets per slot, shape (M, MAX_ORDER): the
        p-th occurrence of the same species carries offset p, so the
        slot contributes (n - offset).
    rate_constants_counts:
        Converted constants c_i = k_i * Omega^(1 - order_i).
    volume:
        The Omega used for the conversion.
    species_names:
        Species labels in state order.
    """

    stoichiometry: np.ndarray
    slot_species: np.ndarray
    slot_offsets: np.ndarray
    rate_constants_counts: np.ndarray
    volume: float
    species_names: list[str]

    @property
    def n_reactions(self) -> int:
        return self.stoichiometry.shape[0]

    @property
    def n_species(self) -> int:
        return self.stoichiometry.shape[1]

    def propensities(self, counts: np.ndarray) -> np.ndarray:
        """Batched propensity matrix a(n), shape (B, M).

        ``counts`` has shape (B, N) (non-negative integers as floats).
        """
        counts = np.atleast_2d(counts)
        batch = counts.shape[0]
        extended = np.empty((batch, self.n_species + 1))
        extended[:, :self.n_species] = counts
        extended[:, self.n_species] = 1.0
        result = np.broadcast_to(self.rate_constants_counts,
                                 (batch, self.n_reactions)).copy()
        for slot in range(MAX_ORDER):
            species = self.slot_species[:, slot]
            offsets = self.slot_offsets[:, slot]
            filled = species >= 0
            if not np.any(filled):
                break
            index = np.where(filled, species, self.n_species)
            factor = extended[:, index] - offsets[None, :]
            factor = np.where(filled[None, :],
                              np.maximum(factor, 0.0), 1.0)
            result *= factor
        if np.any(result < 0.0):
            worst = float(result.min())
            band = PROPENSITY_CLAMP_BAND * \
                (1.0 + float(np.nanmax(np.abs(result), initial=0.0)))
            if worst < -band:
                sim, reaction = np.unravel_index(np.argmin(result),
                                                 result.shape)
                raise GuardError(
                    f"materially negative propensity {worst:.3e} for "
                    f"reaction {int(reaction)} (simulation {int(sim)}); "
                    f"counts or converted rate constants are corrupted "
                    f"(clampable band is -{band:.3e})")
            np.maximum(result, 0.0, out=result)
        return result


def build_network(model: ReactionBasedModel, volume: float,
                  rate_constants: np.ndarray | None = None
                  ) -> StochasticNetwork:
    """Convert a mass-action RBM into count space at volume Omega."""
    if volume <= 0.0:
        raise ModelError(f"volume must be > 0, got {volume}")
    if not model.is_mass_action():
        raise ModelError(
            "stochastic simulation requires mass-action kinetics; "
            f"{model.name!r} uses other laws")
    if model.max_order() > MAX_ORDER:
        raise ModelError(
            f"stochastic simulation supports reactions of order <= "
            f"{MAX_ORDER}, {model.name!r} has order {model.max_order()}")
    constants = (model.rate_constants() if rate_constants is None
                 else np.asarray(rate_constants, dtype=np.float64))

    m = model.n_reactions
    slot_species = np.full((m, MAX_ORDER), -1, dtype=np.intp)
    slot_offsets = np.zeros((m, MAX_ORDER), dtype=np.float64)
    counts_constants = np.empty(m)
    species_index = model.species.index_of
    for i, reaction in enumerate(model.reactions):
        slot = 0
        for name, multiplicity in sorted(reaction.reactants.items()):
            index = species_index(name)
            for occurrence in range(multiplicity):
                slot_species[i, slot] = index
                slot_offsets[i, slot] = float(occurrence)
                slot += 1
        order = slot
        counts_constants[i] = constants[i] * volume ** (1 - order)
    return StochasticNetwork(
        model.matrices.net.astype(np.int64), slot_species, slot_offsets,
        counts_constants, volume, model.species.names)


def concentrations_to_counts(concentrations: np.ndarray,
                             volume: float) -> np.ndarray:
    """Round concentrations * Omega to integer molecule counts."""
    return np.rint(np.asarray(concentrations, dtype=np.float64)
                   * volume)


def counts_to_concentrations(counts: np.ndarray,
                             volume: float) -> np.ndarray:
    """Convert counts back to concentration units."""
    return np.asarray(counts, dtype=np.float64) / volume
