"""Stochastic simulation substrate: batched SSA and tau-leaping."""

from .engine import METHODS, StochasticSimulator
from .propensities import (StochasticNetwork, build_network,
                           concentrations_to_counts,
                           counts_to_concentrations)
from .results import StochasticBatchResult
from .ssa import BatchSSA
from .tau_leaping import BatchTauLeaping

__all__ = [
    "METHODS", "StochasticSimulator",
    "StochasticNetwork", "build_network", "concentrations_to_counts",
    "counts_to_concentrations",
    "StochasticBatchResult",
    "BatchSSA", "BatchTauLeaping",
]
