"""Quota and scheduler configuration of the campaign service."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ServiceError
from ..telemetry.slo import TenantSLO


@dataclass(frozen=True)
class TenantQuota:
    """Admission and fair-share limits of one tenant.

    Attributes
    ----------
    max_queued:
        Jobs the tenant may hold in the queue at once; a submission
        beyond it is rejected with
        :class:`~repro.errors.QuotaExceeded`.
    max_inflight_chunks:
        Chunk grants the tenant's running campaigns may hold
        concurrently — the tenant's slice of the service-wide
        ``max_inflight_chunks`` pool.
    working_set_doubles:
        Device working-set budget (float64 count) per job, compared
        against :func:`repro.gpu.perfmodel.memory_footprint_doubles`
        of the job's concurrent chunk window at admission; ``None``
        disables the check. Over-budget submissions are rejected with
        :class:`~repro.errors.WorkingSetExceeded`.
    weight:
        Fair-share weight: the deficit scheduler grants chunks so that
        per-tenant *row throughput divided by weight* equalizes.
    """

    max_queued: int = 16
    max_inflight_chunks: int = 4
    working_set_doubles: int | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queued < 1:
            raise ServiceError(
                f"max_queued must be >= 1, got {self.max_queued}")
        if self.max_inflight_chunks < 1:
            raise ServiceError(
                f"max_inflight_chunks must be >= 1, got "
                f"{self.max_inflight_chunks}")
        if self.working_set_doubles is not None \
                and self.working_set_doubles < 1:
            raise ServiceError(
                f"working_set_doubles must be >= 1, got "
                f"{self.working_set_doubles}")
        if not (self.weight > 0.0):
            raise ServiceError(f"weight must be > 0, got {self.weight}")


@dataclass(frozen=True)
class ServiceConfig:
    """Behavior of one :class:`~repro.service.CampaignService`.

    Attributes
    ----------
    max_running_jobs:
        Campaigns executing concurrently; queued jobs beyond it wait.
    max_inflight_chunks:
        Service-wide chunk-grant pool all running campaigns share
        (each tenant further capped by its quota).
    queue_capacity:
        Bounded queue size. A submission against a full queue sheds
        the lowest-priority queued job if the newcomer outranks it,
        and is rejected with :class:`~repro.errors.QueueFull`
        otherwise.
    default_quota / quotas:
        Per-tenant quotas; tenants absent from ``quotas`` fall back to
        ``default_quota``.
    max_job_attempts:
        Supervision retries per job (scheduler-level faults, attempt
        timeouts) before it is quarantined.
    attempt_timeout:
        Wall-clock bound per job attempt; past it the attempt is
        cancelled cooperatively and retried. ``None`` leaves attempts
        bounded only by the per-job deadline.
    poll_interval:
        Dispatcher tick (seconds) of the asyncio scheduling loop.
    overload_pressure / serial_pressure:
        Degradation-ladder thresholds: sustained shedding, job faults
        and pool collapses accumulate pressure; at
        ``overload_pressure`` the service halves the chunk pool
        (``OVERLOADED``), at ``serial_pressure`` it drains to one
        serial job at a time (``SERIAL``). Recovering jobs bleed
        pressure back off.
    default_slo / slos:
        Per-tenant :class:`~repro.telemetry.slo.TenantSLO` objectives;
        tenants absent from ``slos`` fall back to ``default_slo``.
        Both ``None`` (the default) disables SLO tracking entirely.
    calibration_path:
        Optional path of a fitted
        :class:`~repro.telemetry.calibration.CalibrationReport` JSON
        (as written by ``repro calibrate``). When set, admission's
        working-set predictions are corrected by the calibrated
        factors before quota comparison.
    """

    max_running_jobs: int = 4
    max_inflight_chunks: int = 8
    queue_capacity: int = 64
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: dict = field(default_factory=dict)
    max_job_attempts: int = 2
    attempt_timeout: float | None = None
    poll_interval: float = 0.01
    overload_pressure: int = 3
    serial_pressure: int = 6
    default_slo: TenantSLO | None = None
    slos: dict = field(default_factory=dict)
    calibration_path: str | None = None

    def __post_init__(self) -> None:
        if self.max_running_jobs < 1:
            raise ServiceError(
                f"max_running_jobs must be >= 1, got "
                f"{self.max_running_jobs}")
        if self.max_inflight_chunks < 1:
            raise ServiceError(
                f"max_inflight_chunks must be >= 1, got "
                f"{self.max_inflight_chunks}")
        if self.queue_capacity < 1:
            raise ServiceError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.max_job_attempts < 1:
            raise ServiceError(
                f"max_job_attempts must be >= 1, got "
                f"{self.max_job_attempts}")
        if self.attempt_timeout is not None \
                and not (self.attempt_timeout > 0.0):
            raise ServiceError(
                f"attempt_timeout must be > 0, got {self.attempt_timeout}")
        if not (self.poll_interval > 0.0):
            raise ServiceError(
                f"poll_interval must be > 0, got {self.poll_interval}")
        if self.overload_pressure < 1 \
                or self.serial_pressure <= self.overload_pressure:
            raise ServiceError(
                "pressure thresholds must satisfy 1 <= overload_pressure "
                f"< serial_pressure, got {self.overload_pressure} / "
                f"{self.serial_pressure}")
        for tenant, quota in self.quotas.items():
            if not isinstance(quota, TenantQuota):
                raise ServiceError(
                    f"quota for tenant {tenant!r} must be a TenantQuota, "
                    f"got {type(quota)!r}")
        if self.default_slo is not None \
                and not isinstance(self.default_slo, TenantSLO):
            raise ServiceError(
                f"default_slo must be a TenantSLO or None, got "
                f"{type(self.default_slo)!r}")
        for tenant, slo in self.slos.items():
            if not isinstance(slo, TenantSLO):
                raise ServiceError(
                    f"slo for tenant {tenant!r} must be a TenantSLO, "
                    f"got {type(slo)!r}")

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def slo_for(self, tenant: str) -> TenantSLO | None:
        return self.slos.get(tenant, self.default_slo)

    @property
    def tracks_slos(self) -> bool:
        return self.default_slo is not None or bool(self.slos)
