"""The campaign service: admission, dispatch, and job supervision.

:class:`CampaignService` owns four cooperating pieces:

* an **admission** gate (:meth:`CampaignService.submit`) enforcing
  per-tenant quotas and the bounded queue, with typed rejections
  (:class:`~repro.errors.QuotaExceeded`,
  :class:`~repro.errors.WorkingSetExceeded`,
  :class:`~repro.errors.QueueFull`) and priority-ordered shedding;
* an asyncio **dispatcher** loop that starts queued jobs into the
  running set (deficit-fair across tenants, priority-ordered within
  one), sheds deadline-expired queued work, and preempts running jobs
  back to the queue when the degradation ladder shrinks the slots;
* a per-job **supervisor** (:meth:`_run_job`) driving attempts,
  scheduler-level fault injection, the attempt-timeout backstop,
  cooperative cancellation and the terminal-state bookkeeping;
* the shared :class:`~repro.service.scheduler.ChunkScheduler`, whose
  per-tenant gates every campaign thread acquires chunk grants
  through.

Campaign execution is delegated unchanged to
:func:`repro.resilience.run_campaign` on a worker thread
(``asyncio.to_thread``), so journaling, resume, quarantine, sharding
and telemetry behave exactly as they do standalone — the job's spans
simply nest under ``service/job-<id>/``.
"""

from __future__ import annotations

import asyncio

from ..errors import (QueueFull, QuotaExceeded, ReproError, ServiceError,
                      WorkingSetExceeded)
from ..gpu.perfmodel import memory_footprint_doubles
from ..resilience.campaign import CampaignConfig, run_campaign
from ..telemetry import clock
from ..telemetry.calibration import CalibrationReport
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.prometheus import labeled
from ..telemetry.slo import SLOTracker
from ..telemetry.tracer import as_tracer
from .config import ServiceConfig
from .jobs import JobRecord, JobRequest, JobState
from .scheduler import ChunkScheduler, DegradationLadder


class CampaignService:
    """Multi-tenant front-end over the campaign/executor stack.

    Parameters
    ----------
    config:
        Service limits and quotas; defaults to :class:`ServiceConfig`.
    telemetry:
        Trace destination (path, tracer, or ``None``): the service
        opens one ``service`` root span, with a ``job-<id>`` child per
        started job and each job's full campaign tree below that.
    fault_plan:
        Scheduler-level fault injection
        (:class:`~repro.resilience.FaultPlan` ``sched_*`` fields),
        addressed by admission index. Per-job engine/worker faults
        travel on :attr:`JobRequest.fault_plan` instead.
    hub:
        Optional :class:`~repro.telemetry.live.MetricsHub`: attached
        to the service tracer on ``start()`` (so it sees every span
        close live) and fed a registry snapshot each dispatcher tick;
        the ``/metrics`` endpoint and ``repro top`` read from it.
    calibration:
        Optional fitted :class:`~repro.telemetry.calibration.
        CalibrationReport` correcting admission's working-set
        predictions; defaults to loading
        ``config.calibration_path`` when that is set.
    """

    def __init__(self, config: ServiceConfig | None = None,
                 telemetry=None, fault_plan=None, hub=None,
                 calibration=None) -> None:
        self.config = ServiceConfig() if config is None else config
        self.tracer = as_tracer(telemetry)
        self.fault_plan = fault_plan
        self.hub = hub
        if calibration is None and self.config.calibration_path:
            calibration = CalibrationReport.load(
                self.config.calibration_path)
        self.calibration = calibration
        self.metrics = MetricsRegistry()
        # Engine-side counters merged from every finished job's
        # campaign result: kernel launches, Newton iterations, guard
        # and retry accounting, service-wide.
        self.engine_metrics = MetricsRegistry()
        self.slo = SLOTracker(self.config.slos, self.config.default_slo,
                              metrics=self.metrics,
                              tracer=self.tracer) \
            if self.config.tracks_slos else None
        self.scheduler = ChunkScheduler(self.config.max_inflight_chunks)
        self.ladder = DegradationLadder(self.config)
        self._jobs: dict[int, JobRecord] = {}
        self._queue: list[JobRecord] = []
        self._running: dict[int, asyncio.Task] = {}
        self._next_id = 0
        self._admitted = 0
        self._stopping = False
        self._started = False
        self._service_span = None
        self._dispatcher: asyncio.Task | None = None
        self._dispatcher_error: BaseException | None = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            raise ServiceError("service already started")
        self._started = True
        if self.hub is not None:
            self.hub.attach(self.tracer)
        self._service_span = self.tracer.start("service", "service")
        self._dispatcher = asyncio.create_task(self._dispatch())
        self._dispatcher.add_done_callback(self._dispatcher_done)

    async def stop(self, drain: bool = True) -> None:
        """Stop the service; with ``drain`` (default) every queued and
        running job reaches its terminal state first, without it the
        queue is shed and running jobs are cancelled cooperatively."""
        if not self._started:
            raise ServiceError("service was never started")
        if not drain:
            for job in list(self._queue):
                self._finish_queued(job, JobState.SHED, "shutdown")
                self.ladder.note_shed()
            self._queue.clear()
            for task_id in list(self._running):
                record = self._jobs[task_id]
                record.cancel.set()
        self._stopping = True
        if self._dispatcher is not None:
            await self._dispatcher
        self.scheduler.stop()
        self.tracer.end(self._service_span,
                        jobs=int(self._admitted),
                        ladder=self.ladder.state)
        if self.hub is not None:
            self.hub.ingest_registry(self.metrics)
            self.hub.detach()
        # The sink flush opens and writes the trace file: off the loop.
        await asyncio.to_thread(self.tracer.flush)

    async def drain(self) -> None:
        """Wait until no job is queued or running."""
        while self._queue or self._running:
            await asyncio.sleep(self.config.poll_interval)

    # -- admission -------------------------------------------------------

    def submit(self, request: JobRequest) -> JobRecord:
        """Admit a job, or raise a typed
        :class:`~repro.errors.AdmissionError` subclass.

        Rejected submissions are still recorded (state ``rejected``)
        so service accounting closes, but never enter the queue.
        """
        if self._stopping or not self._started:
            raise ServiceError(
                "service is not accepting submissions (not started, or "
                "stopping)")
        self.metrics.count("service.jobs.submitted")
        self.metrics.count(labeled("service.tenant.submitted",
                                   tenant=request.tenant))
        job = JobRecord(self._next_job_id(), request)
        self._jobs[job.job_id] = job
        job.submitted_at = clock.monotonic()
        quota = self.config.quota_for(request.tenant)
        try:
            self._check_working_set(request, quota)
            self._check_tenant_queue(request, quota)
            self._make_room(request)
        except (QuotaExceeded, WorkingSetExceeded, QueueFull) as error:
            job.state = JobState.REJECTED
            job.reason = type(error).__name__
            job.error = str(error)
            job.done.set()
            self.metrics.count("service.jobs.rejected")
            self.metrics.count(labeled("service.tenant.rejected",
                                       tenant=request.tenant))
            raise
        job.admission_index = self._admitted
        self._admitted += 1
        self.scheduler.register(request.tenant, quota.weight,
                                quota.max_inflight_chunks)
        self._queue.append(job)
        self.metrics.count("service.jobs.admitted")
        self.metrics.count(labeled("service.tenant.admitted",
                                   tenant=request.tenant))
        self.metrics.observe("service.queue.depth_samples",
                             len(self._queue))
        return job

    def _next_job_id(self) -> int:
        job_id = self._next_id
        self._next_id += 1
        return job_id

    def _check_working_set(self, request: JobRequest, quota) -> None:
        if quota.working_set_doubles is None:
            return
        model = request.model
        n_save = 2 if request.t_eval is None else len(request.t_eval)
        width = max(1, min(int(request.chunk_size), self._n_rows(request)))
        per_chunk = memory_footprint_doubles(width, model.n_species,
                                             model.n_reactions, n_save)
        if self.calibration is not None:
            per_chunk = self.calibration.calibrated_doubles(
                per_chunk, "auto", width, model.n_species)
        estimate = per_chunk * quota.max_inflight_chunks
        if estimate > quota.working_set_doubles:
            raise WorkingSetExceeded(
                f"job working set ~{estimate} doubles "
                f"({quota.max_inflight_chunks} chunk(s) of {width} rows) "
                f"exceeds the tenant budget {quota.working_set_doubles}",
                tenant=request.tenant)

    @staticmethod
    def _n_rows(request: JobRequest) -> int:
        from ..core.simulate import _normalize
        return _normalize(request.model, request.parameters).size

    def _check_tenant_queue(self, request: JobRequest, quota) -> None:
        queued = sum(1 for job in self._queue
                     if job.request.tenant == request.tenant)
        if queued >= quota.max_queued:
            raise QuotaExceeded(
                f"tenant {request.tenant!r} already has {queued} queued "
                f"job(s) (quota {quota.max_queued})",
                tenant=request.tenant)

    def _make_room(self, request: JobRequest) -> None:
        """Shed the weakest queued job for a stronger newcomer, or
        refuse the newcomer outright."""
        if len(self._queue) < self.config.queue_capacity:
            return
        victim = min(self._queue,
                     key=lambda job: (job.request.priority, -job.job_id))
        if victim.request.priority >= request.priority:
            raise QueueFull(
                f"queue is at capacity ({self.config.queue_capacity}) and "
                f"no queued job has lower priority than "
                f"{request.priority}",
                tenant=request.tenant)
        self._queue.remove(victim)
        self._finish_queued(victim, JobState.SHED, "displaced")
        self.ladder.note_shed()

    # -- client operations -----------------------------------------------

    def get(self, job_id: int) -> JobRecord:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id}")
        return job

    def cancel(self, job_id: int) -> JobRecord:
        """Request cooperative cancellation: a queued job terminates
        immediately, a running one stops at its next chunk boundary
        with its journal intact."""
        job = self.get(job_id)
        if job.terminal:
            return job
        if job in self._queue:
            self._queue.remove(job)
            self._finish_queued(job, JobState.CANCELLED, "client-cancel")
            return job
        job.cancel.set()
        return job

    async def wait(self, job_id: int,
                   timeout: float | None = None) -> JobRecord:
        job = self.get(job_id)
        deadline = None if timeout is None \
            else clock.monotonic() + timeout
        while not job.terminal:
            if deadline is not None and clock.monotonic() > deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"(state {job.state!r})")
            await asyncio.sleep(self.config.poll_interval)
        return job

    def snapshot(self) -> dict:
        """JSON-safe view of the whole service (CLI / wire protocol)."""
        states: dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        snapshot = {"ladder": self.ladder.state,
                    "pressure": int(self.ladder.pressure),
                    "queued": len(self._queue),
                    "running": len(self._running),
                    "states": dict(sorted(states.items())),
                    "tenants": self.scheduler.stats(),
                    "metrics": self.metrics.to_dict()}
        if self.slo is not None:
            snapshot["slo"] = self.slo.snapshot()
        return snapshot

    # -- dispatcher ------------------------------------------------------

    async def _dispatch(self) -> None:
        while True:
            if self._stopping and not self._queue and not self._running:
                return
            self.scheduler.set_capacity(
                self.ladder.effective_inflight_chunks())
            self._shed_expired()
            self._preempt_excess()
            limit = self.ladder.effective_max_running()
            while self._queue and len(self._running) < limit:
                job = self._pick_next()
                self._queue.remove(job)
                task = asyncio.create_task(self._run_job(job))
                task.add_done_callback(
                    lambda task, job=job: self._job_task_done(job, task))
                self._running[job.job_id] = task
            self.metrics.gauge("service.queue.depth", len(self._queue))
            self.metrics.gauge("service.jobs.running", len(self._running))
            if self.hub is not None:
                self.hub.ingest_registry(self.metrics)
            await asyncio.sleep(self.config.poll_interval)

    def _pick_next(self) -> JobRecord:
        """Deficit-fair job start: the queued tenant with the least
        weight-normalized chunk consumption goes first; within a
        tenant, higher priority then older job."""
        stats = self.scheduler.stats()
        def tenant_key(job: JobRecord):
            lane = stats.get(job.request.tenant)
            consumed = 0.0 if lane is None \
                else lane["granted_rows"] / lane["weight"]
            return (consumed, -job.request.priority, job.job_id)
        return min(self._queue, key=tenant_key)

    def _shed_expired(self) -> None:
        now = clock.monotonic()
        for job in list(self._queue):
            deadline = job.request.deadline_seconds
            if deadline is not None and now - job.submitted_at > deadline:
                self._queue.remove(job)
                self._finish_queued(job, JobState.SHED, "deadline")
                self.ladder.note_shed()

    def _preempt_excess(self) -> None:
        """The ladder shrank the running set: pull the weakest running
        jobs back to the queue (cooperatively — each stops at its next
        chunk boundary and requeues with its journal intact)."""
        limit = self.ladder.effective_max_running()
        excess = len(self._running) - limit
        if excess <= 0:
            return
        victims = sorted((self._jobs[job_id] for job_id in self._running),
                         key=lambda job: (job.request.priority,
                                          -job.job_id))[:excess]
        for job in victims:
            if not job.preempted and not job.cancel.is_set():
                job.preempted = True
                job.cancel.set()

    # -- job supervision -------------------------------------------------

    async def _run_job(self, job: JobRecord) -> None:
        job.state = JobState.RUNNING
        if job.started_at is None:
            job.started_at = clock.monotonic()
            self.metrics.observe("service.queue.wait_seconds",
                                 job.wait_seconds)
        span = self.tracer.start(f"job-{job.job_id}", "job",
                                 parent=self._service_span,
                                 tenant=job.request.tenant,
                                 priority=int(job.request.priority))
        try:
            await self._attempt_loop(job, span)
        finally:
            self._running.pop(job.job_id, None)
            requeued = job.state == JobState.QUEUED
            self.tracer.end(span, state=job.state, reason=job.reason,
                            attempts=int(job.attempts),
                            degraded=bool(job.degraded),
                            requeued=requeued,
                            wait_seconds=float(job.wait_seconds or 0.0))
            # Per-job trace flush does file IO: off the loop.
            await asyncio.to_thread(self.tracer.flush)
            if requeued:
                self._queue.append(job)

    async def _attempt_loop(self, job: JobRecord, span) -> None:
        while True:
            if job.cancel.is_set() and not job.preempted:
                self._finish(job, JobState.CANCELLED, "client-cancel")
                return
            job.attempts += 1
            if self._injected_fault(job):
                hang = self.fault_plan.hangs_job(job.admission_index,
                                                 job.attempts)
                if hang:
                    await self._hang(job)
                if job.cancel.is_set() and not job.preempted:
                    self._finish(job, JobState.CANCELLED, "client-cancel")
                    return
                if self._attempts_exhausted(job, "injected-hang" if hang
                                            else "injected-kill"):
                    return
                continue
            remaining = self._remaining_deadline(job)
            if remaining is not None and remaining <= 0.0:
                self._finish(job, JobState.SHED, "deadline")
                self.ladder.note_shed()
                return
            outcome = await self._run_attempt(job, remaining, span)
            if outcome is not None:
                return

    def _injected_fault(self, job: JobRecord) -> bool:
        plan = self.fault_plan
        if plan is None or job.admission_index < 0:
            return False
        fired = plan.kills_job(job.admission_index, job.attempts) \
            or plan.hangs_job(job.admission_index, job.attempts)
        if fired:
            self.metrics.count("service.jobs.faults")
            self.ladder.note_job_fault()
        return fired

    async def _hang(self, job: JobRecord) -> None:
        """Simulated hang: sit until the attempt-timeout backstop (or a
        cancel) would have fired."""
        bound = self.config.attempt_timeout
        bound = 0.05 if bound is None else bound
        waited = 0.0
        while waited < bound and not job.cancel.is_set():
            await asyncio.sleep(self.config.poll_interval)
            waited += self.config.poll_interval

    def _attempts_exhausted(self, job: JobRecord, reason: str) -> bool:
        if job.attempts >= self.config.max_job_attempts:
            self._finish(job, JobState.QUARANTINED, reason)
            return True
        return False

    def _remaining_deadline(self, job: JobRecord) -> float | None:
        if job.request.deadline_seconds is None:
            return None
        return job.request.deadline_seconds \
            - (clock.monotonic() - job.submitted_at)

    async def _run_attempt(self, job: JobRecord, remaining: float | None,
                           span) -> str | None:
        """One real campaign attempt; returns the terminal state it
        produced, or ``None`` to retry."""
        request = job.request
        ladder_degraded = self.ladder.degrades_results
        workers = self.ladder.effective_workers(int(request.workers))
        config = CampaignConfig(chunk_size=int(request.chunk_size),
                                checkpoint_path=request.checkpoint_path,
                                deadline_seconds=remaining,
                                workers=workers)
        gate = self.scheduler.gate(request.tenant)
        task = asyncio.ensure_future(asyncio.to_thread(
            run_campaign, request.model, request.t_span, request.t_eval,
            request.parameters, request.engine, request.options, config,
            request.retry_policy, request.fault_plan, self.tracer,
            chunk_gate=gate, cancel_event=job.cancel,
            trace_parent=span))
        timed_out = False
        if self.config.attempt_timeout is not None:
            done, _pending = await asyncio.wait(
                {task}, timeout=self.config.attempt_timeout)
            if not done:
                timed_out = True
                job.cancel.set()
        try:
            result = await task
        except ReproError as error:
            self.metrics.count("service.jobs.faults")
            self.ladder.note_job_fault()
            job.error = str(error)
            if self._attempts_exhausted(job, "campaign-error"):
                return job.state
            return None
        job.degraded = job.degraded or ladder_degraded or result.degraded
        if result.degraded:
            self.ladder.note_pool_collapse()
        if result.cancelled:
            if job.preempted:
                self._requeue(job)
                return JobState.QUEUED
            if timed_out:
                job.cancel.clear()
                if self._attempts_exhausted(job, "attempt-timeout"):
                    return job.state
                return None
            self._finish(job, JobState.CANCELLED, "client-cancel",
                         result=result)
            return job.state
        self._finish(job, JobState.COMPLETED,
                     "deadline-incomplete" if result.incomplete else "",
                     result=result)
        self.ladder.note_job_ok()
        return job.state

    def _requeue(self, job: JobRecord) -> None:
        """A preempted campaign stopped at a chunk boundary: back to
        the queue, journal intact, to resume under the next grant."""
        job.preempted = False
        job.cancel.clear()
        job.state = JobState.QUEUED
        self.metrics.count("service.jobs.preempted")

    # -- supervisor-crash surfacing --------------------------------------

    def _dispatcher_done(self, task: asyncio.Task) -> None:
        """A crashed dispatcher must not die silently: the failure is
        recorded and every job it was responsible for starting reaches
        a terminal state, so ``wait()`` callers wake instead of
        polling a queue nobody will ever drain again."""
        if task.cancelled() or task.exception() is None:
            return
        error = task.exception()
        self._dispatcher_error = error
        self.metrics.count("service.supervisor.crashes")
        for job in list(self._queue):
            job.error = f"dispatcher crashed: {error!r}"
            self._finish_queued(job, JobState.QUARANTINED,
                                "supervisor-crash")
        self._queue.clear()

    def _job_task_done(self, job: JobRecord, task: asyncio.Task) -> None:
        """Exception-surfacing backstop of one job-supervisor task: an
        unexpected error (anything the attempt loop's ``ReproError``
        handling did not absorb) quarantines the job instead of
        leaving it ``running`` forever with ``done`` never set."""
        if task.cancelled() or task.exception() is None:
            return
        error = task.exception()
        self.metrics.count("service.supervisor.crashes")
        if not job.terminal:
            job.error = f"job supervisor crashed: {error!r}"
            self._finish(job, JobState.QUARANTINED, "supervisor-crash")

    # -- terminal bookkeeping --------------------------------------------

    def _finish(self, job: JobRecord, state: str, reason: str,
                result=None) -> None:
        job.state = state
        job.reason = reason
        job.finished_at = clock.monotonic()
        if result is not None:
            job.result = result
        if self.ladder.degrades_results:
            job.degraded = True
        tenant = job.request.tenant
        self.metrics.count(f"service.jobs.{state}")
        self.metrics.count(labeled(f"service.tenant.{state}",
                                   tenant=tenant))
        result_metrics = getattr(job.result, "metrics", None)
        if result_metrics is not None:
            self.engine_metrics.merge(result_metrics)
        if self.slo is not None:
            latency = None
            if job.submitted_at is not None:
                latency = job.finished_at - job.submitted_at
            self.slo.observe(tenant, state, reason, latency)
        job.done.set()

    def _finish_queued(self, job: JobRecord, state: str,
                       reason: str) -> None:
        self._finish(job, state, reason)


def submit_campaign(model, t_span, t_eval=None, parameters=None,
                    config: ServiceConfig | None = None,
                    telemetry=None, **request_kwargs) -> JobRecord:
    """Run one campaign through a private, short-lived service.

    Convenience for scripts and the ``repro submit --local`` path: a
    service is started, the single job submitted, drained and stopped.
    The returned record holds the terminal state and the
    :class:`~repro.resilience.CampaignResult` (when one was produced).
    """

    async def _run() -> JobRecord:
        service = CampaignService(config=config, telemetry=telemetry)
        await service.start()
        try:
            job = service.submit(JobRequest(model=model, t_span=t_span,
                                            t_eval=t_eval,
                                            parameters=parameters,
                                            **request_kwargs))
            await service.wait(job.job_id)
        finally:
            await service.stop()
        return job

    return asyncio.run(_run())
