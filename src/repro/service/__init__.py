"""Multi-tenant campaign service: admission, scheduling, supervision.

The serving layer of the stack. A :class:`CampaignService` owns an
asyncio event loop's worth of concurrent campaigns: it **admits** jobs
against per-tenant quotas (queue depth, in-flight chunks, working-set
budget), **schedules** chunk grants across the running campaigns with
deficit-weighted round-robin fairness, **supervises** each job through
retries, per-job deadlines and cooperative cancellation, and
**degrades** — sheds queued work, shrinks the chunk pool, drains to
serial — instead of failing opaquely when overloaded.

Execution itself is unchanged: every job runs through
:func:`repro.resilience.run_campaign` (serial or sharded), so
journaling, bit-identical resume, quarantine and telemetry all carry
over; the service only adds the arbitration *between* campaigns that a
single campaign cannot express.

`repro serve` wraps the service in a JSON-line TCP server
(:func:`serve`) with a synchronous :class:`Client`;
:mod:`benchmarks.bench_service` is the load-generator harness.
"""

from ..telemetry.slo import TenantSLO
from .config import ServiceConfig, TenantQuota
from .core import CampaignService, submit_campaign
from .jobs import (JOB_STATES, TERMINAL_STATES, JobRecord, JobRequest,
                   JobState)
from .scheduler import ChunkScheduler, DegradationLadder
from .server import Client, scrape_metrics, serve

__all__ = [
    "CampaignService",
    "ChunkScheduler",
    "Client",
    "DegradationLadder",
    "JOB_STATES",
    "JobRecord",
    "JobRequest",
    "JobState",
    "ServiceConfig",
    "TERMINAL_STATES",
    "TenantQuota",
    "TenantSLO",
    "scrape_metrics",
    "serve",
    "submit_campaign",
]
