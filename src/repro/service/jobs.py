"""Job records of the campaign service: requests, states, lifecycle.

A *job* is one campaign under service management. Its state machine::

    queued ──> running ──> completed
      │           │  │
      │           │  └────> quarantined   (attempts exhausted)
      │           └───────> cancelled     (cooperative cancel)
      ├─────────> shed                    (displaced / deadline expired)
      └─────────> cancelled               (cancelled while queued)

    rejected                              (never admitted)

Every admitted job ends in exactly one terminal state — the
conservation law the load-generator benchmark asserts. ``rejected``
jobs are recorded too (so accounting closes) but never enter the
queue.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


class JobState:
    """Namespace of job lifecycle states."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    REJECTED = "rejected"
    SHED = "shed"
    CANCELLED = "cancelled"
    QUARANTINED = "quarantined"


#: Every state, in lifecycle order.
JOB_STATES = (JobState.QUEUED, JobState.RUNNING, JobState.COMPLETED,
              JobState.REJECTED, JobState.SHED, JobState.CANCELLED,
              JobState.QUARANTINED)

#: States a job never leaves.
TERMINAL_STATES = (JobState.COMPLETED, JobState.REJECTED, JobState.SHED,
                   JobState.CANCELLED, JobState.QUARANTINED)


@dataclass
class JobRequest:
    """What a client submits: one campaign plus scheduling intent.

    ``priority`` ranks within a tenant (higher runs first) and decides
    who is shed when the queue overflows. ``deadline_seconds`` is a
    wall-clock budget from *submission*: it propagates into
    :class:`~repro.resilience.CampaignConfig.deadline_seconds` (and so
    into the executor's per-chunk timeout bounds) with the queue wait
    already subtracted, and a job whose deadline expires while still
    queued is shed instead of started.
    """

    model: object
    t_span: tuple[float, float]
    t_eval: object = None
    parameters: object = None
    engine: str = "batched"
    options: object = None
    chunk_size: int = 64
    workers: int = 0
    priority: int = 0
    deadline_seconds: float | None = None
    tenant: str = "default"
    checkpoint_path: object = None
    retry_policy: object = None
    fault_plan: object = None


@dataclass
class JobRecord:
    """Service-side lifecycle record of one submitted job."""

    job_id: int
    request: JobRequest
    state: str = JobState.QUEUED
    #: Admission order among *admitted* jobs — the index scheduler
    #: faults (``FaultPlan.sched_kill_jobs``) address.
    admission_index: int = -1
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    #: Why the job reached a terminal state ("displaced", "deadline",
    #: "injected-kill", ...); empty for plain completion.
    reason: str = ""
    result: object = None
    error: str = ""
    #: True when the job ran (or finished) under a degraded ladder
    #: state or its campaign itself degraded to serial.
    degraded: bool = False
    #: Cooperative cancellation flag, checked by the campaign at every
    #: chunk boundary.
    cancel: threading.Event = field(default_factory=threading.Event)
    #: Set when the dispatcher pulls a running job back to the queue
    #: (ladder shrank the running set); distinguishes preemption from
    #: a client cancel when the campaign thread returns.
    preempted: bool = False
    #: Signalled exactly once, on entering a terminal state.
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def wait_seconds(self) -> float | None:
        """Queue wait (submission to first start); None while queued."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def to_dict(self) -> dict:
        """JSON-safe status snapshot (for the wire protocol / CLI)."""
        summary = None
        if self.result is not None:
            summary = self.result.summary()
        return {"job_id": self.job_id, "state": self.state,
                "tenant": self.request.tenant,
                "priority": int(self.request.priority),
                "attempts": int(self.attempts),
                "reason": self.reason, "error": self.error,
                "degraded": bool(self.degraded),
                "wait_seconds": self.wait_seconds,
                "result": summary}
