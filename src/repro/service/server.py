"""JSON-line TCP front-end for the campaign service, plus a client.

The wire protocol is one JSON object per line, request/response::

    -> {"op": "submit", "model": "models/lv", "t_span": [0, 10], ...}
    <- {"ok": true, "job_id": 0, "state": "queued"}

    -> {"op": "wait", "job_id": 0, "timeout": 30}
    <- {"ok": true, "job": {"job_id": 0, "state": "completed", ...}}

Operations: ``submit``, ``status``, ``wait``, ``cancel``, ``stats``,
``shutdown``. Admission rejections and service errors come back as
``{"ok": false, "error": "...", "kind": "QueueFull"}`` — the error
*type name* crosses the wire so clients can distinguish the typed
rejections without sharing exception classes.

The same port also answers plain HTTP ``GET /metrics`` with the
Prometheus text exposition (connections are sniffed on their first
line), so one listener serves both the job protocol and the scrape
endpoint — point a Prometheus scraper or ``repro top`` at the server
address and nothing else needs to be running.

Models are referenced **by path** and loaded (and cached) server-side:
result arrays never cross this protocol — clients get states and
summaries, results land in the job's checkpoint journal when one was
requested.

:func:`serve` is what ``repro serve`` runs; :class:`Client` is a small
blocking socket wrapper for scripts and ``repro submit``.
"""

from __future__ import annotations

import asyncio
import json
import socket
from pathlib import Path

from ..errors import ReproError, ServiceError
from ..telemetry.live import MetricsHub
from ..telemetry.prometheus import render_prometheus
from ..telemetry.tracer import Tracer
from .config import ServiceConfig
from .core import CampaignService
from .jobs import JobRequest


def _load_model(path: Path):
    from ..io import read_model, read_sbml
    if path.is_dir():
        return read_model(path)
    if path.suffix.lower() in (".xml", ".sbml"):
        return read_sbml(path)
    raise ServiceError(
        f"{path} is neither a model folder nor an SBML file")


class _ServerState:
    """One running server: the service plus the model cache."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service
        self.models: dict[str, object] = {}
        self.shutdown = asyncio.Event()

    def model(self, path_text: str):
        model = self.models.get(path_text)
        if model is None:
            model = self.models[path_text] = _load_model(Path(path_text))
        return model

    def render_metrics(self) -> str:
        """The full Prometheus exposition: service registry, merged
        engine registries, and the live hub's window aggregates."""
        service = self.service
        hub_snapshot = None
        if service.hub is not None:
            service.hub.ingest_registry(service.metrics)
            hub_snapshot = service.hub.snapshot()
        return render_prometheus(
            [service.metrics, service.engine_metrics], hub_snapshot)


def _request_from_payload(state: _ServerState, payload: dict) -> JobRequest:
    model = state.model(str(payload["model"]))
    t_span = payload.get("t_span", [0.0, 1.0])
    request = JobRequest(model=model,
                         t_span=(float(t_span[0]), float(t_span[1])))
    if payload.get("t_eval") is not None:
        request.t_eval = [float(t) for t in payload["t_eval"]]
    if payload.get("parameters") is not None:
        request.parameters = payload["parameters"]
    for key in ("engine", "tenant"):
        if payload.get(key) is not None:
            setattr(request, key, str(payload[key]))
    for key in ("chunk_size", "workers", "priority"):
        if payload.get(key) is not None:
            setattr(request, key, int(payload[key]))
    if payload.get("deadline_seconds") is not None:
        request.deadline_seconds = float(payload["deadline_seconds"])
    if payload.get("checkpoint_path") is not None:
        request.checkpoint_path = str(payload["checkpoint_path"])
    return request


async def _handle_request(state: _ServerState, payload: dict) -> dict:
    service = state.service
    op = payload.get("op")
    if op == "submit":
        # Building the request may load (and cache) a model from disk:
        # keep that IO off the event loop.
        request = await asyncio.to_thread(_request_from_payload,
                                          state, payload)
        job = service.submit(request)
        return {"ok": True, "job_id": job.job_id, "state": job.state}
    if op == "status":
        job = service.get(int(payload["job_id"]))
        return {"ok": True, "job": job.to_dict()}
    if op == "wait":
        job = await service.wait(int(payload["job_id"]),
                                 timeout=payload.get("timeout"))
        return {"ok": True, "job": job.to_dict()}
    if op == "cancel":
        job = service.cancel(int(payload["job_id"]))
        return {"ok": True, "job_id": job.job_id, "state": job.state}
    if op == "stats":
        return {"ok": True, "stats": service.snapshot()}
    if op == "shutdown":
        state.shutdown.set()
        return {"ok": True}
    raise ServiceError(f"unknown operation {op!r}")


async def _handle_http(state: _ServerState, first_line: bytes,
                       reader, writer) -> None:
    """Minimal HTTP/1.0 responder for the scrape endpoint.

    Only ``GET/HEAD /metrics`` exists; everything else is 404. The
    request headers are drained (to the blank line) and the response
    closes the connection — scrapers reconnect per scrape.
    """
    parts = first_line.decode("latin-1").split()
    path = parts[1].split("?", 1)[0] if len(parts) >= 2 else "/"
    while True:
        header = await reader.readline()
        if not header or header in (b"\r\n", b"\n"):
            break
    if path == "/metrics":
        # Rendering walks every histogram bucket: off the event loop.
        body = await asyncio.to_thread(state.render_metrics)
        status = "200 OK"
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = f"not found: {path}\n"
        status = "404 Not Found"
        content_type = "text/plain; charset=utf-8"
    payload = body.encode("utf-8")
    head = (f"HTTP/1.0 {status}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")
    writer.write(head if parts and parts[0] == "HEAD"
                 else head + payload)
    await writer.drain()


async def _handle_connection(state: _ServerState, reader, writer) -> None:
    try:
        first = True
        while True:
            line = await reader.readline()
            if not line:
                return
            if first and (line.startswith(b"GET ")
                          or line.startswith(b"HEAD ")):
                await _handle_http(state, line, reader, writer)
                return
            first = False
            try:
                payload = json.loads(line)
                response = await _handle_request(state, payload)
            except ReproError as error:
                # Typed rejections (QueueFull, QuotaExceeded, ...) and
                # service misuse travel back as data, not as a dropped
                # connection.
                response = {"ok": False, "error": str(error),
                            "kind": type(error).__name__}
            except (KeyError, TypeError, ValueError,
                    json.JSONDecodeError) as error:
                response = {"ok": False, "error": f"bad request: {error}",
                            "kind": "BadRequest"}
            writer.write(json.dumps(response, sort_keys=True).encode()
                         + b"\n")
            await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        return
    finally:
        writer.close()


async def serve_async(host: str = "127.0.0.1", port: int = 8753,
                      config: ServiceConfig | None = None,
                      telemetry=None, ready=None, hub=None,
                      calibration=None, fault_plan=None) -> None:
    """Run the service behind a TCP server until ``shutdown`` arrives.

    ``ready`` (optional callable) receives the bound ``(host, port)``
    once the socket is listening — tests use it to learn an ephemeral
    port. A :class:`~repro.telemetry.live.MetricsHub` always backs
    ``/metrics``; pass ``hub`` to share or configure it,
    ``calibration`` (a fitted
    :class:`~repro.telemetry.calibration.CalibrationReport`) to turn
    on calibrated admission, and ``fault_plan`` for scheduler-level
    fault injection (demos and chaos drills).
    """
    hub = MetricsHub() if hub is None else hub
    if telemetry is None:
        # The hub observes span closes, so the server always runs a
        # real tracer — sinkless and non-accumulating (keep_spans off)
        # when the operator asked for no trace file: live /metrics
        # works out of the box and memory stays bounded.
        telemetry = Tracer(sink=None, keep_spans=False)
    service = CampaignService(config=config, telemetry=telemetry,
                              hub=hub, calibration=calibration,
                              fault_plan=fault_plan)
    await service.start()
    state = _ServerState(service)
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(state, r, w), host, port)
    bound = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound)
    async with server:
        await state.shutdown.wait()
    await service.stop()


def serve(host: str = "127.0.0.1", port: int = 8753,
          config: ServiceConfig | None = None, telemetry=None,
          calibration=None, ready=None) -> None:
    """Blocking entry point of ``repro serve``."""
    asyncio.run(serve_async(host, port, config=config,
                            telemetry=telemetry,
                            calibration=calibration, ready=ready))


def scrape_metrics(host: str = "127.0.0.1", port: int = 8753,
                   timeout: float = 10.0) -> str:
    """Fetch the server's ``/metrics`` exposition over plain HTTP.

    One request per connection (the server closes after responding),
    stdlib sockets only — this is what ``repro top`` polls.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(b"GET /metrics HTTP/1.0\r\n"
                     b"Host: " + host.encode("latin-1") + b"\r\n\r\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    response = b"".join(chunks)
    head, separator, body = response.partition(b"\r\n\r\n")
    if not separator:
        raise ServiceError("malformed HTTP response from /metrics")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    if " 200 " not in f"{status_line} ":
        raise ServiceError(f"/metrics scrape failed: {status_line}")
    return body.decode("utf-8")


class Client:
    """Blocking JSON-line client for one server connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8753,
                 timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def call(self, payload: dict) -> dict:
        """One request/response round-trip; raises
        :class:`~repro.errors.ServiceError` on an error response."""
        self._file.write(json.dumps(payload, sort_keys=True).encode()
                         + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(
                f"{response.get('kind', 'ServiceError')}: "
                f"{response.get('error', 'unknown error')}")
        return response

    def submit(self, model_path: str, t_span=(0.0, 1.0),
               **options) -> int:
        payload = {"op": "submit", "model": str(model_path),
                   "t_span": list(t_span)}
        payload.update(options)
        return int(self.call(payload)["job_id"])

    def status(self, job_id: int) -> dict:
        return self.call({"op": "status", "job_id": job_id})["job"]

    def wait(self, job_id: int, timeout: float | None = None) -> dict:
        return self.call({"op": "wait", "job_id": job_id,
                          "timeout": timeout})["job"]

    def cancel(self, job_id: int) -> dict:
        return self.call({"op": "cancel", "job_id": job_id})

    def stats(self) -> dict:
        return self.call({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        self.call({"op": "shutdown"})
