"""Fair-share chunk scheduling and the overload degradation ladder.

:class:`ChunkScheduler` is the bridge between the asyncio service loop
and the blocking campaign threads: campaigns acquire a *grant* (sized
in batch rows) before every chunk and release it after, and the
scheduler arbitrates who gets the next free grant. The policy is
deficit-weighted round-robin: each tenant accumulates ``consumed``
(rows granted, normalized by its quota weight), and a freed grant goes
to the eligible waiter whose tenant has consumed the least — so a
tenant running one huge campaign cannot starve tenants running many
small ones, and weights buy proportional throughput.

The scheduler deliberately knows nothing about chunks' contents; it
sees only widths. That keeps it usable by both the serial campaign
loop (blocking :meth:`acquire`) and the shard supervisor's assignment
tick (non-blocking :meth:`try_acquire`, so a denied grant never stalls
heartbeat processing).

:class:`DegradationLadder` is the service's overload state machine:
shedding, job faults and pool collapses add *pressure*; healthy
completions bleed it off. Sustained pressure first halves the chunk
pool (``OVERLOADED``), then drains the service to one serial campaign
at a time (``SERIAL``) — degraded, but live and still journaling.
"""

from __future__ import annotations

import threading

from ..errors import ServiceError
from .config import ServiceConfig


class _TenantLane:
    """Per-tenant scheduler bookkeeping."""

    __slots__ = ("weight", "cap", "inflight", "consumed",
                 "granted_chunks", "granted_rows")

    def __init__(self, weight: float, cap: int) -> None:
        self.weight = weight
        self.cap = cap
        self.inflight = 0
        self.consumed = 0.0
        self.granted_chunks = 0
        self.granted_rows = 0


class _JobGate:
    """The per-campaign adapter :func:`repro.resilience.run_campaign`
    sees as ``chunk_gate``: three methods, tenant pre-bound."""

    __slots__ = ("scheduler", "tenant")

    def __init__(self, scheduler: "ChunkScheduler", tenant: str) -> None:
        self.scheduler = scheduler
        self.tenant = tenant

    def acquire(self, width: int, cancel_event=None) -> bool:
        return self.scheduler.acquire(self.tenant, width, cancel_event)

    def try_acquire(self, width: int) -> bool:
        return self.scheduler.try_acquire(self.tenant, width)

    def release(self, width: int) -> None:
        self.scheduler.release(self.tenant, width)


class ChunkScheduler:
    """Deficit-weighted round-robin arbiter over chunk grants.

    Thread-safe; every method may be called from any campaign thread.
    ``capacity`` is the service-wide concurrent-grant cap; the
    degradation ladder shrinks it live via :meth:`set_capacity`
    (in-flight grants are never revoked — the squeeze applies to new
    grants).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ServiceError(
                f"scheduler capacity must be >= 1, got {capacity}")
        self._cond = threading.Condition()
        self._capacity = capacity
        self._inflight = 0
        self._lanes: dict[str, _TenantLane] = {}
        self._waiting: list[tuple[str, int]] = []
        self._ticket = 0
        self._stopped = False

    # -- tenant registry -------------------------------------------------

    def register(self, tenant: str, weight: float = 1.0,
                 max_inflight_chunks: int = 1) -> None:
        """Declare a tenant's weight and per-tenant grant cap
        (idempotent; later registrations update the limits)."""
        with self._cond:
            lane = self._lanes.get(tenant)
            if lane is None:
                self._lanes[tenant] = _TenantLane(weight,
                                                  max_inflight_chunks)
            else:
                lane.weight = weight
                lane.cap = max_inflight_chunks
            self._cond.notify_all()

    def gate(self, tenant: str) -> _JobGate:
        """The ``chunk_gate`` object for one campaign of ``tenant``."""
        with self._cond:
            if tenant not in self._lanes:
                raise ServiceError(
                    f"tenant {tenant!r} is not registered with the "
                    f"scheduler")
        return _JobGate(self, tenant)

    # -- capacity --------------------------------------------------------

    def set_capacity(self, capacity: int) -> None:
        with self._cond:
            self._capacity = max(1, int(capacity))
            self._cond.notify_all()

    def stop(self) -> None:
        """Fail all pending and future acquires (service shutdown)."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()

    # -- grant protocol --------------------------------------------------

    def _lane(self, tenant: str) -> _TenantLane:
        lane = self._lanes.get(tenant)
        if lane is None:
            raise ServiceError(
                f"tenant {tenant!r} is not registered with the scheduler")
        return lane

    def _grantable(self, lane: _TenantLane) -> bool:
        return self._inflight < self._capacity and lane.inflight < lane.cap

    def _best_waiter(self) -> tuple[str, int] | None:
        """The waiting entry a freed grant should go to: among waiters
        whose lane can be granted right now, the tenant with the least
        weight-normalized consumption, FIFO within a tenant."""
        best = None
        best_key = None
        for tenant, ticket in self._waiting:
            lane = self._lanes[tenant]
            if not self._grantable(lane):
                continue
            key = (lane.consumed / lane.weight, ticket)
            if best_key is None or key < best_key:
                best, best_key = (tenant, ticket), key
        return best

    def _grant(self, lane: _TenantLane, width: int) -> None:
        self._inflight += 1
        lane.inflight += 1
        lane.consumed += width / lane.weight
        lane.granted_chunks += 1
        lane.granted_rows += width

    def acquire(self, tenant: str, width: int, cancel_event=None) -> bool:
        """Block until a grant for ``width`` rows is ours; False when
        ``cancel_event`` fires or the scheduler stops first."""
        with self._cond:
            lane = self._lane(tenant)
            self._ticket += 1
            entry = (tenant, self._ticket)
            self._waiting.append(entry)
            try:
                while True:
                    if self._stopped:
                        return False
                    if cancel_event is not None and cancel_event.is_set():
                        return False
                    if self._grantable(lane) \
                            and self._best_waiter() == entry:
                        self._grant(lane, width)
                        return True
                    # Bounded wait so a cancel_event set without a
                    # matching notify is still observed promptly.
                    self._cond.wait(timeout=0.05)
            finally:
                self._waiting.remove(entry)

    def try_acquire(self, tenant: str, width: int) -> bool:
        """Grant immediately or not at all — and never jump a waiter
        with a better deficit claim than ours."""
        with self._cond:
            lane = self._lane(tenant)
            if self._stopped or not self._grantable(lane):
                return False
            our_key = lane.consumed / lane.weight
            for waiting_tenant, _ in self._waiting:
                other = self._lanes[waiting_tenant]
                if waiting_tenant != tenant and self._grantable(other) \
                        and other.consumed / other.weight < our_key:
                    return False
            self._grant(lane, width)
            return True

    def release(self, tenant: str, width: int) -> None:
        with self._cond:
            lane = self._lane(tenant)
            self._inflight = max(0, self._inflight - 1)
            lane.inflight = max(0, lane.inflight - 1)
            self._cond.notify_all()

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict:
        """Per-tenant grant totals (the fairness benchmark's input)."""
        with self._cond:
            return {tenant: {"granted_chunks": lane.granted_chunks,
                             "granted_rows": lane.granted_rows,
                             "weight": lane.weight,
                             "inflight": lane.inflight}
                    for tenant, lane in sorted(self._lanes.items())}


#: Ladder states, in degradation order.
LADDER_NORMAL = "normal"
LADDER_OVERLOADED = "overloaded"
LADDER_SERIAL = "serial"
LADDER_STATES = (LADDER_NORMAL, LADDER_OVERLOADED, LADDER_SERIAL)


class DegradationLadder:
    """Pressure-driven overload state machine of the service.

    Events feed an integer pressure score: a shed job or a failed job
    attempt adds 1, a worker-pool collapse adds 2, and every healthy
    completion subtracts 1 (floored at zero). The thresholds from
    :class:`~repro.service.config.ServiceConfig` map pressure to a
    state, and the state maps to effective limits:

    ========== ==================== ======================= =========
    state      running jobs         chunk-grant pool        workers
    ========== ==================== ======================= =========
    normal     ``max_running_jobs`` ``max_inflight_chunks`` requested
    overloaded unchanged            halved                  requested
    serial     1                    1                       forced 0
    ========== ==================== ======================= =========

    Jobs that finish while the ladder is below ``normal`` are marked
    ``degraded`` so clients can tell a squeezed result from a healthy
    one.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.pressure = 0

    # -- event feed ------------------------------------------------------

    def note_shed(self) -> None:
        self.pressure += 1

    def note_job_fault(self) -> None:
        self.pressure += 1

    def note_pool_collapse(self) -> None:
        self.pressure += 2

    def note_job_ok(self) -> None:
        self.pressure = max(0, self.pressure - 1)

    # -- state and effective limits --------------------------------------

    @property
    def state(self) -> str:
        if self.pressure >= self.config.serial_pressure:
            return LADDER_SERIAL
        if self.pressure >= self.config.overload_pressure:
            return LADDER_OVERLOADED
        return LADDER_NORMAL

    @property
    def degrades_results(self) -> bool:
        return self.state != LADDER_NORMAL

    def effective_max_running(self) -> int:
        if self.state == LADDER_SERIAL:
            return 1
        return self.config.max_running_jobs

    def effective_inflight_chunks(self) -> int:
        if self.state == LADDER_SERIAL:
            return 1
        if self.state == LADDER_OVERLOADED:
            return max(1, self.config.max_inflight_chunks // 2)
        return self.config.max_inflight_chunks

    def effective_workers(self, requested: int) -> int:
        if self.state == LADDER_SERIAL:
            return 0
        return requested
