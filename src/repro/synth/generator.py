"""Synthetic reaction-based model generation (SBGen-style).

The paper family evaluates its simulators on randomly generated RBMs of
controlled size whose dynamics resemble real biochemical networks:

* initial concentrations log-uniform in [1e-4, 1);
* kinetic constants log-uniform in [1e-6, 10];
* only zero-, first- and second-order reactions (at most two reactant
  molecules), at most two product molecules;
* sparse stoichiometric matrices.

This generator reproduces those statistics, works for symmetric
(N = M) and asymmetric (N != M) shapes, guarantees that every species
participates in at least one reaction (no inert rows), and is fully
deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from ..model import Reaction, ReactionBasedModel

#: Probability weights of reaction orders (0, 1, 2).
_ORDER_WEIGHTS = (0.05, 0.45, 0.50)
#: Fraction of first-order reactions that are pure degradations.
_DEGRADATION_FRACTION = 0.15


@dataclass(frozen=True)
class SyntheticModelSpec:
    """Shape and distribution parameters of a synthetic RBM.

    Attributes
    ----------
    n_species, n_reactions:
        Target (N, M) size; symmetric RBMs have N = M.
    seed:
        Random seed; identical specs generate identical models.
    concentration_range:
        Log-uniform sampling range of initial concentrations.
    rate_range:
        Log-uniform sampling range of kinetic constants.
    """

    n_species: int
    n_reactions: int
    seed: int = 0
    concentration_range: tuple[float, float] = (1e-4, 1.0)
    rate_range: tuple[float, float] = (1e-6, 10.0)

    def __post_init__(self) -> None:
        if self.n_species < 1 or self.n_reactions < 1:
            raise ModelError(
                f"synthetic RBM needs N >= 1 and M >= 1, got "
                f"({self.n_species}, {self.n_reactions})")
        for low, high in (self.concentration_range, self.rate_range):
            if not (0.0 < low < high):
                raise ModelError(
                    f"invalid log-uniform range ({low}, {high})")


def log_uniform(rng: np.random.Generator, low: float, high: float,
                size) -> np.ndarray:
    """Sample log-uniformly from [low, high)."""
    return np.exp(rng.uniform(np.log(low), np.log(high), size))


def generate_model(spec: SyntheticModelSpec) -> ReactionBasedModel:
    """Generate one synthetic RBM according to the spec."""
    rng = np.random.default_rng(spec.seed)
    n, m = spec.n_species, spec.n_reactions
    model = ReactionBasedModel(f"synthetic-{n}x{m}-seed{spec.seed}")
    concentrations = log_uniform(rng, *spec.concentration_range, n)
    for j in range(n):
        model.add_species(f"S{j}", float(concentrations[j]))
    rates = log_uniform(rng, *spec.rate_range, m)

    for i in range(m):
        reactants = _sample_reactants(rng, n, backbone_species=i % n
                                      if i < n else None)
        products = _sample_products(rng, n, reactants)
        model.add_reaction(Reaction(reactants, products, float(rates[i]),
                                    name=f"R{i}"))
    _ensure_coverage(model, rng)
    return model


def generate_symmetric(size: int, seed: int = 0) -> ReactionBasedModel:
    """Synthetic RBM with N = M = size."""
    return generate_model(SyntheticModelSpec(size, size, seed))


def generate_asymmetric(n_species: int, n_reactions: int,
                        seed: int = 0) -> ReactionBasedModel:
    """Synthetic RBM with independent N and M."""
    return generate_model(SyntheticModelSpec(n_species, n_reactions, seed))


# ----------------------------------------------------------------------


def _sample_reactants(rng: np.random.Generator, n: int,
                      backbone_species: int | None) -> dict[str, int]:
    """Reactant side of order <= 2, optionally pinned to one species.

    The first min(N, M) reactions form a backbone that consumes each
    species in turn, guaranteeing no species is dynamically inert.
    """
    order = int(rng.choice(3, p=_ORDER_WEIGHTS))
    if backbone_species is not None and order == 0:
        order = 1
    if order == 0:
        return {}
    first = (backbone_species if backbone_species is not None
             else int(rng.integers(n)))
    if order == 1:
        return {f"S{first}": 1}
    second = int(rng.integers(n))
    if second == first:
        return {f"S{first}": 2}
    return {f"S{first}": 1, f"S{second}": 1}


def _sample_products(rng: np.random.Generator, n: int,
                     reactants: dict[str, int]) -> dict[str, int]:
    """Product side with at most two molecules; may be empty
    (degradation) for first-order reactions."""
    if len(reactants) == 1 and sum(reactants.values()) == 1 \
            and rng.random() < _DEGRADATION_FRACTION:
        return {}
    count = 1 + int(rng.random() < 0.4)
    products: dict[str, int] = {}
    for _ in range(count):
        name = f"S{int(rng.integers(n))}"
        products[name] = products.get(name, 0) + 1
    # A -> A is a no-op; re-draw the degenerate single-product case.
    if products == reactants:
        other = f"S{int(rng.integers(n))}"
        products = {other: 1}
        if products == reactants:
            products = {f"S{(int(other[1:]) + 1) % n}": 1}
    return products


def _ensure_coverage(model: ReactionBasedModel,
                     rng: np.random.Generator) -> None:
    """Patch product sides so that every species appears somewhere.

    Species are worked into reactions either by filling a free product
    slot or by swapping out one unit of a product that is still covered
    elsewhere. Full coverage is guaranteed whenever it is structurally
    possible (every reaction touches at most four distinct species, so
    very wide models with N > 4 M necessarily keep some inert species;
    the realistic benchmark shapes are far from that regime).
    """
    del rng  # patching is deterministic given the generated reactions
    for _ in range(model.n_species):
        occurrences: dict[str, int] = {}
        for reaction in model.reactions:
            for name in reaction.species_names():
                occurrences[name] = occurrences.get(name, 0) + 1
        missing = [s.name for s in model.species
                   if s.name not in occurrences]
        if not missing:
            break
        if not _patch_one(model, missing[0], occurrences):
            break   # structurally impossible; leave remaining inert
    model._invalidate()


def _patch_one(model: ReactionBasedModel, name: str,
               occurrences: dict[str, int]) -> bool:
    # Preferred: a reaction with a free product slot.
    for index, old in enumerate(model.reactions):
        if sum(old.products.values()) < 2:
            products = dict(old.products)
            products[name] = products.get(name, 0) + 1
            if products == old.reactants:
                continue
            model.reactions[index] = Reaction(
                dict(old.reactants), products, old.rate_constant, old.law,
                old.name)
            return True
    # Fallback: swap out one unit of a product still covered elsewhere.
    for index, old in enumerate(model.reactions):
        for candidate in old.products:
            if occurrences.get(candidate, 0) > 1 or \
                    candidate in old.reactants:
                products = dict(old.products)
                products[candidate] -= 1
                if products[candidate] == 0:
                    del products[candidate]
                products[name] = products.get(name, 0) + 1
                if products == old.reactants or not products:
                    continue
                model.reactions[index] = Reaction(
                    dict(old.reactants), products, old.rate_constant,
                    old.law, old.name)
                return True
    return False
