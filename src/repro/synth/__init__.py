"""Synthetic RBM generation for benchmarking."""

from .generator import (SyntheticModelSpec, generate_asymmetric,
                        generate_model, generate_symmetric, log_uniform)

__all__ = [
    "SyntheticModelSpec", "generate_asymmetric", "generate_model",
    "generate_symmetric", "log_uniform",
]
