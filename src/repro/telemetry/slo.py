"""Per-tenant SLO tracking: objectives, error budgets, burn rates.

A :class:`TenantSLO` declares what "good" means for one tenant's jobs
— finish, and finish within the latency objective — and how much
failure the error budget tolerates (``target`` is the good-event
fraction, so a 0.99 target leaves a 1% budget). The
:class:`SLOTracker` folds every terminal job into a sliding window and
computes the **burn rate**: the observed miss fraction divided by the
budgeted miss fraction. Burn 1.0 means the budget is being consumed
exactly as provisioned; sustained burn above the breach threshold
emits a structured ``SLO_BREACH`` span into the trace stream (a
``service``-category root, so it survives into post-hoc summaries)
and a counter/gauge pair into the service registry, which the
Prometheus exposition turns into per-tenant burn-rate series.

Event classification, per terminal job:

=============================  ======
outcome                        counts
=============================  ======
completed within objective     good
completed, deadline-incomplete miss
completed over the objective   miss
shed (deadline or displaced)   miss
quarantined                    miss
cancelled (client asked)       ignored
rejected (never admitted)      ignored
=============================  ======
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from ..errors import ServiceError
from . import clock as _clock_module
from .prometheus import labeled

#: States that consume error budget when they terminate a job.
_MISS_STATES = ("shed", "quarantined")
#: States excluded from SLO accounting entirely.
_IGNORED_STATES = ("cancelled", "rejected")


@dataclass(frozen=True)
class TenantSLO:
    """Declared service-level objective of one tenant.

    Attributes
    ----------
    latency_objective_seconds:
        A completed job slower than this (submit to finish) is an SLO
        miss; ``None`` means only the outcome matters.
    target:
        Good-event fraction the tenant is promised (``0.99`` leaves a
        1% error budget).
    window_seconds:
        Sliding window the burn rate is computed over.
    breach_burn_rate:
        Burn rate at or above which an ``SLO_BREACH`` event fires
        (re-armed once the burn drops back below it).
    min_events:
        Window events required before the burn rate is trusted — a
        single early miss should not page anyone.
    """

    latency_objective_seconds: float | None = None
    target: float = 0.99
    window_seconds: float = 3600.0
    breach_burn_rate: float = 1.0
    min_events: int = 1

    def __post_init__(self) -> None:
        if self.latency_objective_seconds is not None \
                and not (self.latency_objective_seconds > 0.0):
            raise ServiceError(
                f"latency_objective_seconds must be > 0, got "
                f"{self.latency_objective_seconds}")
        if not (0.0 < self.target < 1.0):
            raise ServiceError(
                f"target must be in (0, 1), got {self.target}")
        if not (self.window_seconds > 0.0):
            raise ServiceError(
                f"window_seconds must be > 0, got {self.window_seconds}")
        if not (self.breach_burn_rate > 0.0):
            raise ServiceError(
                f"breach_burn_rate must be > 0, got "
                f"{self.breach_burn_rate}")
        if self.min_events < 1:
            raise ServiceError(
                f"min_events must be >= 1, got {self.min_events}")

    def is_miss(self, state: str, reason: str,
                latency_seconds: float | None) -> bool | None:
        """Classify one terminal job; ``None`` means "not an event"."""
        if state in _IGNORED_STATES:
            return None
        if state in _MISS_STATES:
            return True
        if state != "completed":
            return True
        if reason == "deadline-incomplete":
            return True
        if self.latency_objective_seconds is not None \
                and latency_seconds is not None \
                and latency_seconds > self.latency_objective_seconds:
            return True
        return False


class SLOTracker:
    """Sliding-window error-budget accounting across tenants.

    Thread-safe; one tracker is written by the service's terminal
    bookkeeping (event loop) and read by the metrics exposition
    (scrape connections). Breach events go to ``tracer`` as
    ``SLO_BREACH`` spans and to ``metrics`` as labeled
    ``service.slo.*`` series.
    """

    def __init__(self, slos: dict | None = None,
                 default_slo: TenantSLO | None = None,
                 metrics=None, tracer=None, clock=None) -> None:
        self.slos = dict(slos or {})
        self.default_slo = default_slo
        self.metrics = metrics
        self.tracer = tracer
        self._clock = clock if clock is not None else _clock_module.REAL_CLOCK
        self._lock = threading.Lock()
        self._windows: dict[str, deque] = {}
        self._breached: set[str] = set()
        self._breach_counts: dict[str, int] = {}

    def slo_for(self, tenant: str) -> TenantSLO | None:
        return self.slos.get(tenant, self.default_slo)

    def observe(self, tenant: str, state: str, reason: str = "",
                latency_seconds: float | None = None) -> bool:
        """Fold one terminal job in; returns True when a breach fired."""
        slo = self.slo_for(tenant)
        if slo is None:
            return False
        miss = slo.is_miss(state, reason, latency_seconds)
        if miss is None:
            return False
        now = self._clock.monotonic()
        with self._lock:
            window = self._windows.get(tenant)
            if window is None:
                window = deque()
                self._windows[tenant] = window
            window.append((now, bool(miss)))
            self._prune(window, slo, now)
            burn, events = self._burn(window, slo)
            fired = False
            if events >= slo.min_events and burn >= slo.breach_burn_rate:
                if tenant not in self._breached:
                    self._breached.add(tenant)
                    count = self._breach_counts.get(tenant, 0) + 1
                    self._breach_counts[tenant] = count
                    fired = True
            elif burn < slo.breach_burn_rate:
                self._breached.discard(tenant)
        if self.metrics is not None:
            self.metrics.gauge(labeled("service.slo.burn_rate",
                                       tenant=tenant), burn)
            self.metrics.gauge(
                labeled("service.slo.budget_remaining", tenant=tenant),
                max(0.0, 1.0 - burn))
            if fired:
                self.metrics.count(labeled("service.slo.breaches",
                                           tenant=tenant))
        if fired and self.tracer is not None:
            handle = self.tracer.start(
                "SLO_BREACH", "service", tenant=tenant,
                burn_rate=float(burn), target=float(slo.target),
                window_events=int(events),
                breach_burn_rate=float(slo.breach_burn_rate))
            self.tracer.end(handle)
        return fired

    @staticmethod
    def _prune(window: deque, slo: TenantSLO, now: float) -> None:
        while window and now - window[0][0] > slo.window_seconds:
            window.popleft()

    @staticmethod
    def _burn(window: deque, slo: TenantSLO) -> tuple[float, int]:
        events = len(window)
        if events == 0:
            return 0.0, 0
        misses = sum(1 for _t, miss in window if miss)
        allowed = 1.0 - slo.target
        return (misses / events) / allowed, events

    def burn_rate(self, tenant: str) -> float:
        """Current burn rate of one tenant (0.0 when untracked)."""
        slo = self.slo_for(tenant)
        if slo is None:
            return 0.0
        now = self._clock.monotonic()
        with self._lock:
            window = self._windows.get(tenant)
            if window is None:
                return 0.0
            self._prune(window, slo, now)
            burn, _events = self._burn(window, slo)
            return burn

    def snapshot(self) -> dict:
        """JSON-safe per-tenant view: burn, events, breach state."""
        now = self._clock.monotonic()
        with self._lock:
            tenants = {}
            for tenant in sorted(self._windows):
                slo = self.slo_for(tenant)
                if slo is None:
                    continue
                window = self._windows[tenant]
                self._prune(window, slo, now)
                burn, events = self._burn(window, slo)
                tenants[tenant] = {
                    "burn_rate": burn,
                    "budget_remaining": max(0.0, 1.0 - burn),
                    "window_events": events,
                    "breached": tenant in self._breached,
                    "breaches": self._breach_counts.get(tenant, 0),
                    "target": slo.target,
                }
            return tenants
