"""Span records and the hierarchy contract of the tracing layer.

A span is one timed region of campaign execution. Spans form the
fixed hierarchy::

    service > job > campaign > worker > chunk > launch > rung > phase

where every child's category must rank strictly below its parent's —
except phases, which may nest inside other phases. The ``service`` and
``job`` levels belong to the multi-tenant campaign service
(:mod:`repro.service`): one root span per service lifetime with one
``job-<id>`` child per admitted campaign. The ``worker`` level is the
shard executor's lane (``campaign/worker-3/chunk-7``); serial
campaigns skip it — and standalone campaigns skip the service levels —
which the skip-friendly rank rule allows.
Span ids are *structural*, not random: a span's id is its slash-joined
path from its root (``campaign/chunk-2/launch-0/rung-1/step-loop``),
with a ``#k`` suffix deduplicating repeated sibling names. Structural
ids are what lets a campaign resumed from a checkpoint append to the
same trace file and still form one coherent tree: the resumed run's
``campaign`` root adopts the previous run's flushed chunk spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TelemetryError

#: Category -> hierarchy rank (parents must rank above children).
CATEGORIES = {"service": 0, "job": 1, "campaign": 2, "worker": 3,
              "chunk": 4, "launch": 5, "rung": 6, "phase": 7}


def nesting_allowed(child_category: str, parent_category: str) -> bool:
    """Whether a ``child_category`` span may nest under the parent.

    Children must sit strictly deeper in the hierarchy; the one
    exception is phase-in-phase, so instrumented sub-steps of a kernel
    phase stay expressible. Levels may be *skipped* (a standalone
    engine run roots its trace at ``launch`` with phases below it).
    """
    if child_category == "phase" and parent_category == "phase":
        return True
    return CATEGORIES[child_category] > CATEGORIES[parent_category]


@dataclass
class Span:
    """One completed timed region.

    ``t_start`` is monotonic (process-relative) seconds from the
    sanctioned :mod:`repro.telemetry.clock` boundary; ``duration`` is
    in seconds. ``attrs`` carries small JSON-safe annotations (row
    counts, solver names) — never result data.
    """

    name: str
    span_id: str
    parent_id: str | None
    category: str
    t_start: float
    duration: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "id": self.span_id,
                "parent": self.parent_id, "category": self.category,
                "t_start": float(self.t_start),
                "duration": float(self.duration),
                "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        try:
            return cls(str(data["name"]), str(data["id"]),
                       data.get("parent"), str(data["category"]),
                       float(data["t_start"]), float(data["duration"]),
                       dict(data.get("attrs", {})))
        except (KeyError, TypeError, ValueError) as error:
            raise TelemetryError(
                f"malformed span record {data!r}: {error}") from None
