"""Hierarchical tracer with explicit span handles.

The :class:`Tracer` hands out :class:`SpanHandle` objects on
``start()`` and records a :class:`~repro.telemetry.spans.Span` on
``end()``. Spans reach the sink *only when they end*, and the sink
buffers them until ``flush()`` — the campaign loop flushes right after
each chunk is journaled, so the trace file and the checkpoint journal
stay transactionally aligned: a crash loses exactly the spans of the
chunk the journal also lost, and a resumed campaign appends to the
same file without duplicating ids.

:data:`NULL_TRACER` is the disabled mode: a singleton whose
``start``/``end``/``span`` calls are attribute lookups and constant
returns, cheap enough to leave threaded through the hot engine paths
unconditionally (budgeted <2% by
``benchmarks/bench_telemetry_overhead.py``).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from ..errors import TelemetryError
from . import clock as _clock_module
from .spans import CATEGORIES, Span, nesting_allowed


class SpanHandle:
    """An open span: identity plus start time, closed by
    :meth:`Tracer.end`."""

    __slots__ = ("name", "span_id", "parent_id", "category", "t_start",
                 "attrs", "child_counts", "closed")

    def __init__(self, name: str, span_id: str, parent_id: str | None,
                 category: str, t_start: float, attrs: dict) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.category = category
        self.t_start = t_start
        self.attrs = attrs
        self.child_counts: dict[str, int] = {}
        self.closed = False


class _TracerContext:
    """Context manager backing :meth:`Tracer.span`."""

    __slots__ = ("tracer", "handle")

    def __init__(self, tracer: "Tracer", handle: SpanHandle) -> None:
        self.tracer = tracer
        self.handle = handle

    def __enter__(self) -> SpanHandle:
        return self.handle

    def __exit__(self, *exc_info) -> bool:
        self.tracer.end(self.handle)
        return False


class JsonlSink:
    """Buffered JSONL span sink (one span object per line, appended).

    Emit and flush are serialized by a lock: the campaign service runs
    many campaign threads against one shared tracer, and a flush racing
    a concurrent emit must not drop the in-flight span.
    """

    def __init__(self, path: str | Path, append: bool = True) -> None:
        self.path = Path(path)
        self._buffer: list[Span] = []
        self._lock = threading.Lock()
        if not append and self.path.is_file():
            self.path.unlink()

    def emit(self, span: Span) -> None:
        with self._lock:
            self._buffer.append(span)

    def flush(self) -> None:
        with self._lock:
            if not self._buffer:
                return
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                for span in self._buffer:
                    handle.write(json.dumps(span.to_dict(),
                                            sort_keys=True) + "\n")
            self._buffer.clear()


class Tracer:
    """Records hierarchical spans with structural, resume-stable ids.

    Parameters
    ----------
    sink:
        Optional :class:`JsonlSink` (or any object with
        ``emit(span)``/``flush()``); without one, completed spans are
        only kept on :attr:`spans` in memory.
    clock:
        Clock object with a ``monotonic()`` method; defaults to the
        sanctioned real clock. Tests pass
        :class:`~repro.telemetry.clock.FakeClock`.
    keep_spans:
        Whether completed spans accumulate on :attr:`spans`. The
        default (``True``) is what batch campaigns and tests expect; a
        long-lived server with a live :class:`MetricsHub
        <repro.telemetry.live.MetricsHub>` attached turns it off so
        the tracer's memory stays bounded while observers still see
        every close.
    """

    enabled = True

    def __init__(self, sink: JsonlSink | None = None,
                 clock=None, keep_spans: bool = True) -> None:
        self.sink = sink
        self.clock = clock if clock is not None else _clock_module.REAL_CLOCK
        self.keep_spans = keep_spans
        self.spans: list[Span] = []
        self._root_counts: dict[str, int] = {}
        # Copy-on-write tuple: ``end()`` iterates it without taking
        # the tracer lock, add/remove swap in a fresh tuple under it.
        self._observers: tuple = ()
        # One tracer is shared by the event loop (service spans) and
        # campaign worker threads (chunk/launch spans): the ordinal
        # counters and the completed-span list need a lock.
        self._lock = threading.Lock()

    def add_observer(self, observer) -> None:
        """Register a callable invoked with every completed
        :class:`~repro.telemetry.spans.Span` (span-close events).

        Observers run synchronously on whichever thread ends the span,
        outside the tracer lock — they must be fast and thread-safe
        (the :class:`~repro.telemetry.live.MetricsHub` is both).
        """
        with self._lock:
            self._observers = (*self._observers, observer)

    def remove_observer(self, observer) -> None:
        # Equality, not identity: ``hub.on_span`` is a fresh bound
        # method on every access, and bound methods compare equal by
        # (__self__, __func__) — identity would never match.
        with self._lock:
            self._observers = tuple(entry for entry in self._observers
                                    if entry != observer)

    def start(self, name: str, category: str,
              parent: SpanHandle | None = None, **attrs) -> SpanHandle:
        """Open a span; returns the handle ``end`` expects back."""
        if category not in CATEGORIES:
            raise TelemetryError(
                f"unknown span category {category!r}; expected one of "
                f"{tuple(CATEGORIES)}")
        if parent is not None and parent.category is not None \
                and not nesting_allowed(category, parent.category):
            raise TelemetryError(
                f"a {category!r} span cannot nest under a "
                f"{parent.category!r} span (hierarchy: "
                f"{' > '.join(CATEGORIES)})")
        with self._lock:
            counts = (self._root_counts if parent is None
                      else parent.child_counts)
            ordinal = counts.get(name, 0) + 1
            counts[name] = ordinal
        unique = name if ordinal == 1 else f"{name}#{ordinal}"
        span_id = (unique if parent is None
                   else f"{parent.span_id}/{unique}")
        parent_id = None if parent is None else parent.span_id
        return SpanHandle(name, span_id, parent_id, category,
                          self.clock.monotonic(), attrs)

    def end(self, handle: SpanHandle, **attrs) -> Span:
        """Close a span, record it, and hand it to the sink buffer."""
        if handle.closed:
            raise TelemetryError(
                f"span {handle.span_id!r} was already ended")
        handle.closed = True
        duration = self.clock.monotonic() - handle.t_start
        merged = handle.attrs if not attrs else {**handle.attrs, **attrs}
        span = Span(handle.name, handle.span_id, handle.parent_id,
                    handle.category, handle.t_start, duration, merged)
        if self.keep_spans:
            with self._lock:
                self.spans.append(span)
        if self.sink is not None:
            self.sink.emit(span)
        for observer in self._observers:
            observer(span)
        return span

    def span(self, name: str, category: str,
             parent: SpanHandle | None = None, **attrs) -> _TracerContext:
        """``with tracer.span(...) as handle:`` convenience wrapper."""
        return _TracerContext(self, self.start(name, category, parent,
                                               **attrs))

    def flush(self) -> None:
        """Write every buffered completed span to the sink."""
        if self.sink is not None:
            self.sink.flush()


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return _NULL_HANDLE

    def __exit__(self, *exc_info) -> bool:
        return False


class NullTracer:
    """Disabled telemetry: every operation is a constant-return no-op."""

    enabled = False
    spans: tuple = ()
    sink = None

    def start(self, name, category, parent=None, **attrs):
        return _NULL_HANDLE

    def end(self, handle, **attrs):
        return None

    def span(self, name, category, parent=None, **attrs):
        return _NULL_CONTEXT

    def add_observer(self, observer) -> None:
        return None

    def remove_observer(self, observer) -> None:
        return None

    def flush(self) -> None:
        return None


#: Shared handle returned by the null tracer (never inspected).
_NULL_HANDLE = SpanHandle("", "", None, "phase", 0.0, {})
_NULL_CONTEXT = _NullContext()

#: The singleton every component falls back to when tracing is off.
NULL_TRACER = NullTracer()


def as_tracer(telemetry) -> Tracer | NullTracer:
    """Normalize the public ``telemetry=`` knob to a tracer.

    ``None`` -> :data:`NULL_TRACER`; an existing tracer passes
    through; a path string/``Path`` builds a :class:`Tracer` with an
    appending :class:`JsonlSink` at that location (append mode is what
    keeps resumed campaigns writing into one coherent trace file).
    """
    if telemetry is None:
        return NULL_TRACER
    if isinstance(telemetry, (Tracer, NullTracer)):
        return telemetry
    if isinstance(telemetry, (str, Path)):
        return Tracer(sink=JsonlSink(telemetry, append=True))
    raise TelemetryError(
        f"telemetry must be None, a Tracer or a trace-file path, got "
        f"{type(telemetry)!r}")
