"""Streaming observability over a running service: the metrics hub.

The :class:`MetricsHub` is the live half of the telemetry layer. The
post-hoc half (tracer -> JSONL -> ``repro trace summarize``) answers
"what happened"; the hub answers "what is happening *now*" without
waiting for a trace file to flush. Data flows one way::

    Tracer span closes ──► MetricsHub.on_span ──────► sliding windows
    MetricsRegistry ─────► MetricsHub.ingest_registry ──► counter rates
                             │
                             ├──► Subscription (bounded queues)
                             └──► snapshot() ──► Prometheus / repro top
                                                └──► SLO / calibration

The hub is an ordinary tracer *observer* (see
:meth:`~repro.telemetry.tracer.Tracer.add_observer`): every completed
span is folded into per-category, per-phase and per-tenant sliding
windows built from the same power-of-two histograms the registry uses
(durations are scaled to microseconds first — sub-second spans would
otherwise all collapse into bucket zero). Aggregation is O(1) per
span and bounded in memory regardless of uptime: a window is two
rotating histograms, never a list of samples.

Every public method is safe to call from the event loop and from
campaign worker threads at once; all mutable state is guarded by one
lock, and subscription delivery happens outside it so a slow consumer
can never stall a span close — its queue fills and further events are
dropped *and counted* instead.
"""

from __future__ import annotations

import queue
import threading

from ..errors import TelemetryError
from . import clock as _clock_module
from .metrics import Histogram, MetricsRegistry

#: Quantiles every window reports (seconds, from the µs histograms).
WINDOW_QUANTILES = (0.50, 0.95, 0.99)

#: Span categories rolled up per *name family* as engine phases
#: ("launch-3" -> "launch", "rung-1" -> "rung", "merge" -> "merge").
_PHASE_CATEGORIES = ("launch", "rung", "phase")


def phase_family(name: str) -> str:
    """Collapse ordinal span names to their family for rollups."""
    base = name.split("#", 1)[0]
    stem, dash, suffix = base.rpartition("-")
    if dash and suffix.isdigit():
        return stem
    return base


class Subscription:
    """Bounded event queue of one hub subscriber.

    ``deliver`` never blocks the publisher: when the queue is full the
    event is dropped and :attr:`dropped` grows — backpressure shows up
    in the accounting instead of in a span-close latency spike.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise TelemetryError(
                f"subscription maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._queue: queue.Queue = queue.Queue(maxsize=maxsize)
        self._lock = threading.Lock()
        self._delivered = 0
        self._dropped = 0

    def deliver(self, event: dict) -> bool:
        """Called by the hub; returns whether the event was enqueued."""
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            with self._lock:
                self._dropped += 1
            return False
        with self._lock:
            self._delivered += 1
        return True

    def get(self, timeout: float | None = None) -> dict | None:
        """Next event, or ``None`` when the queue stays empty.

        ``timeout=None`` polls without blocking (consumer threads pass
        a timeout to wait).
        """
        try:
            if timeout is None:
                return self._queue.get_nowait()
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def drain(self) -> list[dict]:
        """Every event currently queued (non-blocking)."""
        events = []
        while True:
            event = self.get()
            if event is None:
                return events
            events.append(event)

    @property
    def delivered(self) -> int:
        with self._lock:
            return self._delivered

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    @property
    def queued(self) -> int:
        return self._queue.qsize()


class _SlidingWindow:
    """Count + duration distribution over roughly the last window.

    Two rotating power-of-two histograms: reads merge the current and
    the previous epoch, so aggregates always cover between one and two
    window lengths without storing individual samples. Not
    self-locking — the hub calls ``advance`` under its lock before
    every ``add``/``stats``.
    """

    __slots__ = ("window_seconds", "epoch_start", "current", "previous",
                 "lifetime_n")

    def __init__(self, window_seconds: float) -> None:
        self.window_seconds = float(window_seconds)
        self.epoch_start: float | None = None
        self.current = Histogram()
        self.previous = Histogram()
        self.lifetime_n = 0

    def advance(self, now: float) -> None:
        """Rotate epochs so ``current`` covers less than one window."""
        if self.epoch_start is None:
            self.epoch_start = now
            return
        elapsed = now - self.epoch_start
        if elapsed < self.window_seconds:
            return
        if elapsed < 2.0 * self.window_seconds:
            self.previous = self.current
        else:
            self.previous = Histogram()
        self.current = Histogram()
        self.epoch_start = now - (elapsed % self.window_seconds)

    def add(self, value_us: float) -> None:
        self.lifetime_n += 1
        self.current.observe(value_us)

    def stats(self, now: float) -> dict:
        """JSON-safe window aggregate (rate in events/s, quantiles in
        seconds)."""
        merged = Histogram()
        merged.merge(self.previous)
        merged.merge(self.current)
        covered = 0.0
        if self.epoch_start is not None:
            covered = now - self.epoch_start
            if self.previous.n:
                covered += self.window_seconds
        rate = merged.n / covered if covered > 0.0 else 0.0
        quantiles = {
            f"p{int(q * 100)}": (merged.quantile(q) * 1.0e-6
                                 if merged.n else None)
            for q in WINDOW_QUANTILES}
        return {"n": merged.n, "lifetime_n": self.lifetime_n,
                "rate": rate,
                "mean_seconds": merged.mean * 1.0e-6 if merged.n else None,
                **quantiles}


class _TenantWindow:
    """Per-tenant rollup: outcome counts plus latency/wait windows."""

    __slots__ = ("outcomes", "latency", "wait")

    def __init__(self, window_seconds: float) -> None:
        self.outcomes: dict[str, int] = {}
        self.latency = _SlidingWindow(window_seconds)
        self.wait = _SlidingWindow(window_seconds)

    def note_outcome(self, state: str) -> None:
        self.outcomes[state] = self.outcomes.get(state, 0) + 1


class MetricsHub:
    """Thread-safe streaming aggregator of spans and registry snapshots.

    Parameters
    ----------
    window_seconds:
        Length of the sliding aggregation window (rates and quantiles
        cover between one and two of these).
    clock:
        Monotonic clock; tests pass
        :class:`~repro.telemetry.clock.FakeClock` to drive window
        rotation deterministically.
    """

    def __init__(self, window_seconds: float = 60.0, clock=None) -> None:
        if not window_seconds > 0.0:
            raise TelemetryError(
                f"window_seconds must be > 0, got {window_seconds}")
        self.window_seconds = float(window_seconds)
        self._clock = clock if clock is not None else _clock_module.REAL_CLOCK
        self._lock = threading.Lock()
        self._tracers: list = []
        self._categories: dict[str, _SlidingWindow] = {}
        self._phases: dict[str, _SlidingWindow] = {}
        self._tenants: dict[str, _TenantWindow] = {}
        self._subscriptions: tuple[Subscription, ...] = ()
        self._counter_snapshot: dict[str, int] = {}
        self._gauge_snapshot: dict[str, float] = {}
        self._counter_rates: dict[str, float] = {}
        self._snapshot_t: float | None = None
        self._n_spans = 0

    # -- wiring ----------------------------------------------------------

    def attach(self, tracer) -> None:
        """Start consuming span-close events from ``tracer``."""
        tracer.add_observer(self.on_span)
        with self._lock:
            self._tracers.append(tracer)

    def detach(self) -> None:
        """Stop observing every attached tracer."""
        with self._lock:
            tracers = list(self._tracers)
            self._tracers.clear()
        for tracer in tracers:
            tracer.remove_observer(self.on_span)

    def subscribe(self, maxsize: int = 1024) -> Subscription:
        """Open a bounded queue receiving one event per span close."""
        subscription = Subscription(maxsize)
        with self._lock:
            self._subscriptions = (*self._subscriptions, subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            self._subscriptions = tuple(
                entry for entry in self._subscriptions
                if entry is not subscription)

    # -- ingestion -------------------------------------------------------

    def on_span(self, span) -> None:
        """Tracer observer: fold one completed span into the windows."""
        now = self._clock.monotonic()
        duration_us = max(0.0, float(span.duration)) * 1.0e6
        with self._lock:
            self._n_spans += 1
            window = self._categories.get(span.category)
            if window is None:
                window = _SlidingWindow(self.window_seconds)
                self._categories[span.category] = window
            window.advance(now)
            window.add(duration_us)
            if span.category in _PHASE_CATEGORIES:
                family = phase_family(span.name)
                phase = self._phases.get(family)
                if phase is None:
                    phase = _SlidingWindow(self.window_seconds)
                    self._phases[family] = phase
                phase.advance(now)
                phase.add(duration_us)
            if span.category == "job":
                tenant = str(span.attrs.get("tenant", "default"))
                rollup = self._tenants.get(tenant)
                if rollup is None:
                    rollup = _TenantWindow(self.window_seconds)
                    self._tenants[tenant] = rollup
                rollup.note_outcome(str(span.attrs.get("state", "unknown")))
                rollup.latency.advance(now)
                rollup.latency.add(duration_us)
                wait = span.attrs.get("wait_seconds")
                if wait is not None:
                    rollup.wait.advance(now)
                    rollup.wait.add(float(wait) * 1.0e6)
            subscriptions = self._subscriptions
        if not subscriptions:
            return
        event = {"kind": "span", "category": span.category,
                 "name": span.name,
                 "duration_seconds": float(span.duration)}
        for key in ("tenant", "state", "reason"):
            if key in span.attrs:
                event[key] = span.attrs[key]
        for subscription in subscriptions:
            subscription.deliver(event)

    def ingest_registry(self, registry: MetricsRegistry) -> None:
        """Snapshot a registry; successive snapshots yield counter
        rates (counter delta over the wall-clock gap between them)."""
        counters = dict(registry.counters)
        gauges = dict(registry.gauges)
        now = self._clock.monotonic()
        with self._lock:
            previous = self._counter_snapshot
            previous_t = self._snapshot_t
            if previous_t is not None and now > previous_t:
                elapsed = now - previous_t
                self._counter_rates = {
                    name: (value - previous.get(name, 0)) / elapsed
                    for name, value in counters.items()}
            self._counter_snapshot = counters
            self._gauge_snapshot = gauges
            self._snapshot_t = now

    # -- reads -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe view of every window, rollup, counter and rate."""
        now = self._clock.monotonic()
        with self._lock:
            for window in self._categories.values():
                window.advance(now)
            for window in self._phases.values():
                window.advance(now)
            for rollup in self._tenants.values():
                rollup.latency.advance(now)
                rollup.wait.advance(now)
            return {
                "window_seconds": self.window_seconds,
                "spans_seen": self._n_spans,
                "categories": {name: window.stats(now)
                               for name, window
                               in sorted(self._categories.items())},
                "phases": {name: window.stats(now)
                           for name, window
                           in sorted(self._phases.items())},
                "tenants": {tenant: {
                    "outcomes": dict(sorted(rollup.outcomes.items())),
                    "latency": rollup.latency.stats(now),
                    "wait": rollup.wait.stats(now),
                } for tenant, rollup in sorted(self._tenants.items())},
                "counters": dict(self._counter_snapshot),
                "gauges": dict(self._gauge_snapshot),
                "rates": dict(self._counter_rates),
                "subscribers": [
                    {"delivered": entry.delivered,
                     "dropped": entry.dropped,
                     "queued": entry.queued}
                    for entry in self._subscriptions],
            }

    @property
    def spans_seen(self) -> int:
        with self._lock:
            return self._n_spans
