"""Prometheus text-format (0.0.4) exposition and parsing.

Bridges the repo's metric objects to the exposition format every
scraper understands: ``# HELP``/``# TYPE`` headers, ``_total``-suffixed
counters, cumulative ``le`` histogram buckets and ``quantile``-labeled
summaries. The renderer is pure data-in/text-out — it imports nothing
above the telemetry layer, so the service server, the CLI and tests
all compose the same family builders.

Labels travel *inside* registry metric names with the
``name[key=value,...]`` convention (:func:`labeled` builds them,
:func:`split_labels` parses them back). A registry stays a flat
``str -> value`` mapping — deterministic, journal-safe, merge-friendly
— while the renderer recovers proper Prometheus label sets:

>>> labeled("service.jobs.admitted", tenant="acme")
'service.jobs.admitted[tenant=acme]'

renders as ``repro_service_jobs_admitted_total{tenant="acme"}``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import TelemetryError
from .metrics import Histogram, MetricsRegistry

#: Quantile labels rendered for summaries (matches the hub windows).
_SUMMARY_QUANTILES = ("p50", "p95", "p99")

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$")
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def labeled(name: str, **labels) -> str:
    """Embed a sorted label set into a flat metric name."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}[{inner}]"


def split_labels(name: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`labeled`; plain names come back label-free."""
    if not name.endswith("]") or "[" not in name:
        return name, {}
    base, _bracket, inner = name.partition("[")
    labels: dict[str, str] = {}
    for pair in inner[:-1].split(","):
        key, eq, value = pair.partition("=")
        if eq:
            labels[key.strip()] = value.strip()
    return base, labels


def sanitize_metric_name(name: str, namespace: str = "repro") -> str:
    """Mangle a dotted registry name into a legal Prometheus name."""
    flat = _NAME_OK.sub("_", name.replace(".", "_"))
    return f"{namespace}_{flat}" if namespace else flat


def _escape_label_value(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_LABEL_OK.sub("_", str(key))}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


@dataclass
class Family:
    """One metric family: a TYPE/HELP header plus its samples.

    ``samples`` entries are ``(suffix, labels, value)`` — the suffix
    ("_total", "_bucket", "_sum", ...) is appended to the family name.
    """

    name: str
    kind: str
    help: str
    samples: list = field(default_factory=list)

    def sample(self, suffix: str, labels: dict, value: float) -> None:
        self.samples.append((suffix, dict(labels), float(value)))

    def render(self) -> str:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for suffix, labels, value in self.samples:
            lines.append(f"{self.name}{suffix}{_format_labels(labels)} "
                         f"{_format_value(value)}")
        return "\n".join(lines)


class FamilySet:
    """Ordered, name-deduplicating collection of families."""

    def __init__(self) -> None:
        self._families: dict[str, Family] = {}

    def family(self, name: str, kind: str, help_text: str) -> Family:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise TelemetryError(
                    f"metric family {name!r} declared as both "
                    f"{existing.kind!r} and {kind!r}")
            return existing
        created = Family(name, kind, help_text)
        self._families[name] = created
        return created

    def render(self) -> str:
        blocks = [family.render() for family in self._families.values()
                  if family.samples]
        return "\n".join(blocks) + "\n" if blocks else "\n"


def _histogram_samples(family: Family, labels: dict,
                       histogram: Histogram) -> None:
    """Cumulative ``le`` buckets from the power-of-two histogram.

    Bucket exponent ``k`` holds values below ``2**k``, so the bucket's
    upper edge is its ``le`` boundary; ``+Inf`` carries the total.
    """
    cumulative = 0
    for exponent in sorted(histogram.buckets):
        cumulative += histogram.buckets[exponent]
        family.sample("_bucket", {**labels, "le": str(2 ** exponent)},
                      cumulative)
    family.sample("_bucket", {**labels, "le": "+Inf"}, histogram.n)
    family.sample("_sum", labels, histogram.total)
    family.sample("_count", labels, histogram.n)


def registry_families(registry: MetricsRegistry, families: FamilySet,
                      namespace: str = "repro") -> FamilySet:
    """Expose a registry's counters/gauges/histograms as families."""
    for name in sorted(registry.counters):
        base, labels = split_labels(name)
        family = families.family(
            sanitize_metric_name(base, namespace) + "_total", "counter",
            f"Monotonic counter {base!r}.")
        family.sample("", labels, registry.counters[name])
    for name in sorted(registry.gauges):
        base, labels = split_labels(name)
        family = families.family(
            sanitize_metric_name(base, namespace), "gauge",
            f"Last-value gauge {base!r}.")
        family.sample("", labels, registry.gauges[name])
    for name in sorted(registry.histograms):
        base, labels = split_labels(name)
        family = families.family(
            sanitize_metric_name(base, namespace), "histogram",
            f"Power-of-two histogram {base!r}.")
        _histogram_samples(family, labels, registry.histograms[name])
    return families


def _summary_samples(family: Family, labels: dict, stats: dict) -> None:
    for key in _SUMMARY_QUANTILES:
        value = stats.get(key)
        if value is None:
            continue
        family.sample("", {**labels, "quantile": f"0.{key[1:]}"}, value)
    count = int(stats.get("n", 0))
    mean = stats.get("mean_seconds")
    family.sample("_sum", labels,
                  0.0 if mean is None else mean * count)
    family.sample("_count", labels, count)


def hub_families(snapshot: dict, families: FamilySet,
                 namespace: str = "repro") -> FamilySet:
    """Expose a :meth:`MetricsHub.snapshot` as Prometheus families.

    Window quantiles become ``summary`` families; window event rates
    become gauges (they are already per-second values — a counter
    would double-rate them on the scraper side).
    """
    prefix = f"{namespace}_live" if namespace else "live"
    spans = families.family(f"{prefix}_spans_seen_total", "counter",
                            "Spans the hub has consumed since start.")
    spans.sample("", {}, snapshot.get("spans_seen", 0))
    rate = families.family(
        f"{prefix}_span_rate", "gauge",
        "Span closes per second over the sliding window.")
    duration = families.family(
        f"{prefix}_span_duration_seconds", "summary",
        "Span duration quantiles over the sliding window.")
    for category, stats in snapshot.get("categories", {}).items():
        rate.sample("", {"category": category}, stats.get("rate", 0.0))
        _summary_samples(duration, {"category": category}, stats)
    phase = families.family(
        f"{prefix}_phase_duration_seconds", "summary",
        "Engine phase duration quantiles over the sliding window.")
    for name, stats in snapshot.get("phases", {}).items():
        _summary_samples(phase, {"phase": name}, stats)
    outcomes = families.family(
        f"{prefix}_job_outcomes_total", "counter",
        "Terminal job states per tenant (hub lifetime).")
    latency = families.family(
        f"{prefix}_job_latency_seconds", "summary",
        "Job latency quantiles per tenant over the sliding window.")
    wait = families.family(
        f"{prefix}_job_wait_seconds", "summary",
        "Job queue-wait quantiles per tenant over the sliding window.")
    for tenant, rollup in snapshot.get("tenants", {}).items():
        for state, count in rollup.get("outcomes", {}).items():
            outcomes.sample("", {"tenant": tenant, "state": state}, count)
        _summary_samples(latency, {"tenant": tenant},
                         rollup.get("latency", {}))
        _summary_samples(wait, {"tenant": tenant}, rollup.get("wait", {}))
    dropped = families.family(
        f"{prefix}_subscriber_dropped_total", "counter",
        "Events dropped on saturated subscription queues.")
    total_dropped = sum(entry.get("dropped", 0)
                        for entry in snapshot.get("subscribers", ()))
    dropped.sample("", {}, total_dropped)
    return families


def render_prometheus(registries=(), hub_snapshot: dict | None = None,
                      namespace: str = "repro") -> str:
    """Full exposition document from registries + an optional hub."""
    families = FamilySet()
    for registry in registries:
        registry_families(registry, families, namespace)
    if hub_snapshot is not None:
        hub_families(hub_snapshot, families, namespace)
    return families.render()


def parse_prometheus_text(text: str) -> dict[str, list]:
    """Parse an exposition document into ``name -> [(labels, value)]``.

    The sample name includes its suffix (``_total``, ``_bucket``, ...),
    matching what a real scraper stores. Raises
    :class:`~repro.errors.TelemetryError` on a malformed line, so it
    doubles as a format check in tests.
    """
    samples: dict[str, list] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise TelemetryError(
                f"line {lineno}: not a valid Prometheus sample: "
                f"{line!r}")
        labels: dict[str, str] = {}
        if match.group("labels"):
            for key, value in _LABEL_PAIR.findall(match.group("labels")):
                labels[key] = value.replace('\\"', '"') \
                    .replace("\\n", "\n").replace("\\\\", "\\")
        raw = match.group("value")
        try:
            value = float(raw.replace("+Inf", "inf")
                          .replace("-Inf", "-inf"))
        except ValueError:
            raise TelemetryError(
                f"line {lineno}: bad sample value {raw!r}") from None
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples
