"""Typed counters, gauges and histograms for engine/campaign metrics.

A :class:`MetricsRegistry` is the timestamp-free half of the
telemetry layer: pure counts and sizes (accepted steps, Newton
iterations, retry escalations, per-launch working sets) that *are*
allowed into checkpoint payloads and reports, because they are a
deterministic function of the campaign inputs — rerunning the same
campaign reproduces them bit-for-bit, which rule DET005 cannot say of
anything derived from the wall clock.

Instruments are created on first use; serialized output is sorted so
``to_dict`` is deterministic and diff-friendly.
"""

from __future__ import annotations

import threading

from ..errors import TelemetryError


class Histogram:
    """Power-of-two bucketed distribution summary.

    ``buckets`` maps a bucket exponent ``k`` to the number of observed
    values with ``2**(k-1) < value <= 2**k - 1``-style magnitude
    (``k = int(value).bit_length()``, so bucket 0 holds zeros). The
    exponent bucketing keeps merge deterministic and the payload tiny
    regardless of how many launches a campaign runs.
    """

    __slots__ = ("n", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.n = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.n += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        exponent = max(0, int(abs(value))).bit_length()
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by midpoint-of-bucket
        interpolation.

        The target rank is walked through the sorted power-of-two
        buckets; within the bucket that holds it, the value is placed
        by linear interpolation over the bucket's ``[lo, hi)`` range
        with the classic half-sample offset (a single observation in a
        bucket lands on the bucket midpoint). The result is clamped to
        the exact observed ``[min, max]``, so degenerate histograms
        (one value, one bucket) reproduce their inputs exactly.
        """
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile q must be in [0, 1], got {q}")
        if self.n == 0:
            raise TelemetryError("quantile of an empty histogram")
        rank = q * (self.n - 1)
        seen = 0
        for exponent in sorted(self.buckets):
            count = self.buckets[exponent]
            if rank < seen + count:
                lo = 0.0 if exponent == 0 else float(2 ** (exponent - 1))
                hi = float(2 ** exponent)
                fraction = (rank - seen + 0.5) / count
                value = lo + fraction * (hi - lo)
                return min(max(value, self.minimum), self.maximum)
            seen += count
        return self.maximum

    def merge(self, other: "Histogram") -> None:
        if other.n == 0:
            return
        self.n += other.n
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        for exponent, count in other.buckets.items():
            self.buckets[exponent] = self.buckets.get(exponent, 0) + count

    def to_dict(self) -> dict:
        return {"n": self.n, "total": self.total,
                "min": self.minimum if self.n else None,
                "max": self.maximum if self.n else None,
                "buckets": {str(k): self.buckets[k]
                            for k in sorted(self.buckets)}}

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        histogram = cls()
        histogram.n = int(data["n"])
        histogram.total = float(data["total"])
        if histogram.n:
            histogram.minimum = float(data["min"])
            histogram.maximum = float(data["max"])
        histogram.buckets = {int(k): int(v)
                             for k, v in data.get("buckets", {}).items()}
        return histogram


class MetricsRegistry:
    """Create-on-first-use registry of counters, gauges and histograms.

    One name belongs to exactly one instrument kind; reusing a counter
    name as a gauge (or vice versa) raises
    :class:`~repro.errors.TelemetryError` instead of silently
    shadowing.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        # One registry is written from the event loop (service
        # bookkeeping) and from to_thread workers (per-chunk engine
        # counts) at once; every read-modify-write below holds this.
        self._lock = threading.Lock()

    def _check_kind(self, name: str, kind: str) -> None:
        for other_kind, table in (("counter", self.counters),
                                  ("gauge", self.gauges),
                                  ("histogram", self.histograms)):
            if other_kind != kind and name in table:
                raise TelemetryError(
                    f"metric {name!r} is already a {other_kind}, "
                    f"cannot reuse it as a {kind}")

    def count(self, name: str, value: int = 1) -> None:
        """Add to a monotonically growing integer counter."""
        self._check_kind(name, "counter")
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        """Record a last-value-wins measurement."""
        self._check_kind(name, "gauge")
        with self._lock:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Feed one sample into a histogram."""
        self._check_kind(name, "histogram")
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.observe(value)

    def merge(self, other: "MetricsRegistry") -> None:
        """Absorb another registry (counters add, gauges overwrite,
        histograms merge)."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, value in other.gauges.items():
            self.gauge(name, value)
        for name, histogram in other.histograms.items():
            self._check_kind(name, "histogram")
            with self._lock:
                mine = self.histograms.get(name)
                if mine is None:
                    mine = self.histograms[name] = Histogram()
                mine.merge(histogram)

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)

    def to_dict(self) -> dict:
        return {
            "counters": {name: self.counters[name]
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name]
                       for name in sorted(self.gauges)},
            "histograms": {name: self.histograms[name].to_dict()
                           for name in sorted(self.histograms)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counters[name] = int(value)
        for name, value in data.get("gauges", {}).items():
            registry.gauges[name] = float(value)
        for name, payload in data.get("histograms", {}).items():
            registry.histograms[name] = Histogram.from_dict(payload)
        return registry

    def render(self) -> str:
        """Human-readable block, one instrument per line, sorted."""
        lines = []
        for name in sorted(self.counters):
            lines.append(f"{name:<36} {self.counters[name]:>12}")
        for name in sorted(self.gauges):
            lines.append(f"{name:<36} {self.gauges[name]:>12.6g}")
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            lines.append(
                f"{name:<36} n={histogram.n} mean={histogram.mean:.6g} "
                f"p50={histogram.quantile(0.50):.6g} "
                f"p95={histogram.quantile(0.95):.6g} "
                f"p99={histogram.quantile(0.99):.6g} "
                f"min={histogram.minimum:.6g} max={histogram.maximum:.6g}")
        return "\n".join(lines) if lines else "(no metrics)"
