"""The sanctioned wall-clock boundary of the package.

Every wall-clock read in the package flows through this module. The
deep determinism analyzer (``repro lint --deep``, rule ``DET005``)
enforces the boundary in both directions: raw ``time.*`` /
``datetime`` calls anywhere *outside* this module are flagged, and
values produced *by* this module are treated as determinism taint that
must never reach result arrays, checkpoint fingerprints or journal
payloads — timestamps may only ever describe a run (trace spans,
elapsed-seconds reporting), never parameterize it.

Tests inject a :class:`FakeClock` into the tracer to make span
timings deterministic without monkeypatching the time module.
"""

from __future__ import annotations

import threading
import time as _time


class Clock:
    """The real wall clock.

    ``monotonic`` is the timing clock (``perf_counter``: monotonic,
    high resolution, process-relative); ``walltime`` is the epoch
    clock for human-facing annotations only.
    """

    def monotonic(self) -> float:
        return _time.perf_counter()

    def walltime(self) -> float:
        return _time.time()


class FakeClock(Clock):
    """Deterministic clock for tests: each read advances a fixed tick."""

    def __init__(self, start: float = 0.0, tick: float = 1.0) -> None:
        self.now = float(start)
        self.tick = float(tick)
        # A tracer's clock is read from the loop and worker threads at
        # once; the read-advance pair must be atomic to stay
        # deterministic.
        self._lock = threading.Lock()

    def monotonic(self) -> float:
        with self._lock:
            value = self.now
            self.now += self.tick
            return value

    def walltime(self) -> float:
        return self.monotonic()


#: The process-wide default clock (the tracer's fallback).
REAL_CLOCK = Clock()


def monotonic() -> float:
    """Monotonic seconds for elapsed-time measurement."""
    return REAL_CLOCK.monotonic()


def walltime() -> float:
    """Epoch seconds for human-facing annotations."""
    return REAL_CLOCK.walltime()


def sleep(seconds: float) -> None:
    """Blocking sleep (``repro top``'s scrape pacing lives here so the
    rest of the package stays free of raw ``time.*`` calls)."""
    _time.sleep(seconds)
