"""Trace exporters: JSONL round-trip, Chrome trace_event, text summary.

The Chrome-trace exporter writes the ``trace_event`` JSON format that
``chrome://tracing`` and Perfetto both load: complete (``"ph": "X"``)
events with microsecond timestamps normalized to the earliest span, so
a trace recorded anywhere renders starting at t=0.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import TelemetryError
from .metrics import Histogram
from .spans import CATEGORIES, Span, nesting_allowed


def write_trace_jsonl(spans, path: str | Path) -> Path:
    """Write spans as one JSON object per line (the ``JsonlSink``
    format)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
    return path


def read_trace_jsonl(path: str | Path) -> list[Span]:
    """Load a JSONL trace file back into :class:`Span` records."""
    path = Path(path)
    spans = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as error:
                raise TelemetryError(
                    f"{path}:{lineno}: not valid JSON: {error}") from None
            spans.append(Span.from_dict(data))
    return spans


def validate_trace(spans, check_containment: bool = False) -> list[str]:
    """Structural validation of a span collection; returns problems.

    Checks duplicate span ids, parent references that never appear in
    the trace, unknown categories, and category-rank violations
    between child and parent. Time containment (child interval inside
    parent interval) is opt-in: monotonic timestamps are
    process-relative, so a trace assembled across a crash/resume mixes
    epochs and containment is only meaningful for single-run traces.
    """
    problems = []
    by_id: dict[str, Span] = {}
    for span in spans:
        if span.span_id in by_id:
            problems.append(f"duplicate span id {span.span_id!r}")
        by_id[span.span_id] = span
        if span.category not in CATEGORIES:
            problems.append(
                f"span {span.span_id!r} has unknown category "
                f"{span.category!r}")
    for span in spans:
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(
                f"span {span.span_id!r} references missing parent "
                f"{span.parent_id!r}")
            continue
        if (span.category in CATEGORIES and parent.category in CATEGORIES
                and not nesting_allowed(span.category, parent.category)):
            problems.append(
                f"span {span.span_id!r} ({span.category}) illegally "
                f"nests under {parent.span_id!r} ({parent.category})")
        if check_containment:
            tolerance = 1.0e-9
            child_end = span.t_start + span.duration
            parent_end = parent.t_start + parent.duration
            if (span.t_start < parent.t_start - tolerance
                    or child_end > parent_end + tolerance):
                problems.append(
                    f"span {span.span_id!r} interval "
                    f"[{span.t_start:.6f}, {child_end:.6f}] escapes "
                    f"parent {parent.span_id!r} "
                    f"[{parent.t_start:.6f}, {parent_end:.6f}]")
    return problems


def to_chrome_trace(spans) -> dict:
    """Convert spans to a ``trace_event`` document (Perfetto-loadable)."""
    spans = list(spans)
    origin = min((span.t_start for span in spans), default=0.0)
    events = []
    for span in spans:
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": (span.t_start - origin) * 1.0e6,
            "dur": span.duration * 1.0e6,
            "pid": 1,
            "tid": 1,
            "args": {"id": span.span_id, "parent": span.parent_id,
                     **span.attrs},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(spans), indent=2,
                               sort_keys=True) + "\n", encoding="utf-8")
    return path


def summarize_outcomes(spans) -> dict:
    """Aggregate degradation/termination markers out of span attrs.

    Campaign roots carry ``degraded``/``deadline_hit``/``cancelled``
    flags and a ``quarantined`` row count; service ``job`` spans carry
    their terminal ``state``. Both are invisible in duration tables,
    so the summary surfaces them explicitly: a trace whose campaigns
    silently degraded to serial should say so.
    """
    outcome = {"campaigns": 0, "degraded": 0, "deadline_hit": 0,
               "cancelled": 0, "quarantined_rows": 0,
               "job_states": {}}
    for span in spans:
        if span.category == "campaign":
            outcome["campaigns"] += 1
            for flag in ("degraded", "deadline_hit", "cancelled"):
                if span.attrs.get(flag):
                    outcome[flag] += 1
            outcome["quarantined_rows"] += int(
                span.attrs.get("quarantined", 0))
        elif span.category == "job":
            state = str(span.attrs.get("state", "unknown"))
            states = outcome["job_states"]
            states[state] = states.get(state, 0) + 1
    outcome["job_states"] = dict(sorted(outcome["job_states"].items()))
    return outcome


def _duration_quantiles(durations) -> dict:
    """p50/p95/p99 of a duration list (seconds) via the power-of-two
    histogram at microsecond resolution — the same estimator the live
    hub uses, so post-hoc and live quantiles agree."""
    histogram = Histogram()
    for duration in durations:
        histogram.observe(max(0.0, float(duration)) * 1.0e6)
    if histogram.n == 0:
        return {"p50": None, "p95": None, "p99": None}
    return {f"p{int(q * 100)}": histogram.quantile(q) * 1.0e-6
            for q in (0.50, 0.95, 0.99)}


def summarize_tenants(spans) -> dict:
    """Per-tenant rollup out of service ``job`` spans.

    For each tenant: terminal-state counts, and wait-time / latency
    quantiles (the job span's ``wait_seconds`` attribute and its
    duration). Empty when the trace has no job spans — campaign-only
    traces produce no tenant block.
    """
    tenants: dict[str, dict] = {}
    for span in spans:
        if span.category != "job":
            continue
        tenant = str(span.attrs.get("tenant", "default"))
        entry = tenants.setdefault(tenant, {"jobs": {}, "durations": [],
                                            "waits": []})
        state = str(span.attrs.get("state", "unknown"))
        entry["jobs"][state] = entry["jobs"].get(state, 0) + 1
        entry["durations"].append(span.duration)
        wait = span.attrs.get("wait_seconds")
        if wait is not None:
            entry["waits"].append(float(wait))
    summary = {}
    for tenant in sorted(tenants):
        entry = tenants[tenant]
        summary[tenant] = {
            "jobs": dict(sorted(entry["jobs"].items())),
            "latency": _duration_quantiles(entry["durations"]),
            "wait": _duration_quantiles(entry["waits"]),
        }
    return summary


def render_summary(spans) -> str:
    """Text summary: per-category totals with duration quantiles,
    outcome flags, per-tenant rollups, slowest spans."""
    spans = list(spans)
    if not spans:
        return "(empty trace)"
    lines = [f"{len(spans)} spans"]
    lines.append(f"{'category':<12} {'count':>7} {'total s':>12} "
                 f"{'mean s':>12} {'p50 s':>10} {'p95 s':>10} "
                 f"{'p99 s':>10}")
    for category in CATEGORIES:
        members = [span for span in spans if span.category == category]
        if not members:
            continue
        total = sum(span.duration for span in members)
        quantiles = _duration_quantiles(
            [span.duration for span in members])
        lines.append(f"{category:<12} {len(members):>7} {total:>12.6f} "
                     f"{total / len(members):>12.6f} "
                     f"{quantiles['p50']:>10.6f} "
                     f"{quantiles['p95']:>10.6f} "
                     f"{quantiles['p99']:>10.6f}")
    outcome = summarize_outcomes(spans)
    if outcome["campaigns"] or outcome["job_states"]:
        lines.append("")
        lines.append("outcomes:")
        if outcome["campaigns"]:
            lines.append(
                f"  campaigns: {outcome['campaigns']} "
                f"({outcome['degraded']} degraded, "
                f"{outcome['deadline_hit']} deadline-hit, "
                f"{outcome['cancelled']} cancelled, "
                f"{outcome['quarantined_rows']} quarantined row(s))")
        for state, count in outcome["job_states"].items():
            lines.append(f"  jobs {state}: {count}")
    tenants = summarize_tenants(spans)
    if tenants:
        lines.append("")
        lines.append("tenants:")
        for tenant, entry in tenants.items():
            jobs = ", ".join(f"{count} {state}" for state, count
                             in entry["jobs"].items())
            lines.append(f"  {tenant}: {jobs}")
            for kind in ("wait", "latency"):
                quantiles = entry[kind]
                if quantiles["p50"] is None:
                    continue
                lines.append(
                    f"    {kind}: p50={quantiles['p50']:.6f}s "
                    f"p95={quantiles['p95']:.6f}s "
                    f"p99={quantiles['p99']:.6f}s")
    lines.append("")
    lines.append("slowest spans:")
    slowest = sorted(spans, key=lambda span: span.duration,
                     reverse=True)[:10]
    for span in slowest:
        lines.append(f"  {span.duration:>10.6f}s  {span.span_id}")
    return "\n".join(lines)
