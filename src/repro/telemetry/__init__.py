"""Zero-dependency tracing and metrics for the campaign stack.

Three layers:

* :mod:`repro.telemetry.clock` — the sanctioned wall-clock boundary
  (the only module in the package allowed to call ``time.*``; enforced
  by deep-lint rule DET005).
* :class:`Tracer` / :class:`Span` — hierarchical spans
  (``service > job > campaign > worker > chunk > launch > rung >
  phase``) with structural, resume-stable ids; :data:`NULL_TRACER` is
  the <2%-overhead disabled mode.
* :class:`MetricsRegistry` — timestamp-free counters/gauges/histograms
  embedded in :class:`~repro.gpu.engine.EngineReport` and campaign
  checkpoints.

Exporters produce JSONL, Chrome ``trace_event`` (Perfetto-loadable)
and text summaries; the ``repro trace`` CLI wraps them.

The *live* half (this PR's additions) streams instead of exporting:
:class:`MetricsHub` aggregates span closes and registry snapshots
into sliding windows, :func:`render_prometheus` exposes them (and any
registry) in Prometheus text format, :class:`SLOTracker` burns
per-tenant error budgets, and :mod:`~repro.telemetry.calibration`
closes the perfmodel prediction loop.
"""

from . import clock
from .calibration import (
    BucketCalibration,
    CalibrationReport,
    CalibrationTable,
    LaunchCost,
    calibrate_workload,
)
from .export import (
    read_trace_jsonl,
    render_summary,
    summarize_outcomes,
    summarize_tenants,
    to_chrome_trace,
    validate_trace,
    write_chrome_trace,
    write_trace_jsonl,
)
from .live import MetricsHub, Subscription, phase_family
from .metrics import Histogram, MetricsRegistry
from .prometheus import (
    labeled,
    parse_prometheus_text,
    render_prometheus,
    split_labels,
)
from .slo import SLOTracker, TenantSLO
from .spans import CATEGORIES, Span, nesting_allowed
from .tracer import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    SpanHandle,
    Tracer,
    as_tracer,
)

__all__ = [
    "BucketCalibration",
    "CATEGORIES",
    "CalibrationReport",
    "CalibrationTable",
    "Histogram",
    "JsonlSink",
    "LaunchCost",
    "MetricsHub",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SLOTracker",
    "Span",
    "SpanHandle",
    "Subscription",
    "TenantSLO",
    "Tracer",
    "as_tracer",
    "calibrate_workload",
    "clock",
    "labeled",
    "nesting_allowed",
    "parse_prometheus_text",
    "phase_family",
    "read_trace_jsonl",
    "render_prometheus",
    "render_summary",
    "split_labels",
    "summarize_outcomes",
    "summarize_tenants",
    "to_chrome_trace",
    "validate_trace",
    "write_chrome_trace",
    "write_trace_jsonl",
]
