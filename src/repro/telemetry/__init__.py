"""Zero-dependency tracing and metrics for the campaign stack.

Three layers:

* :mod:`repro.telemetry.clock` — the sanctioned wall-clock boundary
  (the only module in the package allowed to call ``time.*``; enforced
  by deep-lint rule DET005).
* :class:`Tracer` / :class:`Span` — hierarchical spans
  (``service > job > campaign > worker > chunk > launch > rung >
  phase``) with structural, resume-stable ids; :data:`NULL_TRACER` is
  the <2%-overhead disabled mode.
* :class:`MetricsRegistry` — timestamp-free counters/gauges/histograms
  embedded in :class:`~repro.gpu.engine.EngineReport` and campaign
  checkpoints.

Exporters produce JSONL, Chrome ``trace_event`` (Perfetto-loadable)
and text summaries; the ``repro trace`` CLI wraps them.
"""

from . import clock
from .export import (
    read_trace_jsonl,
    render_summary,
    summarize_outcomes,
    to_chrome_trace,
    validate_trace,
    write_chrome_trace,
    write_trace_jsonl,
)
from .metrics import Histogram, MetricsRegistry
from .spans import CATEGORIES, Span, nesting_allowed
from .tracer import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    SpanHandle,
    Tracer,
    as_tracer,
)

__all__ = [
    "CATEGORIES",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanHandle",
    "Tracer",
    "as_tracer",
    "clock",
    "nesting_allowed",
    "read_trace_jsonl",
    "render_summary",
    "summarize_outcomes",
    "to_chrome_trace",
    "validate_trace",
    "write_chrome_trace",
    "write_trace_jsonl",
]
