"""Perfmodel calibration: predicted vs observed launch costs.

The admission controller and the router make decisions from
:mod:`repro.gpu.perfmodel` *predictions* (device seconds, working-set
doubles) that nothing ever checks against reality. This module closes
the loop: every launch records a :class:`LaunchCost` — the modeled
cost next to the observed one — and a :class:`CalibrationTable`
accumulates them into ``solver x batch-width x model-size`` buckets
(powers of two, matching the registry histograms). ``fit()`` produces
a :class:`CalibrationReport` of per-bucket multiplicative correction
factors with drift detection; the report then plugs back in as an
opt-in hook:

* admission — :meth:`CalibrationReport.calibrated_doubles` rescales
  the working-set estimate behind ``WorkingSetExceeded``;
* routing — :meth:`CalibrationReport.preferred_stiff_method` picks
  the implicit rung (Radau IIA vs BDF) by measured per-row cost;
* estimates — :meth:`CalibrationReport.calibrated_seconds` corrects
  any perfmodel time prediction.

Records live on :class:`~repro.gpu.engine.EngineReport` (wall-clock
values are **not** registry material — rule DET005 keeps checkpoints
timestamp-free), and the same numbers ride launch-span attributes
(``predicted_ms``), so a live :class:`CalibrationTable` can also be
fed from the trace stream via :meth:`CalibrationTable.ingest_span`.
"""

from __future__ import annotations

import json
import math
import statistics
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import TelemetryError

SCHEMA_VERSION = 1

#: Per-bucket sample cap: the first N launches of a bucket are kept
#: (deterministic under replay), later ones only bump the count.
MAX_SAMPLES_PER_BUCKET = 512

#: Implicit methods the router can choose between when calibrated.
_STIFF_METHODS = ("radau5", "bdf")


def bucket_exponent(value: int) -> int:
    """Power-of-two bucket of a width/size (same rule as Histogram)."""
    return max(0, int(value)).bit_length()


@dataclass(frozen=True)
class LaunchCost:
    """Predicted vs observed cost of one engine launch."""

    method: str
    rows: int
    n_species: int
    n_reactions: int
    predicted_seconds: float
    observed_seconds: float
    predicted_doubles: int
    actual_doubles: int

    @property
    def time_ratio(self) -> float:
        """observed/predicted seconds (1.0 = perfect model)."""
        if self.predicted_seconds <= 0.0:
            return 1.0
        return self.observed_seconds / self.predicted_seconds

    @property
    def ws_ratio(self) -> float:
        """actual/predicted working-set doubles."""
        if self.predicted_doubles <= 0:
            return 1.0
        return self.actual_doubles / self.predicted_doubles

    def to_dict(self) -> dict:
        return {"method": self.method, "rows": int(self.rows),
                "n_species": int(self.n_species),
                "n_reactions": int(self.n_reactions),
                "predicted_seconds": float(self.predicted_seconds),
                "observed_seconds": float(self.observed_seconds),
                "predicted_doubles": int(self.predicted_doubles),
                "actual_doubles": int(self.actual_doubles)}

    @classmethod
    def from_dict(cls, data: dict) -> "LaunchCost":
        return cls(method=str(data["method"]), rows=int(data["rows"]),
                   n_species=int(data["n_species"]),
                   n_reactions=int(data["n_reactions"]),
                   predicted_seconds=float(data["predicted_seconds"]),
                   observed_seconds=float(data["observed_seconds"]),
                   predicted_doubles=int(data["predicted_doubles"]),
                   actual_doubles=int(data["actual_doubles"]))


@dataclass(frozen=True)
class BucketCalibration:
    """Fitted correction factors of one (method, width, size) bucket."""

    method: str
    width_exponent: int
    size_exponent: int
    n: int
    time_factor: float
    ws_factor: float
    seconds_per_row: float
    error_before: float
    error_after: float
    drifting: bool = False

    def to_dict(self) -> dict:
        return {"method": self.method,
                "width_exponent": int(self.width_exponent),
                "size_exponent": int(self.size_exponent),
                "n": int(self.n),
                "time_factor": float(self.time_factor),
                "ws_factor": float(self.ws_factor),
                "seconds_per_row": float(self.seconds_per_row),
                "error_before": float(self.error_before),
                "error_after": float(self.error_after),
                "drifting": bool(self.drifting)}

    @classmethod
    def from_dict(cls, data: dict) -> "BucketCalibration":
        return cls(method=str(data["method"]),
                   width_exponent=int(data["width_exponent"]),
                   size_exponent=int(data["size_exponent"]),
                   n=int(data["n"]),
                   time_factor=float(data["time_factor"]),
                   ws_factor=float(data["ws_factor"]),
                   seconds_per_row=float(data.get("seconds_per_row", 0.0)),
                   error_before=float(data["error_before"]),
                   error_after=float(data["error_after"]),
                   drifting=bool(data.get("drifting", False)))


class CalibrationTable:
    """Bucketed accumulator of :class:`LaunchCost` records.

    Buckets are keyed ``(method, width_exponent, size_exponent)``; each
    keeps up to :data:`MAX_SAMPLES_PER_BUCKET` records in arrival
    order (the order is what drift detection splits in half). The
    table is not thread-safe — each ingestion site owns its own and
    fitted reports are immutable.
    """

    def __init__(self) -> None:
        self._buckets: dict[tuple, list] = {}
        self.n_records = 0

    def record(self, cost: LaunchCost) -> None:
        key = (cost.method, bucket_exponent(cost.rows),
               bucket_exponent(cost.n_species))
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = []
        if len(bucket) < MAX_SAMPLES_PER_BUCKET:
            bucket.append(cost)
        self.n_records += 1

    def ingest_report(self, report) -> int:
        """Absorb an engine report's ``launch_costs``; returns how
        many records were added."""
        costs = getattr(report, "launch_costs", None) or ()
        for cost in costs:
            self.record(cost)
        return len(costs)

    def ingest_span(self, span) -> bool:
        """Absorb one ``launch`` span carrying ``predicted_ms``.

        This is the trace-stream path: a hub subscriber (or a post-hoc
        pass over a trace file) can rebuild the table without engine
        reports in hand.
        """
        if getattr(span, "category", None) != "launch":
            return False
        attrs = span.attrs
        if "predicted_ms" not in attrs:
            return False
        self.record(LaunchCost(
            method=str(attrs.get("method", "auto")),
            rows=int(attrs.get("rows", 0)),
            n_species=int(attrs.get("species", 0)),
            n_reactions=int(attrs.get("reactions", 0)),
            predicted_seconds=float(attrs["predicted_ms"]) * 1.0e-3,
            observed_seconds=float(span.duration),
            predicted_doubles=int(attrs.get("predicted_doubles", 0)),
            actual_doubles=int(attrs.get("actual_doubles", 0))))
        return True

    def records(self) -> list:
        return [cost for key in sorted(self._buckets)
                for cost in self._buckets[key]]

    def fit(self, drift_ratio: float = 2.0) -> "CalibrationReport":
        """Fit per-bucket correction factors.

        ``time_factor``/``ws_factor`` are medians of the per-launch
        observed/predicted ratios (robust against stragglers);
        ``error_before``/``error_after`` are median absolute log
        errors without and with the correction. A bucket with >= 8
        samples whose first-half and second-half median ratios differ
        by more than ``drift_ratio`` is flagged ``drifting`` — the
        workload has moved and the fit should be redone.
        """
        buckets = []
        time_ratios_all: list[float] = []
        ws_ratios_all: list[float] = []
        for key in sorted(self._buckets):
            method, width_exp, size_exp = key
            samples = self._buckets[key]
            time_ratios = [cost.time_ratio for cost in samples]
            ws_ratios = [cost.ws_ratio for cost in samples]
            time_ratios_all.extend(time_ratios)
            ws_ratios_all.extend(ws_ratios)
            time_factor = statistics.median(time_ratios)
            ws_factor = statistics.median(ws_ratios)
            per_row = statistics.median(
                [cost.observed_seconds / max(1, cost.rows)
                 for cost in samples])
            error_before = statistics.median(
                [abs(math.log(max(ratio, 1e-300)))
                 for ratio in time_ratios])
            error_after = statistics.median(
                [abs(math.log(max(ratio / time_factor, 1e-300)))
                 for ratio in time_ratios])
            buckets.append(BucketCalibration(
                method=method, width_exponent=width_exp,
                size_exponent=size_exp, n=len(samples),
                time_factor=time_factor, ws_factor=ws_factor,
                seconds_per_row=per_row,
                error_before=error_before, error_after=error_after,
                drifting=_drifts(time_ratios, drift_ratio)))
        return CalibrationReport(
            buckets=buckets,
            global_time_factor=(statistics.median(time_ratios_all)
                                if time_ratios_all else 1.0),
            global_ws_factor=(statistics.median(ws_ratios_all)
                              if ws_ratios_all else 1.0),
            n_records=self.n_records)


def _drifts(ratios: list, drift_ratio: float) -> bool:
    if len(ratios) < 8:
        return False
    half = len(ratios) // 2
    first = statistics.median(ratios[:half])
    second = statistics.median(ratios[half:])
    if first <= 0.0 or second <= 0.0:
        return True
    spread = max(first, second) / min(first, second)
    return spread > drift_ratio


@dataclass(frozen=True)
class CalibrationReport:
    """Immutable fitted calibration: the opt-in correction hooks."""

    buckets: tuple = ()
    global_time_factor: float = 1.0
    global_ws_factor: float = 1.0
    n_records: int = 0
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "buckets", tuple(self.buckets))

    # -- lookup --------------------------------------------------------

    def lookup(self, method: str, rows: int,
               n_species: int) -> BucketCalibration | None:
        """Best bucket for a workload: exact, else the same-method
        bucket at the smallest exponent distance."""
        width_exp = bucket_exponent(rows)
        size_exp = bucket_exponent(n_species)
        best = None
        best_distance = None
        for bucket in self.buckets:
            if bucket.method != method:
                continue
            distance = (abs(bucket.width_exponent - width_exp)
                        + abs(bucket.size_exponent - size_exp))
            if best_distance is None or distance < best_distance:
                best, best_distance = bucket, distance
        return best

    def time_correction(self, method: str, rows: int,
                        n_species: int) -> float:
        bucket = self.lookup(method, rows, n_species)
        return bucket.time_factor if bucket is not None \
            else self.global_time_factor

    def ws_correction(self, method: str, rows: int,
                      n_species: int) -> float:
        bucket = self.lookup(method, rows, n_species)
        return bucket.ws_factor if bucket is not None \
            else self.global_ws_factor

    def calibrated_seconds(self, predicted_seconds: float, method: str,
                           rows: int, n_species: int) -> float:
        """Correct a perfmodel time prediction."""
        return predicted_seconds * self.time_correction(method, rows,
                                                        n_species)

    def calibrated_doubles(self, predicted_doubles: int, method: str,
                           rows: int, n_species: int) -> int:
        """Correct a working-set prediction (admission hook)."""
        corrected = predicted_doubles * self.ws_correction(method, rows,
                                                           n_species)
        return max(1, int(round(corrected)))

    def preferred_stiff_method(self, rows: int,
                               n_species: int) -> str | None:
        """Cheapest implicit rung by measured per-row seconds.

        Returns ``None`` unless *both* implicit methods have measured
        buckets — no evidence, no deviation from the Radau default.
        """
        costs = {}
        for method in _STIFF_METHODS:
            bucket = self.lookup(method, rows, n_species)
            if bucket is not None and bucket.seconds_per_row > 0.0:
                costs[method] = bucket.seconds_per_row
        if len(costs) < len(_STIFF_METHODS):
            return None
        return min(sorted(costs), key=lambda method: costs[method])

    # -- drift / quality -----------------------------------------------

    @property
    def drifting(self) -> bool:
        return any(bucket.drifting for bucket in self.buckets)

    def median_error(self, calibrated: bool = False) -> float:
        """Record-weighted median absolute log error across buckets."""
        values = []
        for bucket in self.buckets:
            error = bucket.error_after if calibrated \
                else bucket.error_before
            values.extend([error] * bucket.n)
        return statistics.median(values) if values else 0.0

    def error_reduction(self) -> float:
        """How many times smaller the median error is after
        calibration (>= 2.0 is the acceptance bar)."""
        after = self.median_error(calibrated=True)
        before = self.median_error(calibrated=False)
        if after <= 0.0:
            return float("inf") if before > 0.0 else 1.0
        return before / after

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {"schema_version": int(self.schema_version),
                "n_records": int(self.n_records),
                "global_time_factor": float(self.global_time_factor),
                "global_ws_factor": float(self.global_ws_factor),
                "buckets": [bucket.to_dict() for bucket in self.buckets]}

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationReport":
        return cls(
            buckets=tuple(BucketCalibration.from_dict(entry)
                          for entry in data.get("buckets", [])),
            global_time_factor=float(data.get("global_time_factor", 1.0)),
            global_ws_factor=float(data.get("global_ws_factor", 1.0)),
            n_records=int(data.get("n_records", 0)),
            schema_version=int(data.get("schema_version",
                                        SCHEMA_VERSION)))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n",
                        encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CalibrationReport":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise TelemetryError(
                f"cannot load calibration report {path}: {error}") \
                from None
        return cls.from_dict(data)

    def render(self) -> str:
        """Human-readable table, one bucket per line."""
        lines = [f"calibration: {self.n_records} launch(es), "
                 f"{len(self.buckets)} bucket(s), "
                 f"global time x{self.global_time_factor:.4g}, "
                 f"working set x{self.global_ws_factor:.4g}"]
        lines.append(
            f"median |log error|: {self.median_error():.4g} raw -> "
            f"{self.median_error(calibrated=True):.4g} calibrated "
            f"({self.error_reduction():.3g}x reduction)"
            + (" [DRIFTING]" if self.drifting else ""))
        header = (f"{'method':<8} {'width':>6} {'size':>6} {'n':>5} "
                  f"{'time x':>10} {'ws x':>8} {'s/row':>10} "
                  f"{'drift':>6}")
        lines.append(header)
        for bucket in self.buckets:
            lines.append(
                f"{bucket.method:<8} {2 ** bucket.width_exponent:>6} "
                f"{2 ** bucket.size_exponent:>6} {bucket.n:>5} "
                f"{bucket.time_factor:>10.4g} {bucket.ws_factor:>8.4g} "
                f"{bucket.seconds_per_row:>10.3g} "
                f"{'yes' if bucket.drifting else 'no':>6}")
        return "\n".join(lines)


def calibrate_workload(model, t_span=(0.0, 2.0), t_eval=None,
                       widths=(8, 32), repeats: int = 2,
                       method: str = "auto", seed: int = 0,
                       options=None, device=None,
                       table: CalibrationTable | None = None
                       ) -> CalibrationTable:
    """Run a synthetic calibration workload and collect launch costs.

    Runs ``repeats`` batched simulations per width (each width is one
    launch, so buckets across the width axis fill deterministically)
    and ingests every engine report. This is what ``repro calibrate``
    drives; tests reuse it with small widths.
    """
    # Engine import stays function-local: telemetry is a lower layer
    # than gpu and must stay importable without it.
    import numpy

    from ..gpu.engine import BatchSimulator
    from ..model import perturbed_batch

    table = CalibrationTable() if table is None else table
    for width in widths:
        batch = perturbed_batch(model.nominal_parameterization(),
                                int(width),
                                numpy.random.default_rng(seed))
        for _ in range(max(1, int(repeats))):
            kwargs = {}
            if options is not None:
                kwargs["options"] = options
            if device is not None:
                kwargs["device"] = device
            simulator = BatchSimulator(model, method=method,
                                       max_batch_per_launch=int(width),
                                       **kwargs)
            simulator.simulate(t_span, t_eval, batch)
            table.ingest_report(simulator.last_report)
    return table
