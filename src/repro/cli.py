"""Command-line interface: the "black-box simulator" entry point.

The original tool is driven from the command line on BioSimWare-style
model folders; this module reproduces that UX::

    python -m repro info      MODEL
    python -m repro simulate  MODEL --t-end 10 --points 51 --out dyn.csv
    python -m repro lint      MODEL --format json --fail-on warning
    python -m repro lint      --self
    python -m repro convert   SRC DST
    python -m repro generate  DST --species 32 --reactions 32 --seed 0

``MODEL`` is a model folder or an SBML-subset ``.xml`` document. When a
folder ships ``cs_vector`` / ``MX_0`` (a sweep batch), ``simulate``
runs the whole batch in one launch; otherwise it runs the nominal
parameterization.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .core import simulate as run_simulation
from .errors import LintGateError, ReproError
from .io import (read_batch, read_model, read_sbml, read_t_vector,
                 sbml_to_biosimware, write_model, write_sbml)
from .model import ReactionBasedModel, perturbed_batch
from .solvers import SolverOptions
from .synth import SyntheticModelSpec, generate_model


def _load_model(path: Path) -> ReactionBasedModel:
    if path.is_dir():
        return read_model(path)
    if path.suffix.lower() in (".xml", ".sbml"):
        return read_sbml(path)
    raise ReproError(f"{path} is neither a model folder nor an SBML file")


def _command_info(args) -> int:
    model = _load_model(Path(args.model))
    print(model.summary())
    laws = model.conservation_law_basis()
    print(f"\nconservation laws : {laws.shape[0]}")
    print(f"max reaction order: {model.max_order()}")
    return 0


def _command_simulate(args) -> int:
    path = Path(args.model)
    model = _load_model(path)
    parameters = None
    if path.is_dir():
        try:
            parameters = read_batch(path)
        except ReproError:
            parameters = None
    if parameters is None and args.perturb > 0:
        parameters = perturbed_batch(model.nominal_parameterization(),
                                     args.perturb,
                                     np.random.default_rng(args.seed))

    if args.t_grid and path.is_dir():
        t_eval = read_t_vector(path)
        t_span = (float(t_eval[0]) if t_eval[0] <= 0 else 0.0,
                  float(t_eval[-1]))
    else:
        t_eval = np.linspace(0.0, args.t_end, args.points)
        t_span = (0.0, args.t_end)

    options = SolverOptions(rtol=args.rtol, atol=args.atol,
                            max_steps=args.max_steps)
    result = run_simulation(model, t_span, t_eval, parameters,
                            engine=args.engine, options=options)
    statuses = result.statuses()
    print(f"simulated {result.batch_size} parameterization(s) on engine "
          f"{args.engine!r} in {result.elapsed_seconds:.3f} s")
    print(f"statuses: { {s: statuses.count(s) for s in set(statuses)} }")

    if args.out:
        _write_csv(Path(args.out), result)
        print(f"wrote dynamics to {args.out}")
    return 0 if result.all_success else 1


def _write_csv(path: Path, result) -> None:
    header = ["simulation", "time", *result.species_names]
    with path.open("w") as handle:
        handle.write(",".join(header) + "\n")
        for index in range(result.batch_size):
            for row, t in enumerate(result.t):
                values = result.y[index, row, :]
                rendered = ",".join(f"{v:.10g}" for v in values)
                handle.write(f"{index},{t:.10g},{rendered}\n")


def _command_analyze(args) -> int:
    from .core import analyze_model
    model = _load_model(Path(args.model))
    report = analyze_model(model, probe_horizon=args.horizon,
                           options=SolverOptions(max_steps=args.max_steps))
    print(report.render())
    return 0


def _command_lint(args) -> int:
    from .lint import (iter_rules, lint_conc, lint_deep, lint_file,
                       lint_gate, lint_kernels, lint_model, lint_shapes,
                       render_rule_table, write_baseline)
    import json as json_module

    if args.list_rules:
        if args.format == "json":
            print(json_module.dumps(
                [rule.to_dict() for rule in iter_rules()], indent=2))
        else:
            print(render_rule_table())
        return 0

    if args.deep or args.shapes or args.conc:
        if args.conc:
            analyzer = lint_conc
        elif args.shapes:
            analyzer = lint_shapes
        else:
            analyzer = lint_deep
        paths, root = _deep_subject(args)
        if args.write_baseline:
            # Analyze without subtracting, then persist what's left
            # after waivers as the new accepted set.
            report = analyzer(
                paths, root=root,
                baseline_path=Path("/nonexistent-baseline"))
            target = args.baseline or _default_baseline_path(
                shapes=args.shapes, conc=args.conc)
            count = write_baseline(report, target)
            print(f"wrote {count} baseline entr"
                  f"{'y' if count == 1 else 'ies'} to {target}")
            return 0
        report = analyzer(paths, root=root,
                          baseline_path=args.baseline)
    elif args.self:
        report = lint_kernels()
    elif args.model is None:
        raise ReproError("lint needs a MODEL argument, --self, --deep, "
                         "--shapes, --conc or --list-rules")
    else:
        path = Path(args.model)
        if path.suffix == ".py":
            report = lint_file(path)
        elif args.gate:
            report = lint_gate(_load_model(path), fail_on=args.fail_on)
        else:
            report = lint_model(_load_model(path))

    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return 1 if report.exceeds(args.fail_on) else 0


def _deep_subject(args) -> tuple[list[Path] | None, Path | None]:
    """(files, report root) of a deep/shapes analysis; (None, None)
    means the installed package."""
    if args.model is None:
        return None, None
    path = Path(args.model)
    if path.is_dir():
        files = sorted(path.rglob("*.py"))
        if not files:
            raise ReproError(f"no .py files under {path}")
        return files, _package_root(path)
    if path.suffix == ".py":
        return [path], path.parent
    raise ReproError(
        f"--deep/--shapes/--conc analyze Python sources, not {path}")


def _package_root(path: Path) -> Path:
    """Report root of a directory subject: when the directory is a
    package (sub)tree, climb to the outermost package so findings keep
    their in-package relative paths (``gpu/...``) and module globs
    still match when only a subpackage is analyzed."""
    root = path.resolve()
    while (root / "__init__.py").exists() \
            and (root.parent / "__init__.py").exists():
        root = root.parent
    return root


def _default_baseline_path(shapes: bool = False,
                           conc: bool = False) -> Path:
    from .lint import (DEFAULT_BASELINE, DEFAULT_CONC_BASELINE,
                       DEFAULT_SHAPES_BASELINE)
    if conc:
        return DEFAULT_CONC_BASELINE
    return DEFAULT_SHAPES_BASELINE if shapes else DEFAULT_BASELINE


def _command_convert(args) -> int:
    source = Path(args.source)
    destination = Path(args.destination)
    if source.is_dir():
        write_sbml(read_model(source), destination)
        print(f"converted folder {source} -> SBML {destination}")
    elif destination.suffix.lower() in (".xml", ".sbml"):
        write_sbml(_load_model(source), destination)
        print(f"converted {source} -> SBML {destination}")
    else:
        sbml_to_biosimware(source, destination)
        print(f"converted SBML {source} -> folder {destination}")
    return 0


def _command_generate(args) -> int:
    spec = SyntheticModelSpec(args.species, args.reactions, args.seed)
    model = generate_model(spec)
    batch = None
    if args.batch > 0:
        batch = perturbed_batch(model.nominal_parameterization(),
                                args.batch, np.random.default_rng(args.seed))
    destination = Path(args.destination)
    write_model(model, destination, batch=batch)
    print(f"generated {model.name} (N={model.n_species}, "
          f"M={model.n_reactions}) into {destination}"
          + (f" with a {args.batch}-row sweep batch" if batch else ""))
    return 0


def _command_trace_record(args) -> int:
    from .resilience import CampaignConfig, run_campaign
    from .telemetry import render_summary, read_trace_jsonl

    path = Path(args.model)
    model = _load_model(path)
    parameters = None
    if path.is_dir():
        try:
            parameters = read_batch(path)
        except ReproError:
            parameters = None
    if parameters is None:
        parameters = perturbed_batch(model.nominal_parameterization(),
                                     args.batch,
                                     np.random.default_rng(args.seed))

    out = Path(args.out)
    if args.checkpoint is None and out.exists():
        # A fresh (non-resumable) recording starts a fresh trace; only
        # checkpointed campaigns append across runs.
        out.unlink()
    config = CampaignConfig(chunk_size=args.chunk_size,
                            checkpoint_path=args.checkpoint,
                            workers=args.workers)
    t_eval = np.linspace(0.0, args.t_end, args.points)
    campaign = run_campaign(model, (0.0, args.t_end), t_eval, parameters,
                            engine=args.engine, config=config,
                            telemetry=out)
    print(campaign.summary())
    print(f"wrote trace to {out}")
    print()
    print(render_summary(read_trace_jsonl(out)))
    if campaign.metrics:
        print()
        print(campaign.metrics.render())
    return 0 if not campaign.incomplete else 1


def _command_trace_summarize(args) -> int:
    from .telemetry import read_trace_jsonl, render_summary, validate_trace

    spans = read_trace_jsonl(Path(args.trace))
    problems = validate_trace(spans)
    print(render_summary(spans))
    if problems:
        print()
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    return 0


def _command_trace_export(args) -> int:
    from .telemetry import read_trace_jsonl, write_chrome_trace

    spans = read_trace_jsonl(Path(args.trace))
    out = Path(args.out)
    write_chrome_trace(spans, out)
    print(f"wrote {len(spans)} span(s) as Chrome trace events to {out} "
          f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def _command_serve(args) -> int:
    from .service import ServiceConfig, TenantQuota, TenantSLO, serve

    default_slo = None
    if args.slo_target is not None or args.slo_latency is not None:
        default_slo = TenantSLO(
            latency_objective_seconds=args.slo_latency,
            target=args.slo_target if args.slo_target is not None
            else 0.99,
            window_seconds=args.slo_window)
    config = ServiceConfig(
        max_running_jobs=args.max_running,
        max_inflight_chunks=args.max_inflight,
        queue_capacity=args.queue_capacity,
        default_quota=TenantQuota(max_queued=args.tenant_queue,
                                  max_inflight_chunks=args.tenant_inflight),
        max_job_attempts=args.job_attempts,
        attempt_timeout=args.attempt_timeout,
        default_slo=default_slo,
        calibration_path=args.calibration)
    def announce(bound):
        # Printed from the *bound* address, not the requested one:
        # --port 0 picks an ephemeral port the operator must learn.
        host, port = bound
        print(f"serving campaigns on {host}:{port} "
              f"({args.max_running} running / {args.max_inflight} chunks "
              f"in flight; queue {args.queue_capacity}; "
              f"metrics at http://{host}:{port}/metrics)", flush=True)

    serve(args.host, args.port, config=config, telemetry=args.telemetry,
          ready=announce)
    return 0


def _scrape_frame(samples, previous, elapsed) -> str:
    """One ``repro top`` frame out of parsed exposition samples."""

    def first(name, default=None, **labels):
        for sample_labels, value in samples.get(name, ()):
            if all(sample_labels.get(k) == v for k, v in labels.items()):
                return value
        return default

    def by_label(name, label, **labels):
        out: dict[str, float] = {}
        for sample_labels, value in samples.get(name, ()):
            if label in sample_labels and all(
                    sample_labels.get(k) == v for k, v in labels.items()):
                out[sample_labels[label]] = value
        return out

    def fmt_s(value):
        return "-" if value is None else f"{value * 1e3:.2f}ms"

    lines = [
        f"queue={first('repro_service_queue_depth', 0):.0f} "
        f"running={first('repro_service_jobs_running', 0):.0f} "
        f"spans={first('repro_live_spans_seen_total', 0):.0f} "
        f"sub-drops="
        f"{first('repro_live_subscriber_dropped_total', 0):.0f}"]
    rates = by_label("repro_live_span_rate", "category")
    if rates:
        lines.append("span rates: " + "  ".join(
            f"{category}={rate:.2f}/s"
            for category, rate in sorted(rates.items()) if rate > 0))
    if previous is not None and elapsed and elapsed > 0:
        deltas = []
        for name in ("repro_kernel_rhs_launches_total",
                     "repro_service_jobs_admitted_total",
                     "repro_service_jobs_shed_total",
                     "repro_service_worker_restarts_total"):
            now_value = first(name)
            if now_value is None:
                continue
            for prev_labels, prev_value in previous.get(name, ()):
                if not prev_labels:
                    short = name.removeprefix("repro_") \
                        .removesuffix("_total")
                    deltas.append(
                        f"{short}={(now_value - prev_value) / elapsed:.1f}/s")
                    break
        if deltas:
            lines.append("rates since last scrape: " + "  ".join(deltas))
    tenants = sorted(
        set(by_label("repro_live_job_outcomes_total", "tenant"))
        | set(by_label("repro_service_tenant_admitted_total", "tenant"))
        | set(by_label("repro_service_slo_burn_rate", "tenant")))
    if tenants:
        lines.append("")
        lines.append(f"{'tenant':<12} {'admitted':>8} {'done':>6} "
                     f"{'shed':>6} {'quar':>6} {'lat p50':>10} "
                     f"{'lat p95':>10} {'wait p50':>10} {'burn':>8}")
        for tenant in tenants:
            burn = first("repro_service_slo_burn_rate", tenant=tenant)
            lines.append(
                f"{tenant:<12} "
                f"{first('repro_service_tenant_admitted_total', 0, tenant=tenant):>8.0f} "
                f"{first('repro_live_job_outcomes_total', 0, tenant=tenant, state='completed'):>6.0f} "
                f"{first('repro_live_job_outcomes_total', 0, tenant=tenant, state='shed'):>6.0f} "
                f"{first('repro_live_job_outcomes_total', 0, tenant=tenant, state='quarantined'):>6.0f} "
                f"{fmt_s(first('repro_live_job_latency_seconds', tenant=tenant, quantile='0.50')):>10} "
                f"{fmt_s(first('repro_live_job_latency_seconds', tenant=tenant, quantile='0.95')):>10} "
                f"{fmt_s(first('repro_live_job_wait_seconds', tenant=tenant, quantile='0.50')):>10} "
                + ("-".rjust(8) if burn is None else f"{burn:>8.2f}"))
        breaches = by_label("repro_service_slo_breaches_total", "tenant")
        for tenant, count in sorted(breaches.items()):
            if count:
                lines.append(f"  !! SLO breach: {tenant} "
                             f"({count:.0f} breach(es))")
    phases = by_label("repro_live_phase_duration_seconds", "phase",
                      quantile="0.50")
    if phases:
        lines.append("")
        lines.append("phases (p50): " + "  ".join(
            f"{phase}={fmt_s(value)}"
            for phase, value in sorted(phases.items())))
    return "\n".join(lines)


def _command_top(args) -> int:
    from .service import scrape_metrics
    from .telemetry import clock, parse_prometheus_text

    previous = None
    previous_t = None
    iteration = 0
    while True:
        text = scrape_metrics(args.host, args.port)
        samples = parse_prometheus_text(text)
        now = clock.monotonic()
        elapsed = None if previous_t is None else now - previous_t
        frame = _scrape_frame(samples, previous, elapsed)
        if not args.once:
            # Clear + home: a terminal dashboard, not a scrolling log.
            print("\x1b[2J\x1b[H", end="")
        print(f"repro top — {args.host}:{args.port} "
              f"(scrape #{iteration + 1}, every {args.interval:.1f}s)")
        print()
        print(frame)
        iteration += 1
        if args.once:
            return 0
        previous, previous_t = samples, now
        clock.sleep(args.interval)


def _command_calibrate(args) -> int:
    from .telemetry import calibrate_workload

    model = _load_model(Path(args.model))
    widths = tuple(int(w) for w in args.widths.split(","))
    t_eval = np.linspace(0.0, args.t_end, args.points)
    table = calibrate_workload(model, t_span=(0.0, args.t_end),
                               t_eval=t_eval, widths=widths,
                               repeats=args.repeats, method=args.method,
                               seed=args.seed)
    report = table.fit()
    print(report.render())
    if args.out:
        report.save(args.out)
        print(f"\nwrote calibration report to {args.out} "
              f"(pass to 'repro serve --calibration' or "
              f"BatchSimulator(cost_model=...))")
    return 0


def _command_submit(args) -> int:
    from .service import Client

    with Client(args.host, args.port) as client:
        options = {"tenant": args.tenant, "priority": args.priority,
                   "chunk_size": args.chunk_size, "workers": args.workers,
                   "engine": args.engine}
        if args.points:
            t_eval = np.linspace(0.0, args.t_end, args.points)
            options["t_eval"] = [float(t) for t in t_eval]
        if args.deadline is not None:
            options["deadline_seconds"] = args.deadline
        if args.checkpoint is not None:
            options["checkpoint_path"] = args.checkpoint
        job_id = client.submit(args.model, t_span=(0.0, args.t_end),
                               **options)
        print(f"job {job_id} submitted (tenant {args.tenant!r}, "
              f"priority {args.priority})")
        if args.no_wait:
            return 0
        job = client.wait(job_id, timeout=args.timeout)
        print(f"job {job_id} {job['state']}"
              + (f" ({job['reason']})" if job.get("reason") else ""))
        if job.get("result"):
            print(job["result"])
        return 0 if job["state"] == "completed" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Accelerated parameter-space analysis of "
                    "reaction-based models")
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="describe a model")
    info.add_argument("model")
    info.set_defaults(handler=_command_info)

    sim = commands.add_parser("simulate", help="simulate a model (batch)")
    sim.add_argument("model")
    sim.add_argument("--t-end", type=float, default=10.0)
    sim.add_argument("--points", type=int, default=51)
    sim.add_argument("--t-grid", action="store_true",
                     help="use the folder's t_vector as the save grid")
    sim.add_argument("--engine", default="batched",
                     choices=("batched", "lsoda", "vode", "dopri5",
                              "radau5", "autoswitch", "bdf"))
    sim.add_argument("--perturb", type=int, default=0, metavar="B",
                     help="simulate B log-uniformly perturbed "
                          "parameterizations instead of the nominal one")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--rtol", type=float, default=1e-6)
    sim.add_argument("--atol", type=float, default=1e-12)
    sim.add_argument("--max-steps", type=int, default=10_000)
    sim.add_argument("--out", help="CSV output path")
    sim.set_defaults(handler=_command_simulate)

    analyze = commands.add_parser(
        "analyze", help="structural + dynamical diagnostics of a model")
    analyze.add_argument("model")
    analyze.add_argument("--horizon", type=float, default=50.0)
    analyze.add_argument("--max-steps", type=int, default=100_000)
    analyze.set_defaults(handler=_command_analyze)

    lint = commands.add_parser(
        "lint", help="static analysis of a model or a batch kernel")
    lint.add_argument("model", nargs="?",
                      help="model folder, SBML file, or a .py kernel file")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--fail-on", choices=("info", "warning", "error"),
                      default="error", metavar="SEVERITY",
                      help="exit 1 when any finding is at or above this "
                           "severity (default: error)")
    lint.add_argument("--self", action="store_true",
                      help="lint the package's own shipped batch kernels")
    lint.add_argument("--deep", action="store_true",
                      help="run the dataflow determinism/contract "
                           "analyzer (DET0xx/CON0xx) over the package "
                           "source (or MODEL when it is a .py file or "
                           "a directory)")
    lint.add_argument("--shapes", action="store_true",
                      help="run the symbolic shape/dtype and backend-"
                           "conformance analyzer (SHP0xx/BKD0xx) over "
                           "the package source (or MODEL when it is a "
                           ".py file or a directory)")
    lint.add_argument("--conc", action="store_true",
                      help="run the concurrency-safety analyzer "
                           "(CNC0xx: async/thread/process boundary "
                           "rules) over the package source (or MODEL "
                           "when it is a .py file or a directory)")
    lint.add_argument("--baseline", metavar="PATH",
                      help="baseline JSON to subtract from --deep/"
                           "--shapes/--conc findings (default: the "
                           "committed package baseline of that "
                           "analyzer)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="with --deep/--shapes/--conc: persist the "
                           "current findings as the new baseline "
                           "instead of reporting them")
    lint.add_argument("--list-rules", action="store_true",
                      help="print every registered rule (id, family, "
                           "severity, summary) and exit")
    lint.add_argument("--gate", action="store_true",
                      help="run the model through lint_gate: exit 3 "
                           "(LintGateError) when it fails at/above "
                           "--fail-on")
    lint.set_defaults(handler=_command_lint)

    convert = commands.add_parser("convert",
                                  help="convert between SBML and folder")
    convert.add_argument("source")
    convert.add_argument("destination")
    convert.set_defaults(handler=_command_convert)

    generate = commands.add_parser("generate",
                                   help="generate a synthetic RBM folder")
    generate.add_argument("destination")
    generate.add_argument("--species", type=int, default=32)
    generate.add_argument("--reactions", type=int, default=32)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--batch", type=int, default=0)
    generate.set_defaults(handler=_command_generate)

    trace = commands.add_parser(
        "trace", help="record, summarize or export campaign traces")
    trace_commands = trace.add_subparsers(dest="trace_command",
                                          required=True)

    record = trace_commands.add_parser(
        "record", help="run a traced campaign, writing a JSONL trace")
    record.add_argument("model")
    record.add_argument("--out", required=True,
                        help="JSONL trace output path")
    record.add_argument("--batch", type=int, default=64,
                        help="perturbed rows when the folder has no "
                             "sweep batch")
    record.add_argument("--chunk-size", type=int, default=32)
    record.add_argument("--workers", type=int, default=0,
                        help="worker processes for the supervised shard "
                             "executor (0 = in-process serial loop)")
    record.add_argument("--t-end", type=float, default=10.0)
    record.add_argument("--points", type=int, default=51)
    record.add_argument("--engine", default="batched",
                        choices=("batched", "lsoda", "vode", "dopri5",
                                 "radau5", "autoswitch", "bdf"))
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--checkpoint", default=None,
                        help="campaign journal path; enables resume and "
                             "appends into the existing trace")
    record.set_defaults(handler=_command_trace_record)

    summarize = trace_commands.add_parser(
        "summarize", help="validate and summarize a JSONL trace")
    summarize.add_argument("trace")
    summarize.set_defaults(handler=_command_trace_summarize)

    export = trace_commands.add_parser(
        "export", help="convert a JSONL trace to Chrome trace_event JSON")
    export.add_argument("trace")
    export.add_argument("--out", required=True,
                        help="Chrome-trace JSON output path")
    export.set_defaults(handler=_command_trace_export)

    serve = commands.add_parser(
        "serve", help="run the multi-tenant campaign service (TCP)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8753)
    serve.add_argument("--max-running", type=int, default=4,
                       help="campaigns executing concurrently")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="service-wide concurrent chunk grants")
    serve.add_argument("--queue-capacity", type=int, default=64)
    serve.add_argument("--tenant-queue", type=int, default=16,
                       help="default per-tenant queued-job quota")
    serve.add_argument("--tenant-inflight", type=int, default=4,
                       help="default per-tenant chunk-grant cap")
    serve.add_argument("--job-attempts", type=int, default=2)
    serve.add_argument("--attempt-timeout", type=float, default=None,
                       help="wall-clock bound per job attempt (seconds)")
    serve.add_argument("--telemetry", default=None,
                       help="JSONL trace path for the service span tree")
    serve.add_argument("--calibration", default=None,
                       help="calibration report JSON ('repro calibrate' "
                            "output) for calibrated admission and routing")
    serve.add_argument("--slo-target", type=float, default=None,
                       help="default per-tenant success objective "
                            "(e.g. 0.99)")
    serve.add_argument("--slo-latency", type=float, default=None,
                       help="per-job latency objective in seconds; "
                            "slower completions count as SLO misses")
    serve.add_argument("--slo-window", type=float, default=3600.0,
                       help="SLO burn-rate sliding window (seconds)")
    serve.set_defaults(handler=_command_serve)

    top = commands.add_parser(
        "top", help="live terminal view of a running service's /metrics")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8753)
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between scrapes")
    top.add_argument("--once", action="store_true",
                     help="print a single frame and exit (no screen "
                          "clearing; for scripts and CI)")
    top.set_defaults(handler=_command_top)

    calibrate = commands.add_parser(
        "calibrate",
        help="fit a perfmodel calibration report from probe launches")
    calibrate.add_argument("model", help="model folder or SBML path")
    calibrate.add_argument("--out", default=None,
                           help="write the fitted CalibrationReport "
                                "JSON here")
    calibrate.add_argument("--widths", default="8,32",
                           help="comma-separated probe batch widths")
    calibrate.add_argument("--repeats", type=int, default=2,
                           help="probe launches per width")
    calibrate.add_argument("--method", default="auto",
                           choices=("auto", "dopri5", "radau5", "bdf"))
    calibrate.add_argument("--t-end", type=float, default=2.0)
    calibrate.add_argument("--points", type=int, default=41)
    calibrate.add_argument("--seed", type=int, default=0,
                           help="perturbation seed for probe batches")
    calibrate.set_defaults(handler=_command_calibrate)

    submit = commands.add_parser(
        "submit", help="submit a campaign to a running service")
    submit.add_argument("model", help="model folder or SBML path, as "
                                      "seen by the *server*")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8753)
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--chunk-size", type=int, default=64)
    submit.add_argument("--workers", type=int, default=0)
    submit.add_argument("--engine", default="batched")
    submit.add_argument("--t-end", type=float, default=10.0)
    submit.add_argument("--points", type=int, default=51)
    submit.add_argument("--deadline", type=float, default=None,
                        help="per-job deadline in seconds from submission")
    submit.add_argument("--checkpoint", default=None,
                        help="server-side campaign journal path")
    submit.add_argument("--no-wait", action="store_true",
                        help="submit and return without waiting")
    submit.add_argument("--timeout", type=float, default=None,
                        help="wait timeout in seconds")
    submit.set_defaults(handler=_command_submit)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except LintGateError as error:
        # Distinct from crashes (exit 2) so CI can tell a gate
        # rejection from a broken analyzer.
        print(f"lint gate: {error}", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
