"""The Brusselator oscillator as a reaction-based model.

The Brusselator is the workhorse for the PSA-2D experiment (E4): its
limit cycle appears exactly when b > 1 + a^2, so sweeping (a, b) yields
an oscillation-amplitude map with a sharp analytic boundary — the same
kind of two-parameter oscillation map the paper family computes for the
autophagy/translation switch.

Mass-action encoding (buffered A and B folded into the constants):

    R1: 0      -> X        rate a      (feed)
    R2: 2X + Y -> 3X       rate 1      (autocatalysis, third order)
    R3: X      -> Y        rate b      (conversion)
    R4: X      -> 0        rate 1      (drain)

which gives dX/dt = a + X^2 Y - (b + 1) X, dY/dt = b X - X^2 Y.
"""

from __future__ import annotations

from ..errors import ModelError
from ..model import ReactionBasedModel

#: Indices of the sweepable constants in the reaction list.
FEED_REACTION = 0
CONVERSION_REACTION = 2


def brusselator(a: float = 1.0, b: float = 3.0,
                x0: float = 1.0, y0: float = 1.0) -> ReactionBasedModel:
    """Brusselator RBM with feed rate ``a`` and conversion rate ``b``."""
    if a <= 0.0 or b <= 0.0:
        raise ModelError(f"Brusselator needs a, b > 0, got a={a}, b={b}")
    model = ReactionBasedModel("brusselator")
    model.add_species("X", x0)
    model.add_species("Y", y0)
    model.add("0 -> X", rate_constant=a)
    model.add("2 X + Y -> 3 X", rate_constant=1.0)
    model.add("X -> Y", rate_constant=b)
    model.add("X -> 0", rate_constant=1.0)
    return model


def oscillates(a: float, b: float) -> bool:
    """Analytic limit-cycle criterion: the fixed point (a, b/a) is
    unstable iff b > 1 + a^2."""
    return b > 1.0 + a * a
