"""Curated small reaction-based models with known behavior.

These models are used throughout the tests, examples and benchmarks:
each one exercises a specific regime (stiffness, conservation,
oscillation, saturating kinetics) with a structure that is easy to
reason about analytically.
"""

from __future__ import annotations

from ..errors import ModelError
from ..model import Hill, MichaelisMenten, ReactionBasedModel


def robertson() -> ReactionBasedModel:
    """Robertson's classical stiff problem as an RBM.

    A -> B (slow), 2B -> B + C (very fast), B + C -> A + C. The mass
    totals are conserved and the Jacobian develops a ~1e4 stiffness
    ratio as soon as B builds up — the canonical stress test for stiff
    integrators.
    """
    model = ReactionBasedModel("robertson")
    model.add_species("A", 1.0)
    model.add_species("B", 0.0)
    model.add_species("C", 0.0)
    model.add("A -> B @ 0.04")
    model.add("2 B -> B + C @ 3e7")
    model.add("B + C -> A + C @ 1e4")
    return model


def decay_chain(length: int = 3, rate: float = 1.0,
                initial: float = 10.0) -> ReactionBasedModel:
    """Linear decay chain X0 -> X1 -> ... -> X_{length}.

    With distinct rates the solution is a Bateman cascade with a known
    closed form; the total mass is conserved.
    """
    if length < 1:
        raise ModelError(f"chain length must be >= 1, got {length}")
    model = ReactionBasedModel(f"decay-chain-{length}")
    model.add_species("X0", initial)
    for i in range(1, length + 1):
        model.add_species(f"X{i}", 0.0)
    for i in range(length):
        model.add(f"X{i} -> X{i + 1}", rate_constant=rate / (1.0 + 0.5 * i))
    return model


def lotka_volterra(prey_birth: float = 1.0, predation: float = 0.1,
                   predator_death: float = 0.5) -> ReactionBasedModel:
    """Mass-action Lotka-Volterra oscillator.

    Y1 -> 2 Y1 (prey reproduction), Y1 + Y2 -> 2 Y2 (predation),
    Y2 -> 0 (predator death). Trajectories are closed orbits around
    the center (predator_death/predation, prey_birth/predation).
    """
    model = ReactionBasedModel("lotka-volterra")
    model.add_species("Y1", 10.0)
    model.add_species("Y2", 5.0)
    model.add("Y1 -> 2 Y1", rate_constant=prey_birth)
    model.add("Y1 + Y2 -> 2 Y2", rate_constant=predation)
    model.add("Y2 -> 0", rate_constant=predator_death)
    return model


def michaelis_menten_cycle(vmax_forward: float = 1.0, km_forward: float = 0.5,
                           vmax_back: float = 0.6,
                           km_back: float = 0.8) -> ReactionBasedModel:
    """Two-state covalent modification cycle with saturating kinetics.

    S <-> P where both directions follow Michaelis-Menten laws; the
    total S + P is conserved, and the steady state exhibits the
    Goldbeter-Koshland zero-order ultrasensitivity when both enzymes
    are saturated.
    """
    model = ReactionBasedModel("mm-cycle")
    model.add_species("S", 1.0)
    model.add_species("P", 0.0)
    model.add("S -> P", rate_constant=vmax_forward,
              law=MichaelisMenten(km=km_forward))
    model.add("P -> S", rate_constant=vmax_back,
              law=MichaelisMenten(km=km_back))
    return model


def hill_switch(vmax: float = 1.0, km: float = 0.5,
                n: float = 4.0, decay: float = 0.8) -> ReactionBasedModel:
    """Self-activating gene switch with Hill kinetics.

    X activates its own production through a steep Hill law and decays
    linearly; for suitable parameters the system is bistable.
    """
    model = ReactionBasedModel("hill-switch")
    model.add_species("X", 0.1)
    model.add("X -> 2 X", rate_constant=vmax, law=Hill(km=km, n=n))
    model.add("X -> 0", rate_constant=decay)
    return model


def dimerization(bind: float = 2.0, unbind: float = 1.0,
                 initial: float = 1.0) -> ReactionBasedModel:
    """Reversible dimerization 2 A <-> D.

    The equilibrium is analytically solvable and both the mass total
    A + 2 D and detailed balance are easy to verify in tests.
    """
    model = ReactionBasedModel("dimerization")
    model.add_species("A", initial)
    model.add_species("D", 0.0)
    model.add("2 A -> D", rate_constant=bind)
    model.add("D -> 2 A", rate_constant=unbind)
    return model
