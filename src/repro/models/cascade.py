"""Phosphorylation cascade model used by the parameter-estimation
experiment.

A three-tier kinase cascade (MAPK-like) under mass-action kinetics:
an upstream signal E activates tier 1, active tier 1 activates tier 2,
and so on; constitutive phosphatases deactivate each tier. The six
kinetic constants are the targets the PE experiment (E6) recovers from
synthetic "observed" dynamics.
"""

from __future__ import annotations

from ..model import ReactionBasedModel

#: Names of the constants in reaction order (activation/deactivation
#: per tier); useful for labeling PE results.
PARAMETER_NAMES = ("k_act1", "k_dea1", "k_act2", "k_dea2",
                   "k_act3", "k_dea3")

#: Ground-truth constants the PE experiment tries to recover.
TRUE_CONSTANTS = (2.0, 0.8, 1.5, 0.6, 1.0, 0.4)

#: Observable species of the cascade (the active forms).
OBSERVED_SPECIES = ("X1a", "X2a", "X3a")


def cascade(constants: tuple[float, ...] = TRUE_CONSTANTS
            ) -> ReactionBasedModel:
    """Build the cascade with the given six kinetic constants."""
    k_act1, k_dea1, k_act2, k_dea2, k_act3, k_dea3 = constants
    model = ReactionBasedModel("kinase-cascade")
    model.add_species("E", 1.0)      # upstream signal (conserved)
    model.add_species("X1", 1.0)
    model.add_species("X1a", 0.0)
    model.add_species("X2", 1.0)
    model.add_species("X2a", 0.0)
    model.add_species("X3", 1.0)
    model.add_species("X3a", 0.0)
    model.add("X1 + E -> X1a + E", rate_constant=k_act1)
    model.add("X1a -> X1", rate_constant=k_dea1)
    model.add("X2 + X1a -> X2a + X1a", rate_constant=k_act2)
    model.add("X2a -> X2", rate_constant=k_dea2)
    model.add("X3 + X2a -> X3a + X2a", rate_constant=k_act3)
    model.add("X3a -> X3", rate_constant=k_dea3)
    return model
