"""A compact human-red-blood-cell-style metabolic RBM.

Substitute for the intracellular carbohydrate-metabolism model of the
paper family's sensitivity-analysis experiment (see DESIGN.md): the
original BioModels network is unreachable offline, so this module
builds a structurally analogous mass-action model of upper/lower
glycolysis plus the pentose-phosphate branch, with two explicit
hexokinase isoforms (HK1, HK2) forming enzyme-substrate complexes —
the feature the experiment perturbs.

Shape: 22 species, 20 reactions. The sensitivity analysis (E5) varies
the initial concentrations of the dominant isoform and its complexes
and reads out the ribose-5-phosphate (R5P) trajectory.
"""

from __future__ import annotations

from ..model import ReactionBasedModel

#: Species whose initial concentrations the Sobol SA perturbs: the
#: high-abundance HK isoform and every complex it forms.
SA_TARGET_SPECIES = ("HK2", "HK2_GLC", "HK2_GLC_ATP")

#: The read-out metabolite of the sensitivity analysis.
SA_OUTPUT_SPECIES = "R5P"


def metabolic_network() -> ReactionBasedModel:
    """Build the glycolysis + pentose-phosphate RBM."""
    model = ReactionBasedModel("rbc-metabolism")

    # Metabolites (mM-scale initial concentrations).
    model.add_species("GLC", 5.0)
    model.add_species("G6P", 0.04)
    model.add_species("F6P", 0.015)
    model.add_species("FBP", 0.003)
    model.add_species("GAP", 0.006)
    model.add_species("PYR", 0.08)
    model.add_species("LAC", 1.3)
    model.add_species("SixPG", 0.002)   # 6-phosphogluconate
    model.add_species("R5P", 0.01)
    # Cofactors.
    model.add_species("ATP", 1.5)
    model.add_species("ADP", 0.25)
    model.add_species("NAD", 0.06)
    model.add_species("NADH", 0.03)
    model.add_species("NADP", 0.03)
    model.add_species("NADPH", 0.06)
    model.add_species("Pi", 1.0)
    # Hexokinase isoforms and their complexes (HK2 dominant).
    model.add_species("HK1", 2e-5)
    model.add_species("HK2", 1e-4)
    model.add_species("HK1_GLC", 0.0)
    model.add_species("HK2_GLC", 0.0)
    model.add_species("HK1_GLC_ATP", 0.0)
    model.add_species("HK2_GLC_ATP", 0.0)

    # Hexokinase isoform mechanisms (ordered bi-bi, mass action).
    model.add("HK1 + GLC -> HK1_GLC @ 80.0")
    model.add("HK1_GLC -> HK1 + GLC @ 5.0")
    model.add("HK1_GLC + ATP -> HK1_GLC_ATP @ 60.0")
    model.add("HK1_GLC_ATP -> HK1 + G6P + ADP @ 30.0")
    model.add("HK2 + GLC -> HK2_GLC @ 120.0")
    model.add("HK2_GLC -> HK2 + GLC @ 2.0")
    model.add("HK2_GLC + ATP -> HK2_GLC_ATP @ 90.0")
    model.add("HK2_GLC_ATP -> HK2 + G6P + ADP @ 45.0")

    # Upper glycolysis.
    model.add("G6P -> F6P @ 3.0")
    model.add("F6P -> G6P @ 1.2")
    model.add("F6P + ATP -> FBP + ADP @ 4.0")
    model.add("FBP -> 2 GAP @ 2.5")

    # Lumped lower glycolysis and lactate export.
    model.add("GAP + NAD + ADP + Pi -> PYR + NADH + ATP @ 6.0")
    model.add("PYR + NADH -> LAC + NAD @ 8.0")
    model.add("LAC -> 0 @ 0.5")

    # Pentose-phosphate branch (read-out pathway).
    model.add("G6P + NADP -> SixPG + NADPH @ 1.5")
    model.add("SixPG + NADP -> R5P + NADPH @ 2.0")
    model.add("R5P -> F6P @ 0.4")
    model.add("NADPH -> NADP @ 1.0")     # lumped glutathione load

    # ATP consumption load closing the energy loop.
    model.add("ATP -> ADP + Pi @ 0.3")
    return model
