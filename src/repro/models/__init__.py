"""Curated concrete biological models used by examples and benches."""

from .cascade import (OBSERVED_SPECIES, PARAMETER_NAMES, TRUE_CONSTANTS,
                      cascade)
from .curated import (decay_chain, dimerization, hill_switch,
                      lotka_volterra, michaelis_menten_cycle, robertson)
from .extra import (goldbeter_mitotic, oregonator, schloegl, sir_epidemic)
from .metabolic import (SA_OUTPUT_SPECIES, SA_TARGET_SPECIES,
                        metabolic_network)
from .oscillator import brusselator, oscillates

__all__ = [
    "OBSERVED_SPECIES", "PARAMETER_NAMES", "TRUE_CONSTANTS", "cascade",
    "decay_chain", "dimerization", "hill_switch", "lotka_volterra",
    "michaelis_menten_cycle", "robertson",
    "SA_OUTPUT_SPECIES", "SA_TARGET_SPECIES", "metabolic_network",
    "brusselator", "oscillates",
    "goldbeter_mitotic", "oregonator", "schloegl", "sir_epidemic",
]
