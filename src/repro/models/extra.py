"""Additional curated models: stiff oscillators, epidemics, bistability.

These widen the benchmark model suite beyond the core set: the
Oregonator is the classic *stiff* limit-cycle oscillator (the stress
test for the router on oscillatory stiffness), the SIR epidemic is the
standard closed mass-action contagion model, the Schlögl system is the
canonical bistable network whose stochastic dynamics are bimodal while
its deterministic limit picks a single branch, and the Goldbeter
minimal mitotic oscillator exercises saturating (Michaelis-Menten)
kinetics in a feedback loop.
"""

from __future__ import annotations

from ..errors import ModelError
from ..model import MichaelisMenten, ReactionBasedModel


def oregonator() -> ReactionBasedModel:
    """Field-Noyes Oregonator (Belousov-Zhabotinsky core).

    Mass-action encoding with buffered A = B folded into the constants:

        R1: Y      -> X          (A + Y -> X + P)
        R2: X + Y  -> 0          (X + Y -> 2 P)
        R3: X      -> 2 X + Z    (A + X -> 2 X + 2 Z, lumped)
        R4: 2 X    -> 0          (2 X -> A + P)
        R5: Z      -> Y          (B + Z -> f/2 Y, f = 2)

    With the classical rate ordering this is both stiff and
    oscillatory — the hard regime for explicit methods.
    """
    model = ReactionBasedModel("oregonator")
    model.add_species("X", 1.0)
    model.add_species("Y", 1.0)
    model.add_species("Z", 2.0)
    model.add("Y -> X @ 2.0")
    model.add("X + Y -> 0 @ 0.1")
    model.add("X -> 2 X + Z @ 104.0")
    model.add("2 X -> 0 @ 0.016")
    model.add("Z -> Y @ 26.0")
    return model


def sir_epidemic(infection_rate: float = 0.3,
                 recovery_rate: float = 0.1,
                 population: float = 1000.0,
                 initial_infected: float = 1.0) -> ReactionBasedModel:
    """SIR epidemic as a closed mass-action RBM.

    S + I -> 2 I (infection), I -> R (recovery). The basic reproduction
    number is R0 = infection_rate * S0 / recovery_rate; an outbreak
    occurs iff R0 > 1. Total population is conserved.
    """
    if initial_infected <= 0 or population <= initial_infected:
        raise ModelError("need 0 < initial_infected < population")
    model = ReactionBasedModel("sir")
    model.add_species("S", population - initial_infected)
    model.add_species("I", initial_infected)
    model.add_species("R", 0.0)
    model.add("S + I -> 2 I", rate_constant=infection_rate / population)
    model.add("I -> R", rate_constant=recovery_rate)
    return model


def schloegl(low_state: float = 85.0, unstable_state: float = 250.0,
             high_state: float = 550.0, time_scale: float = 2e-6,
             initial: float = 100.0) -> ReactionBasedModel:
    """Schlögl's bistable autocatalytic system.

        R1: 2 X -> 3 X,   R2: 3 X -> 2 X,   R3: 0 -> X,   R4: X -> 0

    gives dX/dt = k1 X^2 - k2 X^3 + k3 - k4 X, a cubic whose three
    positive roots are the two stable states and the separatrix between
    them. The constants are *derived* from the requested fixed points
    (factored cubic scaled by ``time_scale``), so bistability holds by
    construction: trajectories starting below ``unstable_state`` settle
    at ``low_state``, the rest at ``high_state``. The stochastic
    version at small volume is bimodal and hops between branches — a
    classic qualitative gap between SSA and the ODE limit.
    """
    if not (0 < low_state < unstable_state < high_state):
        raise ModelError("need 0 < low < unstable < high fixed points")
    r1, r2, r3 = low_state, unstable_state, high_state
    b = time_scale
    model = ReactionBasedModel("schloegl")
    model.add_species("X", initial)
    model.add("2 X -> 3 X", rate_constant=b * (r1 + r2 + r3))
    model.add("3 X -> 2 X", rate_constant=b)
    model.add("0 -> X", rate_constant=b * r1 * r2 * r3)
    model.add("X -> 0",
              rate_constant=b * (r1 * r2 + r1 * r3 + r2 * r3))
    return model


def goldbeter_mitotic() -> ReactionBasedModel:
    """Goldbeter's minimal mitotic oscillator (1991 parameters).

    Cyclin C drives the activation of cdc2 kinase M through a
    saturating (zero-order ultrasensitive) activation step; active M
    activates the cyclin protease P, which degrades C — a delayed
    negative feedback producing robust limit-cycle oscillations.

    The saturating catalytic steps use :class:`CustomLaw` expressions
    (the general-kinetics engine), e.g. the cdc2 activation rate is
    VM1 * [C / (Kc + C)] * Mi / (K1 + Mi). The kinase/protease pairs
    (M, Mi) and (P, Pi) are conserved with total 1.
    """
    from ..model import CustomLaw

    model = ReactionBasedModel("goldbeter-mitotic")
    model.add_species("C", 0.1)      # cyclin
    model.add_species("M", 0.01)     # active cdc2
    model.add_species("Mi", 0.99)    # inactive cdc2
    model.add_species("P", 0.01)     # active protease
    model.add_species("Pi", 0.99)    # inactive protease

    model.add("0 -> C @ 0.025")                  # synthesis vi
    model.add("C -> 0 @ 0.01")                   # basal decay kd
    # Protease-mediated cyclin degradation: vd * P * C / (Kd + C).
    model.add("C -> 0", rate_constant=0.25,
              law=CustomLaw.from_string("k * P * C / (0.02 + C)"))
    # Cyclin-activated cdc2: VM1 * C/(Kc+C) * Mi/(K1+Mi).
    model.add("Mi -> M", rate_constant=3.0,
              law=CustomLaw.from_string(
                  "k * (C / (0.5 + C)) * Mi / (0.005 + Mi)"))
    model.add("M -> Mi", rate_constant=1.5,
              law=MichaelisMenten(km=0.005))
    # cdc2-activated protease: VM3 * M * Pi/(K3+Pi).
    model.add("Pi -> P", rate_constant=1.0,
              law=CustomLaw.from_string("k * M * Pi / (0.005 + Pi)"))
    model.add("P -> Pi", rate_constant=0.5,
              law=MichaelisMenten(km=0.005))
    return model
