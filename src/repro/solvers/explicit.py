"""Scalar adaptive explicit Runge-Kutta integrator.

One tableau-driven implementation serves every embedded explicit pair
(RKF45, Cash-Karp, Bogacki-Shampine, DOPRI5). Steps are clipped so that
every requested save time is hit exactly; DOPRI5 additionally offers the
classical quartic dense-output interpolant (see
:class:`Dopri5Interpolant`) and the Hairer stiffness test used by the
auto-switching driver to escalate to Radau IIA.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from .base import (DEFAULT_OPTIONS, FAILED, MAX_STEPS, STIFF_DETECTED,
                   SUCCESS, SolveResult, SolverOptions, SolverStats,
                   StepController, error_norm, initial_step_size,
                   validate_time_grid)
from .tableaus import DOPRI5, DOPRI5_DENSE_D, ButcherTableau

#: Hairer's DOPRI5 stability-boundary constant for the stiffness test.
_STIFFNESS_BOUNDARY = 3.25
#: Consecutive violations before a problem is flagged as stiff.
_STIFFNESS_PATIENCE = 15


class ExplicitRungeKutta:
    """Adaptive embedded explicit Runge-Kutta solver.

    Parameters
    ----------
    tableau:
        The embedded pair to integrate with.
    options:
        Numerical options (tolerances, step caps, ...).
    use_pi_controller:
        Select the PI (Gustafsson) step controller instead of the
        elementary one.
    detect_stiffness:
        Run Hairer's stiffness test on tableaus whose last two stages
        both sit at c = 1 (DOPRI5). A positive test does not abort the
        integration; it sets ``stiffness_detected`` on the result.
    """

    def __init__(self, tableau: ButcherTableau,
                 options: SolverOptions = DEFAULT_OPTIONS,
                 use_pi_controller: bool = True,
                 detect_stiffness: bool = True,
                 abort_on_stiffness: bool = False) -> None:
        self.tableau = tableau
        self.options = options
        self.use_pi_controller = use_pi_controller
        n_stages = tableau.n_stages
        self.detect_stiffness = (
            detect_stiffness and n_stages >= 2
            and tableau.c[-1] == 1.0 and tableau.c[-2] == 1.0)
        self.abort_on_stiffness = abort_on_stiffness and self.detect_stiffness

    @property
    def name(self) -> str:
        return self.tableau.name

    def solve(self, fun, t_span: tuple[float, float], y0: np.ndarray,
              t_eval: np.ndarray | None = None,
              collect_interpolants: bool = False) -> SolveResult:
        """Integrate ``dy/dt = fun(t, y)`` over ``t_span``.

        Save times are hit exactly by clipping the step size. When
        ``collect_interpolants`` is set (DOPRI5 only) the result carries
        a list of per-step :class:`Dopri5Interpolant` objects in
        ``result.interpolants``.
        """
        options = self.options
        tableau = self.tableau
        t_eval = validate_time_grid(t_span, t_eval)
        t0, t1 = float(t_span[0]), float(t_span[1])
        y = np.array(y0, dtype=np.float64)
        stats = SolverStats()
        controller = StepController(tableau.error_order, options,
                                    self.use_pi_controller)

        output = np.empty((t_eval.size, y.size))
        save_index = 0
        t = t0
        if t_eval[0] == t0:
            output[0] = y
            save_index = 1

        f_current = fun(t, y)
        stats.n_rhs_evaluations += 1
        if options.first_step is not None:
            h = options.first_step
        else:
            h = initial_step_size(fun, t, y, f_current, tableau.order, options)
            stats.n_rhs_evaluations += 1
        max_step = min(options.max_step, t1 - t0)
        h = min(h, max_step)

        interpolants: list[Dopri5Interpolant] = []
        stages = np.empty((tableau.n_stages, y.size))
        stiffness_strikes = 0
        non_stiff_streak = 0
        stiff = False

        while t < t1 - 1e-14 * max(1.0, abs(t1)):
            if stats.n_steps >= options.max_steps:
                return SolveResult(t_eval[:save_index].copy(),
                                   output[:save_index].copy(), MAX_STEPS,
                                   stats, self.name,
                                   f"step budget exhausted at t={t:g}",
                                   stiff, t, y.copy())
            h = min(h, t1 - t)
            # Clip so the next save time is hit exactly.
            clipped = False
            if save_index < t_eval.size and t + h >= t_eval[save_index]:
                h = t_eval[save_index] - t
                clipped = True
            if h <= abs(t) * 1e-15:
                return SolveResult(t_eval[:save_index].copy(),
                                   output[:save_index].copy(), FAILED,
                                   stats, self.name,
                                   f"step size underflow at t={t:g}", stiff,
                                   t, y.copy())

            stats.n_steps += 1
            stages[0] = f_current
            for i in range(1, tableau.n_stages):
                increment = tableau.a[i, :i].dot(stages[:i])
                stages[i] = fun(t + tableau.c[i] * h, y + h * increment)
            stats.n_rhs_evaluations += tableau.n_stages - 1
            y_new = y + h * tableau.b.dot(stages)
            local_error = h * tableau.e.dot(stages)
            err = error_norm(local_error, y, y_new, options)

            if not np.all(np.isfinite(y_new)):
                err = np.inf

            if err <= 1.0:
                stats.n_accepted += 1
                if tableau.first_same_as_last:
                    f_new = stages[-1]
                else:
                    f_new = fun(t + h, y_new)
                    stats.n_rhs_evaluations += 1
                if self.detect_stiffness:
                    stiff_now = self._stiffness_test(h, y, y_new, stages,
                                                     tableau)
                    if stiff_now:
                        stiffness_strikes += 1
                        non_stiff_streak = 0
                        if stiffness_strikes >= _STIFFNESS_PATIENCE:
                            stiff = True
                    else:
                        non_stiff_streak += 1
                        if non_stiff_streak >= 6:
                            stiffness_strikes = 0
                if collect_interpolants and tableau is DOPRI5:
                    interpolants.append(
                        Dopri5Interpolant(t, h, y.copy(), y_new.copy(),
                                          stages.copy()))
                t_new = t + h
                if clipped and save_index < t_eval.size and \
                        abs(t_new - t_eval[save_index]) <= 1e-12 * max(1.0, abs(t_new)):
                    output[save_index] = y_new
                    save_index += 1
                controller.record_accepted(err)
                factor = controller.factor(err)
                t, y, f_current = t_new, y_new, f_new
                h = min(h * factor, max_step)
                if stiff and self.abort_on_stiffness:
                    return SolveResult(
                        t_eval[:save_index].copy(),
                        output[:save_index].copy(), STIFF_DETECTED, stats,
                        self.name, f"stiffness detected at t={t:g}", True,
                        t, y.copy())
            else:
                stats.n_rejected += 1
                if np.isfinite(err):
                    h *= max(options.min_step_factor,
                             options.safety * err ** controller.error_exponent)
                else:
                    h *= options.min_step_factor

        while save_index < t_eval.size and \
                abs(t_eval[save_index] - t1) <= 1e-12 * max(1.0, abs(t1)):
            output[save_index] = y
            save_index += 1
        if save_index != t_eval.size:  # pragma: no cover - defensive
            raise SolverError("internal error: save grid not exhausted")
        result = SolveResult(t_eval.copy(), output, SUCCESS, stats,
                             self.name, "", stiff)
        if collect_interpolants:
            result.interpolants = interpolants  # type: ignore[attr-defined]
        return result

    @staticmethod
    def _stiffness_test(h: float, y: np.ndarray, y_new: np.ndarray,
                        stages: np.ndarray, tableau: ButcherTableau) -> bool:
        """Hairer's h * rho(J) estimate from the last two c=1 stages.

        Both the last stage (evaluated at y_new) and the one before it
        sit at t + h; the ratio of their derivative difference to their
        state difference estimates the local Lipschitz constant, and
        h * lambda beyond the explicit stability boundary signals
        stiffness.
        """
        y_penultimate = y + h * tableau.a[-2, :-2].dot(stages[:-2])
        numerator = float(np.sum((stages[-1] - stages[-2]) ** 2))
        denominator = float(np.sum((y_new - y_penultimate) ** 2))
        if denominator <= 0.0:
            return False
        return h * np.sqrt(numerator / denominator) > _STIFFNESS_BOUNDARY


class Dopri5Interpolant:
    """Quartic continuous extension of one accepted DOPRI5 step.

    Evaluates the classical Dormand-Prince dense output at any
    ``theta = (t - t_start) / h`` in [0, 1] with the same order of
    accuracy as the step itself (order 4 interpolation).
    """

    def __init__(self, t_start: float, h: float, y_start: np.ndarray,
                 y_end: np.ndarray, stages: np.ndarray) -> None:
        self.t_start = t_start
        self.h = h
        self.t_end = t_start + h
        self._y_start = y_start
        rcont1 = y_start
        ydiff = y_end - y_start
        rcont2 = ydiff
        bspl = h * stages[0] - ydiff
        rcont3 = bspl
        rcont4 = ydiff - h * stages[-1] - bspl
        rcont5 = h * DOPRI5_DENSE_D.dot(stages)
        self._rcont = (rcont1, rcont2, rcont3, rcont4, rcont5)

    def __call__(self, t: float | np.ndarray) -> np.ndarray:
        theta = (np.asarray(t, dtype=np.float64) - self.t_start) / self.h
        r1, r2, r3, r4, r5 = self._rcont
        theta = np.atleast_1d(theta)[..., None]
        one_minus = 1.0 - theta
        value = r1 + theta * (r2 + one_minus * (
            r3 + theta * (r4 + one_minus * r5)))
        return value[0] if np.isscalar(t) or np.ndim(t) == 0 else value
