"""Butcher tableaus for the embedded explicit Runge-Kutta methods.

Each tableau packages the stage matrix ``a``, the nodes ``c``, the
higher-order weights ``b`` (used to advance the solution) and the error
weights ``e = b - b_hat`` (difference between the embedded orders, used
for the local error estimate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SolverError


@dataclass(frozen=True)
class ButcherTableau:
    """An embedded explicit Runge-Kutta pair.

    Attributes
    ----------
    name:
        Human-readable method name.
    order:
        Order of the propagating solution.
    error_order:
        Order of the embedded (error-estimating) solution.
    a, b, c, e:
        Butcher coefficients; ``e`` gives the local error as
        ``h * sum_i e_i k_i``.
    first_same_as_last:
        True when the last stage derivative equals f(t+h, y_new), so it
        can seed the next step (FSAL property).
    """

    name: str
    order: int
    error_order: int
    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    e: np.ndarray
    first_same_as_last: bool = False

    @property
    def n_stages(self) -> int:
        return self.b.shape[0]

    def validate(self, tol: float = 1e-12) -> None:
        """Structural consistency checks; raises :class:`SolverError`.

        Explicit raises rather than ``assert`` so a corrupt tableau is
        still rejected under ``python -O`` (asserts are stripped).
        """
        n = self.n_stages
        if self.a.shape != (n, n):
            raise SolverError(
                f"tableau {self.name!r}: stage matrix has shape "
                f"{self.a.shape}, expected {(n, n)}")
        if self.c.shape != (n,):
            raise SolverError(
                f"tableau {self.name!r}: nodes have shape {self.c.shape}, "
                f"expected {(n,)}")
        if self.e.shape != (n,):
            raise SolverError(
                f"tableau {self.name!r}: error weights have shape "
                f"{self.e.shape}, expected {(n,)}")
        if not np.allclose(self.a.sum(axis=1), self.c, atol=tol):
            raise SolverError(
                f"tableau {self.name!r}: row-sum condition violated "
                "(a.sum(axis=1) != c)")
        if not abs(self.b.sum() - 1.0) < tol:
            raise SolverError(
                f"tableau {self.name!r}: propagating weights sum to "
                f"{self.b.sum()!r}, expected 1")
        if not abs(self.e.sum()) < tol:
            raise SolverError(
                f"tableau {self.name!r}: error weights sum to "
                f"{self.e.sum()!r}, expected 0")
        if not np.allclose(np.triu(self.a), 0.0, atol=tol):
            raise SolverError(
                f"tableau {self.name!r}: stage matrix is not strictly "
                "lower triangular (method would be implicit)")


def _tableau(name, order, error_order, a, b, b_hat, c, fsal=False):
    a = np.array(a, dtype=np.float64)
    b = np.array(b, dtype=np.float64)
    b_hat = np.array(b_hat, dtype=np.float64)
    c = np.array(c, dtype=np.float64)
    return ButcherTableau(name, order, error_order, a, b, c, b - b_hat, fsal)


#: Bogacki-Shampine 3(2) pair (the low-cost non-stiff option).
BOGACKI_SHAMPINE_23 = _tableau(
    "bs23", 3, 2,
    a=[[0, 0, 0, 0],
       [1 / 2, 0, 0, 0],
       [0, 3 / 4, 0, 0],
       [2 / 9, 1 / 3, 4 / 9, 0]],
    b=[2 / 9, 1 / 3, 4 / 9, 0],
    b_hat=[7 / 24, 1 / 4, 1 / 3, 1 / 8],
    c=[0, 1 / 2, 3 / 4, 1],
    fsal=True,
)

#: Runge-Kutta-Fehlberg 4(5) pair (the classical reference).
FEHLBERG_45 = _tableau(
    "rkf45", 5, 4,
    a=[[0, 0, 0, 0, 0, 0],
       [1 / 4, 0, 0, 0, 0, 0],
       [3 / 32, 9 / 32, 0, 0, 0, 0],
       [1932 / 2197, -7200 / 2197, 7296 / 2197, 0, 0, 0],
       [439 / 216, -8, 3680 / 513, -845 / 4104, 0, 0],
       [-8 / 27, 2, -3544 / 2565, 1859 / 4104, -11 / 40, 0]],
    b=[16 / 135, 0, 6656 / 12825, 28561 / 56430, -9 / 50, 2 / 55],
    b_hat=[25 / 216, 0, 1408 / 2565, 2197 / 4104, -1 / 5, 0],
    c=[0, 1 / 4, 3 / 8, 12 / 13, 1, 1 / 2],
)

#: Cash-Karp 4(5) pair.
CASH_KARP_45 = _tableau(
    "cash-karp45", 5, 4,
    a=[[0, 0, 0, 0, 0, 0],
       [1 / 5, 0, 0, 0, 0, 0],
       [3 / 40, 9 / 40, 0, 0, 0, 0],
       [3 / 10, -9 / 10, 6 / 5, 0, 0, 0],
       [-11 / 54, 5 / 2, -70 / 27, 35 / 27, 0, 0],
       [1631 / 55296, 175 / 512, 575 / 13824, 44275 / 110592,
        253 / 4096, 0]],
    b=[37 / 378, 0, 250 / 621, 125 / 594, 0, 512 / 1771],
    b_hat=[2825 / 27648, 0, 18575 / 48384, 13525 / 55296,
           277 / 14336, 1 / 4],
    c=[0, 1 / 5, 3 / 10, 3 / 5, 1, 7 / 8],
)

#: Dormand-Prince 5(4) pair — the paper family's non-stiff workhorse.
DOPRI5 = _tableau(
    "dopri5", 5, 4,
    a=[[0, 0, 0, 0, 0, 0, 0],
       [1 / 5, 0, 0, 0, 0, 0, 0],
       [3 / 40, 9 / 40, 0, 0, 0, 0, 0],
       [44 / 45, -56 / 15, 32 / 9, 0, 0, 0, 0],
       [19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729, 0, 0, 0],
       [9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176,
        -5103 / 18656, 0, 0],
       [35 / 384, 0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0]],
    b=[35 / 384, 0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0],
    b_hat=[5179 / 57600, 0, 7571 / 16695, 393 / 640, -92097 / 339200,
           187 / 2100, 1 / 40],
    c=[0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1, 1],
    fsal=True,
)

#: Coefficients of the quartic dense-output interpolant of DOPRI5
#: (Hairer, Norsett & Wanner, Solving ODEs I). Continuous extension:
#: y(t + theta h) = y + h * sum_i k_i * P_i(theta), with P_i expressed
#: below through the d_i correction coefficients.
DOPRI5_DENSE_D = np.array([
    -12715105075.0 / 11282082432.0,
    0.0,
    87487479700.0 / 32700410799.0,
    -10690763975.0 / 1880347072.0,
    701980252875.0 / 199316789632.0,
    -1453857185.0 / 822651844.0,
    69997945.0 / 29380423.0,
])

TABLEAUS = {
    tableau.name: tableau
    for tableau in (BOGACKI_SHAMPINE_23, FEHLBERG_45, CASH_KARP_45, DOPRI5)
}
