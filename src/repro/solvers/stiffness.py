"""Stiffness estimation utilities.

The routing heuristic of the simulator family classifies each
simulation before integrating it: the dominant eigenvalue of the
Jacobian at the initial state is estimated by power iteration, and
simulations whose spectral radius exceeds a threshold (default 500) are
sent to the implicit Radau IIA method, the rest to DOPRI5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StiffnessEstimate:
    """Result of a spectral-radius estimation.

    Attributes
    ----------
    spectral_radius:
        Estimated magnitude of the dominant Jacobian eigenvalue; for a
        batch, shape (B,).
    converged:
        Whether the power iteration reached its tolerance.
    iterations:
        Power-iteration count actually used.
    """

    spectral_radius: np.ndarray
    converged: np.ndarray
    iterations: int


def power_iteration(matrices: np.ndarray, max_iterations: int = 50,
                    tol: float = 1e-3,
                    seed: int = 0) -> StiffnessEstimate:
    """Estimate the spectral radius of a batch of square matrices.

    ``matrices`` has shape (B, N, N) (or (N, N), treated as B=1).
    The estimate is the Rayleigh-quotient magnitude of the dominant
    eigenvalue; complex-conjugate dominant pairs make the plain power
    iteration oscillate, so convergence is measured on the magnitude.
    """
    single = matrices.ndim == 2
    if single:
        matrices = matrices[None]
    batch, n, _ = matrices.shape
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((batch, n))
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True) + 1e-300
    estimate = np.zeros(batch)
    converged = np.zeros(batch, dtype=bool)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        products = np.einsum("bij,bj->bi", matrices, vectors)
        norms = np.linalg.norm(products, axis=1)
        new_estimate = norms
        done = np.abs(new_estimate - estimate) <= tol * np.maximum(
            new_estimate, 1e-30)
        converged |= done
        estimate = new_estimate
        safe = norms > 1e-300
        vectors = np.where(safe[:, None], products / (norms[:, None] + 1e-300),
                           vectors)
        if np.all(converged):
            break
    return StiffnessEstimate(estimate, converged, iterations)


def power_iteration_matvec(matvec, states: np.ndarray,
                           max_iterations: int = 20, tol: float = 5e-2,
                           seed: int = 0,
                           epsilon: float = 1e-7) -> StiffnessEstimate:
    """Matrix-free spectral-radius estimation via Jacobian action.

    ``matvec(directions)`` must return J_b . directions[b] for every
    simulation b — typically implemented with one batched
    finite-difference RHS evaluation per iteration,
    (f(x + eps v) - f(x)) / eps, so the probe never materializes the
    (B, N, N) Jacobians. This is the router's production probe; the
    dense :func:`power_iteration` remains as the reference.
    """
    del epsilon  # the caller's matvec owns the differencing step
    batch, n = states.shape
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((batch, n))
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True) + 1e-300
    estimate = np.zeros(batch)
    converged = np.zeros(batch, dtype=bool)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        products = matvec(vectors)
        norms = np.linalg.norm(products, axis=1)
        done = np.abs(norms - estimate) <= tol * np.maximum(norms, 1e-30)
        converged |= done
        estimate = norms
        safe = norms > 1e-300
        vectors = np.where(safe[:, None],
                           products / (norms[:, None] + 1e-300), vectors)
        if np.all(converged):
            break
    return StiffnessEstimate(estimate, converged, iterations)


def spectral_radius(matrix: np.ndarray, **kwargs) -> float:
    """Spectral-radius estimate of one matrix."""
    return float(power_iteration(matrix, **kwargs).spectral_radius[0])


def classify_stiffness(matrices: np.ndarray, threshold: float = 500.0,
                       **kwargs) -> np.ndarray:
    """Boolean stiff/non-stiff classification for a batch of Jacobians."""
    estimate = power_iteration(matrices, **kwargs)
    return estimate.spectral_radius > threshold


def stiffness_ratio(matrix: np.ndarray) -> float:
    """Exact stiffness ratio max|Re(lambda)| / min|Re(lambda)|.

    Uses a dense eigendecomposition, so it is intended for diagnostics
    and tests rather than the hot path. Eigenvalues with negligible real
    part are ignored in the denominator.
    """
    eigenvalues = np.linalg.eigvals(matrix)
    real_magnitudes = np.abs(eigenvalues.real)
    significant = real_magnitudes > 1e-12 * max(1.0, real_magnitudes.max())
    if not np.any(significant):
        return 1.0
    selected = real_magnitudes[significant]
    return float(selected.max() / selected.min())
