"""Scalar Radau IIA order-5 implicit Runge-Kutta solver.

The three-stage Radau IIA collocation method (RADAU5 of Hairer & Wanner,
"Solving ODEs II") is the stiff workhorse of this paper family: it is
A-stable, L-stable and stiffly accurate. The nonlinear stage system is
solved by a simplified Newton iteration on variables transformed by the
real Schur-like similarity that splits the inverted Butcher matrix into
one real eigenvalue and one complex-conjugate pair, so each Newton
iteration costs one real and one complex back-substitution.

All transformation constants are derived *numerically* at import time
from the exact Butcher matrix, which keeps the implementation honest
(no hand-copied magic constants) and is verified by the test suite
against the known closed forms.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from .base import (DEFAULT_OPTIONS, FAILED, MAX_STEPS, SUCCESS, SolveResult,
                   SolverOptions, SolverStats, error_norm, initial_step_size,
                   validate_time_grid)

_SQRT6 = np.sqrt(6.0)

#: Radau IIA (s=3) nodes.
RADAU_C = np.array([(4.0 - _SQRT6) / 10.0, (4.0 + _SQRT6) / 10.0, 1.0])

#: Radau IIA (s=3) stage matrix.
RADAU_A = np.array([
    [(88.0 - 7.0 * _SQRT6) / 360.0,
     (296.0 - 169.0 * _SQRT6) / 1800.0,
     (-2.0 + 3.0 * _SQRT6) / 225.0],
    [(296.0 + 169.0 * _SQRT6) / 1800.0,
     (88.0 + 7.0 * _SQRT6) / 360.0,
     (-2.0 - 3.0 * _SQRT6) / 225.0],
    [(16.0 - _SQRT6) / 36.0,
     (16.0 + _SQRT6) / 36.0,
     1.0 / 9.0],
])

#: Weights of the embedded order-3 error estimator (Hairer & Wanner).
RADAU_E = np.array([-13.0 - 7.0 * _SQRT6, -13.0 + 7.0 * _SQRT6, -1.0]) / 3.0


def _derive_transformation() -> tuple[float, complex, np.ndarray, np.ndarray]:
    """Real similarity splitting inv(A) into its eigenvalue blocks.

    Returns (mu_real, mu_complex, T, TI) with
    TI @ inv(A) @ T = [[mu_real, 0, 0], [0, alpha, beta], [0, -beta, alpha]]
    and mu_complex = alpha - i beta, so the transformed Newton system
    decouples into one real and one complex linear solve.
    """
    a_inv = np.linalg.inv(RADAU_A)
    eigenvalues, eigenvectors = np.linalg.eig(a_inv)
    real_index = int(np.argmin(np.abs(eigenvalues.imag)))
    complex_index = next(i for i in range(3)
                         if i != real_index and eigenvalues[i].imag > 0.0)
    mu_real = float(eigenvalues[real_index].real)
    lam = eigenvalues[complex_index]
    mu_complex = complex(lam.real, -lam.imag)
    v_real = eigenvectors[:, real_index].real
    v_complex = eigenvectors[:, complex_index]
    transformation = np.column_stack(
        [v_real / v_real[-1],
         v_complex.real / np.abs(v_complex[-1]),
         v_complex.imag / np.abs(v_complex[-1])])
    return (mu_real, mu_complex, transformation,
            np.linalg.inv(transformation))


MU_REAL, MU_COMPLEX, RADAU_T, RADAU_TI = _derive_transformation()

#: Vandermonde solve matrix for the collocation dense-output polynomial:
#: row i of V is (c_i, c_i^2, c_i^3); Q = solve(V, Z) gives the theta^j+1
#: coefficients of the continuous extension.
_VANDERMONDE = np.vander(RADAU_C, 3, increasing=True) * RADAU_C[:, None]


class _CollocationPolynomial:
    """Continuous extension of one Radau step, used to predict stages."""

    def __init__(self, y_start: np.ndarray, stage_increments: np.ndarray) -> None:
        self._y_start = y_start
        self._coefficients = np.linalg.solve(_VANDERMONDE, stage_increments)

    def offset(self, theta: np.ndarray) -> np.ndarray:
        """w(theta) - y_start for (possibly >1) normalized times."""
        powers = np.vander(theta, 3, increasing=True) * theta[:, None]
        return powers.dot(self._coefficients)


class Radau5:
    """Adaptive Radau IIA order-5 solver for stiff systems.

    Parameters
    ----------
    options:
        Shared solver options; ``newton_max_iterations`` and
        ``newton_tol_factor`` control the simplified Newton iteration.
    reuse_jacobian:
        When True (default) the Jacobian is kept across steps until the
        Newton iteration converges too slowly; when False it is
        refreshed every step (the ablation bench measures the cost).
    """

    name = "radau5"

    def __init__(self, options: SolverOptions = DEFAULT_OPTIONS,
                 reuse_jacobian: bool = True) -> None:
        self.options = options
        self.reuse_jacobian = reuse_jacobian

    def solve(self, fun, t_span: tuple[float, float], y0: np.ndarray,
              t_eval: np.ndarray | None = None, jac=None) -> SolveResult:
        """Integrate a (stiff) IVP; ``jac(t, y)`` defaults to finite
        differences when not supplied."""
        options = self.options
        t_eval = validate_time_grid(t_span, t_eval)
        t0, t1 = float(t_span[0]), float(t_span[1])
        y = np.array(y0, dtype=np.float64)
        n = y.size
        stats = SolverStats()
        identity = np.eye(n)

        if jac is None:
            jac = _finite_difference_jacobian(fun, options, stats)

        newton_tol = max(10.0 * np.finfo(float).eps / options.rtol,
                         min(options.newton_tol_factor, options.rtol ** 0.5))
        max_newton = options.newton_max_iterations

        output = np.empty((t_eval.size, n))
        save_index = 0
        t = t0
        if t_eval[0] == t0:
            output[0] = y
            save_index = 1

        f_current = fun(t, y)
        stats.n_rhs_evaluations += 1
        if options.first_step is not None:
            h = options.first_step
        else:
            h = initial_step_size(fun, t, y, f_current, 5, options)
            stats.n_rhs_evaluations += 1
        max_step = min(options.max_step, t1 - t0)
        h = min(h, max_step)

        jacobian = jac(t, y)
        stats.n_jacobian_evaluations += 1
        jac_current = True
        lu_real = lu_complex = None
        h_factored = -1.0
        previous_poly: _CollocationPolynomial | None = None
        h_previous = h
        err_previous: float | None = None

        while t < t1 - 1e-14 * max(1.0, abs(t1)):
            if stats.n_steps >= options.max_steps:
                return SolveResult(t_eval[:save_index].copy(),
                                   output[:save_index].copy(), MAX_STEPS,
                                   stats, self.name,
                                   f"step budget exhausted at t={t:g}")
            h = min(h, t1 - t)
            if save_index < t_eval.size and t + h >= t_eval[save_index]:
                h = t_eval[save_index] - t
            if h <= abs(t) * 1e-15 or h < 1e-300:
                return SolveResult(t_eval[:save_index].copy(),
                                   output[:save_index].copy(), FAILED,
                                   stats, self.name,
                                   f"step size underflow at t={t:g}")
            stats.n_steps += 1

            if h != h_factored:
                lu_real = lu_factor(MU_REAL / h * identity - jacobian)
                lu_complex = lu_factor(MU_COMPLEX / h * identity
                                       - jacobian.astype(complex))
                stats.n_factorizations += 2
                h_factored = h

            if previous_poly is None:
                stage_guess = np.zeros((3, n))
            else:
                theta = 1.0 + (h / h_previous) * RADAU_C
                stage_guess = (previous_poly.offset(theta)
                               + (previous_poly._y_start - y))

            converged, n_iter, stage_increments, rate = self._newton(
                fun, t, y, h, stage_guess, lu_real, lu_complex,
                newton_tol, max_newton, stats)

            if not converged:
                if not jac_current:
                    jacobian = jac(t, y)
                    stats.n_jacobian_evaluations += 1
                    jac_current = True
                else:
                    h *= 0.5
                h_factored = -1.0
                stats.n_rejected += 1
                continue

            y_new = y + stage_increments[2]
            scaled_stage_error = stage_increments.T.dot(RADAU_E) / h
            error = lu_solve(lu_real, f_current + scaled_stage_error)
            err = error_norm(error, y, y_new, options)
            if err >= 1.0:
                # Hairer's refined estimate after a first rejection.
                f_refined = fun(t, y + error)
                stats.n_rhs_evaluations += 1
                error = lu_solve(lu_real, f_refined + scaled_stage_error)
                err = error_norm(error, y, y_new, options)

            safety = (options.safety * (2 * max_newton + 1)
                      / (2 * max_newton + n_iter))
            if err >= 1.0 or not np.all(np.isfinite(y_new)):
                stats.n_rejected += 1
                if np.isfinite(err):
                    h *= np.clip(safety * err ** -0.25,
                                 options.min_step_factor, 1.0)
                else:
                    h *= options.min_step_factor
                continue

            stats.n_accepted += 1
            previous_poly = _CollocationPolynomial(y.copy(),
                                                   stage_increments.copy())
            h_previous = h
            t = t + h
            y = y_new
            f_current = fun(t, y)
            stats.n_rhs_evaluations += 1
            if save_index < t_eval.size and \
                    abs(t - t_eval[save_index]) <= 1e-12 * max(1.0, abs(t)):
                output[save_index] = y
                save_index += 1

            factor = min(options.max_step_factor, safety * err ** -0.25)
            if err_previous is not None and err > 0.0:
                factor = min(factor, safety * (err_previous / err) ** 0.1
                             * err ** -0.25)
            err_previous = max(err, 1e-10)
            h_new = min(h * max(factor, options.min_step_factor), max_step)

            refresh = (self.reuse_jacobian
                       and (n_iter > 2 and rate > 1e-3)) \
                or not self.reuse_jacobian
            if refresh:
                jacobian = jac(t, y)
                stats.n_jacobian_evaluations += 1
                jac_current = True
                h_factored = -1.0
            else:
                jac_current = False
            # Avoid refactorizing for negligible step changes.
            if abs(h_new - h) > 0.1 * h:
                h = h_new
            # else keep h (and the factorization) as is.

        while save_index < t_eval.size and \
                abs(t_eval[save_index] - t1) <= 1e-12 * max(1.0, abs(t1)):
            output[save_index] = y
            save_index += 1
        return SolveResult(t_eval.copy(), output, SUCCESS, stats, self.name)

    def _newton(self, fun, t, y, h, stage_guess, lu_real, lu_complex,
                tol, max_iterations, stats):
        """Simplified Newton on the transformed stage system."""
        n = y.size
        increments = stage_guess
        transformed = RADAU_TI.dot(increments.reshape(3, n))
        stage_times = t + RADAU_C * h
        rate = np.inf
        norm_previous: float | None = None
        stage_derivatives = np.empty((3, n))
        for iteration in range(max_iterations):
            for i in range(3):
                stage_derivatives[i] = fun(stage_times[i], y + increments[i])
            stats.n_rhs_evaluations += 3
            stats.n_newton_iterations += 1
            if not np.all(np.isfinite(stage_derivatives)):
                return False, iteration + 1, increments, rate
            residual_real = (RADAU_TI[0].dot(stage_derivatives)
                             - MU_REAL / h * transformed[0])
            residual_complex = (
                (RADAU_TI[1] + 1j * RADAU_TI[2]).dot(stage_derivatives)
                - MU_COMPLEX / h * (transformed[1] + 1j * transformed[2]))
            delta_real = lu_solve(lu_real, residual_real)
            delta_complex = lu_solve(lu_complex, residual_complex)
            delta = np.vstack([delta_real, delta_complex.real,
                               delta_complex.imag])
            transformed = transformed + delta
            increments = RADAU_T.dot(transformed)
            scale = (self.options.atol
                     + np.abs(y) * self.options.rtol)
            delta_norm = float(np.sqrt(np.mean((delta / scale) ** 2)))
            if norm_previous is not None and norm_previous > 0.0:
                rate = delta_norm / norm_previous
                if rate >= 1.0:
                    return False, iteration + 1, increments, rate
                remaining = max_iterations - iteration - 1
                if rate ** remaining / (1.0 - rate) * delta_norm > tol:
                    return False, iteration + 1, increments, rate
                if rate / (1.0 - rate) * delta_norm < tol:
                    return True, iteration + 1, increments, rate
            elif delta_norm < tol:
                return True, iteration + 1, increments, min(rate, 0.0)
            norm_previous = delta_norm
        return False, max_iterations, increments, rate


def _finite_difference_jacobian(fun, options: SolverOptions,
                                stats: SolverStats):
    """Forward-difference Jacobian callable with evaluation counting."""

    def jacobian(t: float, y: np.ndarray) -> np.ndarray:
        f0 = fun(t, y)
        stats.n_rhs_evaluations += 1 + y.size
        result = np.empty((y.size, y.size))
        for j in range(y.size):
            step = max(1e-8, 1e-8 * abs(y[j]))
            perturbed = y.copy()
            perturbed[j] += step
            result[:, j] = (fun(t, perturbed) - f0) / step
        return result

    return jacobian
