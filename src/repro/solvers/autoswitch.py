"""Auto-switching non-stiff/stiff driver (DOPRI5 -> Radau IIA).

This mirrors the method-selection architecture of the simulator family:
a cheap spectral-radius probe routes clearly-stiff problems directly to
Radau IIA; everything else starts on DOPRI5, whose built-in Hairer
stiffness test can abort the explicit integration mid-run, in which
case the driver resumes the remaining time span with Radau IIA.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from .base import (DEFAULT_OPTIONS, MAX_STEPS, SUCCESS, SolveResult,
                   SolverOptions)
from .bdf import BDF
from .explicit import ExplicitRungeKutta
from .radau5 import Radau5
from .stiffness import spectral_radius
from .tableaus import DOPRI5

STIFF_SOLVERS = ("radau5", "bdf")


class AutoSwitchSolver:
    """Integrate with DOPRI5, escalating to an implicit method on
    stiffness.

    Parameters
    ----------
    options:
        Shared solver options; ``options.stiffness_threshold`` is the
        spectral-radius cutoff of the initial routing probe.
    probe_jacobian:
        When True (default) and a Jacobian callable is available, the
        initial state's spectral radius decides the starting method.
    stiff_solver:
        Which implicit method handles the stiff phase: ``"radau5"``
        (default, the paper family's choice) or ``"bdf"`` (the
        LSODA-style multistep alternative) — an ablation axis.
    """

    name = "autoswitch"

    def __init__(self, options: SolverOptions = DEFAULT_OPTIONS,
                 probe_jacobian: bool = True,
                 stiff_solver: str = "radau5") -> None:
        if stiff_solver not in STIFF_SOLVERS:
            raise SolverError(f"unknown stiff solver {stiff_solver!r}; "
                              f"expected one of {STIFF_SOLVERS}")
        self.options = options
        self.probe_jacobian = probe_jacobian
        self.stiff_solver = stiff_solver

    def _make_stiff_solver(self, options: SolverOptions):
        if self.stiff_solver == "bdf":
            return BDF(options)
        return Radau5(options)

    def solve(self, fun, t_span: tuple[float, float], y0: np.ndarray,
              t_eval: np.ndarray | None = None, jac=None) -> SolveResult:
        t0, t1 = float(t_span[0]), float(t_span[1])
        y0 = np.asarray(y0, dtype=np.float64)

        start_stiff = False
        if self.probe_jacobian and jac is not None:
            radius = spectral_radius(np.asarray(jac(t0, y0)))
            start_stiff = radius > self.options.stiffness_threshold
        if start_stiff:
            result = self._make_stiff_solver(self.options).solve(
                fun, t_span, y0, t_eval, jac=jac)
            result.method = f"{self.name}({self.stiff_solver})"
            return result

        explicit = ExplicitRungeKutta(DOPRI5, self.options,
                                      abort_on_stiffness=True)
        first = explicit.solve(fun, t_span, y0, t_eval)
        if first.status in (SUCCESS, MAX_STEPS) or first.t_stop is None:
            first.method = f"{self.name}(dopri5)"
            return first

        # Stiffness abort (or failure with resume info): continue the
        # remaining span with Radau IIA from the abort state.
        t_resume = first.t_stop
        remaining_mask = (t_eval is None or
                          np.asarray(t_eval, dtype=np.float64) > t_resume)
        if t_eval is None:
            remaining_eval = None
        else:
            t_eval = np.asarray(t_eval, dtype=np.float64)
            remaining_eval = t_eval[t_eval > t_resume + 1e-15]
            if remaining_eval.size == 0:
                remaining_eval = np.array([t1])
        del remaining_mask
        stiff_options = self.options.replace(
            max_steps=max(1, self.options.max_steps - first.stats.n_steps))
        second = self._make_stiff_solver(stiff_options).solve(
            fun, (t_resume, t1), first.y_stop, remaining_eval, jac=jac)

        stats = first.stats
        stats.merge(second.stats)
        if t_eval is None:
            merged_t = second.t
            merged_y = second.y
        else:
            merged_t = np.concatenate([first.t, second.t])
            merged_y = (np.vstack([first.y, second.y]) if first.y.size
                        else second.y)
        return SolveResult(merged_t, merged_y, second.status, stats,
                           f"{self.name}(dopri5->{self.stiff_solver})",
                           second.message, True, second.t_stop,
                           second.y_stop)
