"""CPU reference ODE solvers: explicit RK family, Radau IIA, baselines."""

from .autoswitch import AutoSwitchSolver
from .bdf import BDF
from .base import (DEFAULT_OPTIONS, FAILED, MAX_STEPS, STIFF_DETECTED,
                   SUCCESS, SolveResult, SolverOptions, SolverStats,
                   StepController, error_norm, initial_step_size,
                   validate_time_grid)
from .explicit import Dopri5Interpolant, ExplicitRungeKutta
from .radau5 import (MU_COMPLEX, MU_REAL, RADAU_A, RADAU_C, RADAU_E,
                     RADAU_T, RADAU_TI, Radau5)
from .scipy_backends import ScipyLSODA, ScipyVODE, make_cpu_baseline
from .stiffness import (StiffnessEstimate, classify_stiffness,
                        power_iteration, spectral_radius, stiffness_ratio)
from .tableaus import (BOGACKI_SHAMPINE_23, CASH_KARP_45, DOPRI5,
                       FEHLBERG_45, TABLEAUS, ButcherTableau)

__all__ = [
    "AutoSwitchSolver", "BDF",
    "DEFAULT_OPTIONS", "FAILED", "MAX_STEPS", "STIFF_DETECTED", "SUCCESS",
    "SolveResult", "SolverOptions", "SolverStats", "StepController",
    "error_norm", "initial_step_size", "validate_time_grid",
    "Dopri5Interpolant", "ExplicitRungeKutta",
    "MU_COMPLEX", "MU_REAL", "RADAU_A", "RADAU_C", "RADAU_E", "RADAU_T",
    "RADAU_TI", "Radau5",
    "ScipyLSODA", "ScipyVODE", "make_cpu_baseline",
    "StiffnessEstimate", "classify_stiffness", "power_iteration",
    "spectral_radius", "stiffness_ratio",
    "BOGACKI_SHAMPINE_23", "CASH_KARP_45", "DOPRI5", "FEHLBERG_45",
    "TABLEAUS", "ButcherTableau",
]
