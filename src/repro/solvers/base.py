"""Shared definitions for the ODE solver stack.

All solvers in this package — scalar CPU references and batched
GPU-style engines — share the same option set and result schema, and
follow the tolerance convention of the paper family: absolute error
tolerance 1e-12, relative error tolerance 1e-6, and a cap of 1e4 steps
per simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import SolverError

#: Status codes shared by every solver.
SUCCESS = "success"
MAX_STEPS = "max_steps"
FAILED = "failed"
STIFF_DETECTED = "stiff_detected"


@dataclass(frozen=True)
class SolverOptions:
    """Numerical integration options.

    Attributes
    ----------
    rtol, atol:
        Relative / absolute local error tolerances (paper defaults
        1e-6 / 1e-12).
    max_steps:
        Maximum accepted+rejected steps per simulation.
    first_step:
        Initial step size; ``None`` selects it automatically.
    max_step:
        Upper bound on the step size (default: span of the integration).
    min_step_factor, max_step_factor:
        Clamp on the per-step size change ratio.
    safety:
        Step controller safety factor.
    newton_max_iterations, newton_tol_factor:
        Implicit-stage Newton controls (Radau).
    stiffness_threshold:
        Dominant-eigenvalue magnitude above which a system is routed to
        the stiff method by the auto-switching drivers.
    """

    rtol: float = 1e-6
    atol: float = 1e-12
    max_steps: int = 10_000
    first_step: float | None = None
    max_step: float = np.inf
    min_step_factor: float = 0.2
    max_step_factor: float = 8.0
    safety: float = 0.9
    newton_max_iterations: int = 7
    newton_tol_factor: float = 0.03
    stiffness_threshold: float = 500.0

    def __post_init__(self) -> None:
        if not (self.rtol > 0.0 and self.atol >= 0.0):
            raise SolverError(
                f"invalid tolerances rtol={self.rtol}, atol={self.atol}")
        if self.max_steps < 1:
            raise SolverError(f"max_steps must be >= 1, got {self.max_steps}")
        if self.first_step is not None and not (self.first_step > 0.0):
            raise SolverError(f"first_step must be > 0, got {self.first_step}")
        if not (0.0 < self.min_step_factor < 1.0 <= self.max_step_factor):
            raise SolverError("step factor clamps must satisfy "
                              "0 < min < 1 <= max")

    def replace(self, **changes) -> "SolverOptions":
        """Copy with selected fields changed."""
        return replace(self, **changes)


DEFAULT_OPTIONS = SolverOptions()


@dataclass
class SolverStats:
    """Work counters accumulated during one integration."""

    n_steps: int = 0
    n_accepted: int = 0
    n_rejected: int = 0
    n_rhs_evaluations: int = 0
    n_jacobian_evaluations: int = 0
    n_factorizations: int = 0
    n_newton_iterations: int = 0

    def merge(self, other: "SolverStats") -> None:
        self.n_steps += other.n_steps
        self.n_accepted += other.n_accepted
        self.n_rejected += other.n_rejected
        self.n_rhs_evaluations += other.n_rhs_evaluations
        self.n_jacobian_evaluations += other.n_jacobian_evaluations
        self.n_factorizations += other.n_factorizations
        self.n_newton_iterations += other.n_newton_iterations


@dataclass
class SolveResult:
    """Result of integrating one initial-value problem.

    Attributes
    ----------
    t:
        Save-time grid, shape (T,).
    y:
        States at the save times, shape (T, N).
    status:
        One of :data:`SUCCESS`, :data:`MAX_STEPS`, :data:`FAILED`.
    stats:
        Work counters.
    method:
        Name of the integration method that produced the result.
    message:
        Human-readable diagnostic for non-success statuses.
    """

    t: np.ndarray
    y: np.ndarray
    status: str
    stats: SolverStats = field(default_factory=SolverStats)
    method: str = ""
    message: str = ""
    stiffness_detected: bool = False
    #: Internal integrator state at early termination (stiffness abort,
    #: failure); lets a switching driver resume from where we stopped.
    t_stop: float | None = None
    y_stop: np.ndarray | None = None

    @property
    def success(self) -> bool:
        return self.status == SUCCESS

    def final_state(self) -> np.ndarray:
        return self.y[-1]


def error_norm(error: np.ndarray, reference: np.ndarray,
               candidate: np.ndarray, options: SolverOptions) -> float:
    """Hairer-style scaled RMS norm of a local error estimate."""
    scale = options.atol + options.rtol * np.maximum(np.abs(reference),
                                                     np.abs(candidate))
    return float(np.sqrt(np.mean((error / scale) ** 2)))


def validate_time_grid(t_span: tuple[float, float],
                       t_eval: np.ndarray | None) -> np.ndarray:
    """Check and normalize the save grid against the integration span."""
    t0, t1 = float(t_span[0]), float(t_span[1])
    if not (t1 > t0):
        raise SolverError(f"t_span must be increasing, got {t_span}")
    if t_eval is None:
        t_eval = np.array([t0, t1])
    t_eval = np.asarray(t_eval, dtype=np.float64)
    if t_eval.ndim != 1 or t_eval.size == 0:
        raise SolverError("t_eval must be a non-empty 1-D array")
    if np.any(np.diff(t_eval) <= 0.0):
        raise SolverError("t_eval must be strictly increasing")
    if t_eval[0] < t0 - 1e-15 or t_eval[-1] > t1 + 1e-12 * max(1.0, abs(t1)):
        raise SolverError(
            f"t_eval range [{t_eval[0]}, {t_eval[-1]}] exceeds "
            f"t_span {t_span}")
    return t_eval


def initial_step_size(fun, t0: float, y0: np.ndarray, f0: np.ndarray,
                      order: int, options: SolverOptions,
                      direction: float = 1.0) -> float:
    """Hairer's starting-step heuristic (Solving ODEs I, II.4).

    ``fun`` is called once; callers should count one extra RHS
    evaluation.
    """
    scale = options.atol + np.abs(y0) * options.rtol
    d0 = float(np.sqrt(np.mean((y0 / scale) ** 2)))
    d1 = float(np.sqrt(np.mean((f0 / scale) ** 2)))
    if d0 < 1e-5 or d1 < 1e-5:
        h0 = 1e-6
    else:
        h0 = 0.01 * d0 / d1
    y1 = y0 + h0 * direction * f0
    f1 = fun(t0 + h0 * direction, y1)
    d2 = float(np.sqrt(np.mean(((f1 - f0) / scale) ** 2))) / h0
    if max(d1, d2) <= 1e-15:
        h1 = max(1e-6, h0 * 1e-3)
    else:
        h1 = (0.01 / max(d1, d2)) ** (1.0 / (order + 1))
    return min(100.0 * h0, h1, options.max_step)


class StepController:
    """Elementary and PI step-size controllers.

    The PI (proportional-integral, Gustafsson) controller damps the step
    oscillations of the elementary controller on mildly stiff problems;
    both are exposed so the ablation bench can compare them.
    """

    def __init__(self, error_order: int, options: SolverOptions,
                 use_pi: bool = True, beta: float = 0.04) -> None:
        self.error_exponent = -1.0 / (error_order + 1)
        self.options = options
        self.use_pi = use_pi
        self.beta = beta
        self._previous_error: float | None = None

    def factor(self, err_norm: float) -> float:
        """Step multiplier proposed for the next step."""
        options = self.options
        if err_norm == 0.0:
            return options.max_step_factor
        factor = options.safety * err_norm ** self.error_exponent
        if self.use_pi and self._previous_error is not None and err_norm <= 1.0:
            factor *= self._previous_error ** self.beta / err_norm ** self.beta
        return float(np.clip(factor, options.min_step_factor,
                             options.max_step_factor))

    def record_accepted(self, err_norm: float) -> None:
        self._previous_error = max(err_norm, 1e-10)
