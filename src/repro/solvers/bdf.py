"""Variable-order BDF multistep solver (orders 1-5).

Our own implementation of the quasi-constant-step, fixed-leading-
coefficient Backward Differentiation Formulae — the algorithm family
behind the LSODA/VODE stiff modes this paper's simulators are
benchmarked against. Implementing the baseline from scratch (rather
than only wrapping ODEPACK) lets the test suite validate the whole
stiff tool chain end to end.

The formulation follows the classical presentation (Byrne & Hindmarsh;
Shampine & Reichelt's ode15s; SciPy's BDF uses the same scheme): the
solution history is carried as a table of backward differences D,
step-size changes rescale D with the Jacobian-free R(factor) matrix,
each step solves the implicit BDF equation with a simplified Newton
iteration, and the order is adapted by comparing the error estimates
of orders k-1, k, k+1.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from .base import (DEFAULT_OPTIONS, FAILED, MAX_STEPS, SUCCESS, SolveResult,
                   SolverOptions, SolverStats, error_norm,
                   initial_step_size, validate_time_grid)

MAX_ORDER = 5
NEWTON_MAXITER = 4

#: Fixed-leading-coefficient correction constants (order-indexed).
KAPPA = np.array([0.0, -0.1850, -1.0 / 9.0, -0.0823, -0.0415, 0.0])
GAMMA = np.hstack(([0.0], np.cumsum(1.0 / np.arange(1, MAX_ORDER + 1))))
ALPHA = (1.0 - KAPPA) * GAMMA
ERROR_CONST = KAPPA * GAMMA + 1.0 / np.arange(1, MAX_ORDER + 2)


def change_difference_array(differences: np.ndarray, order: int,
                            factor: float) -> None:
    """Rescale the backward-difference table for a step-size change."""
    rescale = _r_matrix(order, factor).dot(_r_matrix(order, 1.0))
    differences[:order + 1] = rescale.T.dot(differences[:order + 1])


def _r_matrix(order: int, factor: float) -> np.ndarray:
    row = np.arange(1, order + 1)[:, None]
    col = np.arange(1, order + 1)[None, :]
    matrix = np.zeros((order + 1, order + 1))
    matrix[1:, 1:] = (row - 1 - factor * col) / row
    matrix[0] = 1.0
    return np.cumprod(matrix, axis=0)


class BDF:
    """Adaptive-order BDF solver for stiff systems.

    Parameters
    ----------
    options:
        Shared solver options (rtol/atol/max_steps/...).
    max_order:
        Cap on the BDF order (1..5); order 1-2 BDF is A-stable, higher
        orders trade stability angle for accuracy.
    """

    name = "bdf"

    def __init__(self, options: SolverOptions = DEFAULT_OPTIONS,
                 max_order: int = MAX_ORDER) -> None:
        if not (1 <= max_order <= MAX_ORDER):
            raise ValueError(f"max_order must be in 1..{MAX_ORDER}")
        self.options = options
        self.max_order = max_order

    def solve(self, fun, t_span: tuple[float, float], y0: np.ndarray,
              t_eval: np.ndarray | None = None, jac=None) -> SolveResult:
        options = self.options
        t_eval = validate_time_grid(t_span, t_eval)
        t0, t1 = float(t_span[0]), float(t_span[1])
        y = np.array(y0, dtype=np.float64)
        n = y.size
        stats = SolverStats()
        identity = np.eye(n)

        if jac is None:
            jac = _finite_difference_jacobian(fun, stats)

        output = np.empty((t_eval.size, n))
        save_index = 0
        t = t0
        if t_eval[0] == t0:
            output[0] = y
            save_index = 1

        f0 = fun(t, y)
        stats.n_rhs_evaluations += 1
        if options.first_step is not None:
            h = options.first_step
        else:
            h = initial_step_size(fun, t, y, f0, 1, options)
            stats.n_rhs_evaluations += 1
        max_step = min(options.max_step, t1 - t0)
        h = min(h, max_step)

        differences = np.zeros((MAX_ORDER + 3, n))
        differences[0] = y
        differences[1] = f0 * h
        order = 1
        steps_at_order = 0

        jacobian = jac(t, y)
        stats.n_jacobian_evaluations += 1
        jac_current = True
        lu = None
        c_factored = -1.0
        newton_tol = max(10 * np.finfo(float).eps / options.rtol,
                         min(0.03, options.rtol ** 0.5))

        while t < t1 - 1e-14 * max(1.0, abs(t1)):
            if stats.n_steps >= options.max_steps:
                return SolveResult(t_eval[:save_index].copy(),
                                   output[:save_index].copy(), MAX_STEPS,
                                   stats, self.name,
                                   f"step budget exhausted at t={t:g}")
            if h > t1 - t:
                change_difference_array(differences, order, (t1 - t) / h)
                h = t1 - t
                steps_at_order = 0
            if save_index < t_eval.size and t + h >= t_eval[save_index]:
                target = t_eval[save_index] - t
                if target < h * (1.0 - 1e-12):
                    change_difference_array(differences, order, target / h)
                    h = target
                    steps_at_order = 0
            if h <= abs(t) * 1e-15 or h < 1e-300:
                return SolveResult(t_eval[:save_index].copy(),
                                   output[:save_index].copy(), FAILED,
                                   stats, self.name,
                                   f"step size underflow at t={t:g}")
            stats.n_steps += 1

            t_new = t + h
            y_predict = differences[:order + 1].sum(axis=0)
            scale = options.atol + options.rtol * np.abs(y_predict)
            psi = differences[1:order + 1].T.dot(
                GAMMA[1:order + 1]) / ALPHA[order]
            c = h / ALPHA[order]
            if lu is None or c != c_factored:
                lu = lu_factor(identity - c * jacobian)
                stats.n_factorizations += 1
                c_factored = c

            converged, n_iter, y_new, correction = self._newton(
                fun, t_new, y_predict, c, psi, lu, scale, newton_tol,
                stats)
            if not converged:
                if not jac_current:
                    jacobian = jac(t, y)
                    stats.n_jacobian_evaluations += 1
                    jac_current = True
                    lu = None
                else:
                    change_difference_array(differences, order, 0.5)
                    h *= 0.5
                    lu = None
                    steps_at_order = 0
                stats.n_rejected += 1
                continue

            safety = 0.9 * (2 * NEWTON_MAXITER + 1) / \
                (2 * NEWTON_MAXITER + n_iter)
            error = ERROR_CONST[order] * correction
            err = error_norm(error, y, y_new, options)
            if err >= 1.0 or not np.all(np.isfinite(y_new)):
                stats.n_rejected += 1
                factor = options.min_step_factor
                if np.isfinite(err) and err > 0:
                    factor = max(options.min_step_factor,
                                 safety * err ** (-1.0 / (order + 1)))
                change_difference_array(differences, order, factor)
                h *= factor
                lu = None
                steps_at_order = 0
                continue

            stats.n_accepted += 1
            t = t_new
            y = y_new
            jac_current = False
            steps_at_order += 1

            # Update the backward-difference table.
            differences[order + 2] = correction - differences[order + 1]
            differences[order + 1] = correction
            for i in reversed(range(order + 1)):
                differences[i] += differences[i + 1]

            if save_index < t_eval.size and \
                    abs(t - t_eval[save_index]) <= 1e-12 * max(1.0, abs(t)):
                output[save_index] = y
                save_index += 1

            if steps_at_order < order + 1:
                continue
            # Order adaptation: compare error estimates at k-1, k, k+1.
            scale = options.atol + options.rtol * np.abs(y)
            error_m = (ERROR_CONST[order - 1] * differences[order]
                       if order > 1 else None)
            error_p = (ERROR_CONST[order + 1] * differences[order + 2]
                       if order < self.max_order else None)

            def _norm(vector):
                return float(np.sqrt(np.mean((vector / scale) ** 2)))

            norms = [np.inf, max(_norm(error), 1e-10), np.inf]
            if error_m is not None:
                norms[0] = max(_norm(error_m), 1e-10)
            if error_p is not None:
                norms[2] = max(_norm(error_p), 1e-10)
            orders = np.array([order - 1, order, order + 1])
            with np.errstate(divide="ignore", over="ignore"):
                factors = np.array([
                    norms[i] ** (-1.0 / (orders[i] + 1))
                    if np.isfinite(norms[i]) else 0.0
                    for i in range(3)])
            best = int(np.argmax(factors))
            new_order = int(orders[best])
            factor = min(options.max_step_factor, safety * factors[best])
            factor = max(factor, options.min_step_factor)
            order = new_order
            change_difference_array(differences, order, factor)
            h = min(h * factor, max_step)
            lu = None
            steps_at_order = 0

        while save_index < t_eval.size and \
                abs(t_eval[save_index] - t1) <= 1e-12 * max(1.0, abs(t1)):
            output[save_index] = y
            save_index += 1
        return SolveResult(t_eval.copy(), output, SUCCESS, stats, self.name)

    def _newton(self, fun, t_new, y_predict, c, psi, lu, scale, tol,
                stats):
        y = y_predict.copy()
        correction = np.zeros_like(y)
        rate = None
        norm_previous = None
        for iteration in range(NEWTON_MAXITER):
            f = fun(t_new, y)
            stats.n_rhs_evaluations += 1
            stats.n_newton_iterations += 1
            if not np.all(np.isfinite(f)):
                return False, iteration + 1, y, correction
            delta = lu_solve(lu, c * f - psi - correction)
            delta_norm = float(np.sqrt(np.mean((delta / scale) ** 2)))
            if norm_previous is not None and norm_previous > 0:
                rate = delta_norm / norm_previous
                if rate >= 1.0 or rate ** (NEWTON_MAXITER - iteration) / \
                        (1 - rate) * delta_norm > tol:
                    return False, iteration + 1, y, correction
            y = y + delta
            correction = correction + delta
            if delta_norm == 0.0 or (rate is not None
                                     and rate / (1 - rate)
                                     * delta_norm < tol):
                return True, iteration + 1, y, correction
            norm_previous = delta_norm
        return False, NEWTON_MAXITER, y, correction


def _finite_difference_jacobian(fun, stats: SolverStats):
    def jacobian(t: float, y: np.ndarray) -> np.ndarray:
        f0 = fun(t, y)
        stats.n_rhs_evaluations += 1 + y.size
        result = np.empty((y.size, y.size))
        for j in range(y.size):
            step = max(1e-8, 1e-8 * abs(y[j]))
            perturbed = y.copy()
            perturbed[j] += step
            result[:, j] = (fun(t, perturbed) - f0) / step
        return result

    return jacobian
