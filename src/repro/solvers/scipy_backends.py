"""CPU baseline solvers: SciPy's LSODA and VODE wrappers.

The paper family benchmarks its GPU engines against "vanilla" LSODA and
VODE as provided by SciPy (wrapping the Fortran ODEPACK solvers), which
is exactly what these adapters expose — normalized to this package's
:class:`~repro.solvers.base.SolveResult` schema, with RHS-evaluation
counting so workload statistics are comparable across engines.
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import ode

from ..errors import SolverError
from .base import (DEFAULT_OPTIONS, FAILED, SUCCESS, SolveResult,
                   SolverOptions, SolverStats, validate_time_grid)


class _CountingFunction:
    """Wrap f(t, y) counting invocations."""

    def __init__(self, fun) -> None:
        self._fun = fun
        self.count = 0

    def __call__(self, t, y):
        self.count += 1
        return self._fun(t, y)


class _ScipyOdeSolver:
    """Common driver for the scipy.integrate.ode integrators."""

    integrator_name = ""
    integrator_kwargs: dict = {}

    def __init__(self, options: SolverOptions = DEFAULT_OPTIONS) -> None:
        self.options = options

    @property
    def name(self) -> str:
        return self.integrator_name

    def solve(self, fun, t_span: tuple[float, float], y0: np.ndarray,
              t_eval: np.ndarray | None = None, jac=None) -> SolveResult:
        options = self.options
        t_eval = validate_time_grid(t_span, t_eval)
        t0 = float(t_span[0])
        y0 = np.asarray(y0, dtype=np.float64)

        counting_fun = _CountingFunction(fun)
        counting_jac = _CountingFunction(jac) if jac is not None else None
        integrator = ode(counting_fun, counting_jac)
        integrator.set_integrator(
            self.integrator_name, rtol=options.rtol, atol=options.atol,
            nsteps=options.max_steps, **self.integrator_kwargs)
        integrator.set_initial_value(y0, t0)

        output = np.empty((t_eval.size, y0.size))
        save_index = 0
        if t_eval[0] == t0:
            output[0] = y0
            save_index = 1
        stats = SolverStats()
        status = SUCCESS
        message = ""
        for target in t_eval[save_index:]:
            state = integrator.integrate(target)
            if not integrator.successful():
                status = FAILED
                message = f"{self.integrator_name} failed at t={target:g}"
                break
            output[save_index] = state
            save_index += 1
        stats.n_rhs_evaluations = counting_fun.count
        if counting_jac is not None:
            stats.n_jacobian_evaluations = counting_jac.count
        return SolveResult(t_eval[:save_index].copy(),
                           output[:save_index].copy(), status, stats,
                           self.integrator_name, message)


class ScipyLSODA(_ScipyOdeSolver):
    """LSODA: Adams/BDF multistep with automatic stiffness switching."""

    integrator_name = "lsoda"


class ScipyVODE(_ScipyOdeSolver):
    """VODE: variable-coefficient Adams/BDF with startup heuristic."""

    integrator_name = "vode"
    integrator_kwargs = {"method": "bdf"}


def make_cpu_baseline(name: str,
                      options: SolverOptions = DEFAULT_OPTIONS):
    """Factory for the named CPU baseline ('lsoda' or 'vode')."""
    lowered = name.lower()
    if lowered == "lsoda":
        return ScipyLSODA(options)
    if lowered == "vode":
        return ScipyVODE(options)
    raise SolverError(f"unknown CPU baseline {name!r}; "
                      "expected 'lsoda' or 'vode'")
