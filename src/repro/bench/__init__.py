"""Benchmark harness helpers: timing and table rendering."""

from .tables import format_table
from .timing import Timer, measure, speedup

__all__ = ["format_table", "Timer", "measure", "speedup"]
