"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table with a header rule."""
    cells = [[_render(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    header_line = "  ".join(header.ljust(widths[i])
                            for i, header in enumerate(headers))
    rule = "-" * len(header_line)
    body = ["  ".join(value.rjust(widths[i]) if _numericish(value)
                      else value.ljust(widths[i])
                      for i, value in enumerate(row))
            for row in cells]
    return "\n".join([header_line, rule, *body])


def _render(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def _numericish(text: str) -> bool:
    try:
        float(text.replace("x", "").replace("inf", "inf"))
        return True
    except ValueError:
        return text.endswith("x")
