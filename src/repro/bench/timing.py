"""Timing helpers shared by the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..telemetry import clock


@dataclass
class Timer:
    """Context manager measuring wall-clock seconds."""

    elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = clock.monotonic()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = clock.monotonic() - self._start


def measure(function: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds of a callable."""
    best = float("inf")
    for _ in range(max(repeat, 1)):
        started = clock.monotonic()
        function()
        best = min(best, clock.monotonic() - started)
    return best


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """How many times faster the candidate is than the baseline."""
    if candidate_seconds <= 0.0:
        return float("inf")
    return baseline_seconds / candidate_seconds
