"""Static model, kernel and dataflow analysis (`repro lint`).

Three analyzers with flake8-style rule IDs and a shared report layer:

* :func:`lint_model` — structural rules ``RBM0xx`` over a
  :class:`~repro.model.rbm.ReactionBasedModel` (+ optional
  :class:`~repro.model.parameterization.Parameterization`): dead and
  unproducible species, disconnected networks, duplicate and zero-flux
  reactions, degenerate rate constants, empty conserved pools and a
  static stiffness-risk score.
* :func:`lint_kernels` / :func:`lint_source` / :func:`lint_callable` —
  shallow ``ast``-based vectorization rules ``KRN0xx`` over
  batch-kernel source: Python loops over the batch axis,
  per-simulation scalar extraction, narrow dtypes, writes through
  subscript-derived arrays and scalar scipy calls. Stale waiver
  pragmas are reported as ``LNT000``.
* :func:`lint_deep` — the dataflow analyzer (``repro lint --deep``):
  per-function CFGs, def-use chains, alias sets and a project call
  graph (:mod:`repro.lint.dataflow`) power the determinism rules
  ``DET001``–``DET006`` and cross-layer contract rules
  ``CON001``–``CON004``, gated by a committed baseline
  (:data:`~repro.lint.deep.DEFAULT_BASELINE`) that may only shrink.
* :func:`lint_shapes` — the symbolic shape/dtype analyzer
  (``repro lint --shapes``): an abstract interpreter over the same
  dataflow engine propagates symbolic axis lengths (B batch, S
  species, R reactions, K stages) and dtypes through def-use chains,
  powering the shape rules ``SHP001``–``SHP006`` and the
  backend-conformance rules ``BKD001``–``BKD003``, gated by
  :data:`~repro.lint.shapes.DEFAULT_SHAPES_BASELINE` (committed
  empty).
* :func:`lint_conc` — the concurrency-safety analyzer
  (``repro lint --conc``): a sync-primitive registry, call-only call
  graph, execution-context closures (event loop, thread targets,
  ``to_thread`` offloads) and a lexical lock-held abstract state
  power the async/thread/process rules ``CNC001``–``CNC009`` over
  the serving stack, gated by
  :data:`~repro.lint.concurrency.DEFAULT_CONC_BASELINE` (committed
  empty).

:func:`lint_gate` is the one-call pre-sweep guard used by the PSA / SA
/ PE hooks: it raises :class:`~repro.errors.LintGateError` when a
model lints at or above the configured severity.
"""

from __future__ import annotations

from ..errors import LintError, LintGateError
from ..model import Parameterization, ReactionBasedModel
from .concurrency import (CONC_RULES, ConcConfig, DEFAULT_CONC_BASELINE,
                          lint_conc)
from .deep import (DEFAULT_BASELINE, DeepConfig, lint_deep,
                   package_source_files, write_baseline)
from .kernel_rules import (KERNEL_RULES, lint_callable, lint_file,
                           lint_kernels, lint_source, shipped_kernel_paths)
from .model_rules import (MODEL_RULES, STIFFNESS_RISK_DECADES,
                          STIFFNESS_SAFE_DECADES, lint_model,
                          stiffness_risk_score)
from .registry import (DEEP_RULES, META_RULES, RuleInfo, iter_rules,
                       render_rule_table, rule_info)
from .report import (SEVERITIES, LintFinding, LintReport, severity_rank)
from .shapes import (DEFAULT_SHAPES_BASELINE, SHAPE_RULES, ShapeConfig,
                     lint_shapes)

#: Every shipped rule ID -> (default severity, one-line description).
ALL_RULES = {**MODEL_RULES, **KERNEL_RULES, **DEEP_RULES, **SHAPE_RULES,
             **CONC_RULES, **META_RULES}


def lint_gate(model: ReactionBasedModel,
              parameterization: Parameterization | None = None,
              fail_on: str = "error") -> LintReport:
    """Lint a model and raise :class:`LintGateError` at/above
    ``fail_on``.

    Used by the analysis entry points (``run_psa_1d``, ``run_psa_2d``,
    ``run_sobol_sa``, :class:`~repro.core.pe.ParameterEstimation`) to
    refuse launching an expensive sweep on a structurally broken model.
    Returns the report when the model passes, so callers can still read
    the metadata (e.g. the stiffness-risk score). The raised error is a
    :class:`~repro.errors.LintGateError` (a :class:`LintError`
    subclass) carrying the report, so callers and the CLI can tell a
    gate rejection from an analyzer crash.
    """
    report = lint_model(model, parameterization)
    offending = report.at_or_above(fail_on)
    if offending:
        rendered = "; ".join(finding.render() for finding in offending)
        raise LintGateError(
            f"model {model.name!r} fails static analysis with "
            f"{len(offending)} finding(s) at or above {fail_on!r}: "
            f"{rendered}", report=report)
    return report


__all__ = [
    "ALL_RULES", "CONC_RULES", "DEEP_RULES", "KERNEL_RULES",
    "META_RULES", "MODEL_RULES", "SHAPE_RULES",
    "DEFAULT_BASELINE", "DEFAULT_CONC_BASELINE",
    "DEFAULT_SHAPES_BASELINE", "ConcConfig", "DeepConfig",
    "ShapeConfig",
    "LintError", "LintFinding", "LintGateError", "LintReport",
    "RuleInfo", "SEVERITIES", "severity_rank",
    "STIFFNESS_RISK_DECADES", "STIFFNESS_SAFE_DECADES",
    "iter_rules", "lint_callable", "lint_conc", "lint_deep",
    "lint_file", "lint_gate", "lint_kernels", "lint_model",
    "lint_shapes", "lint_source",
    "package_source_files", "render_rule_table", "rule_info",
    "shipped_kernel_paths", "stiffness_risk_score", "write_baseline",
]
