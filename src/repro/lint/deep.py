"""Driver of the deep static-analysis pass (``repro lint --deep``).

Builds a :class:`~repro.lint.dataflow.ProjectIndex` over the package
source (or an explicit file set), runs every DET/CON rule, applies
waiver pragmas and the committed baseline, and reports stale waivers
(``CON004``) and stale baseline entries (``LNT001``) so both can only
shrink.

Baseline workflow
-----------------
The committed baseline (:data:`DEFAULT_BASELINE`) lists findings that
are accepted by design. At analysis time each baseline entry cancels at
most one matching finding — matched by ``(rule, file, message)`` — and
entries that match nothing become ``LNT001`` findings, which is the
ratchet: deleting code that fixes a baselined finding forces the
baseline file to shrink with it. Regenerate with
:func:`write_baseline` (or ``repro lint --deep --write-baseline``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import LintError
from .contract_rules import CON_CHECKS, CON_RULES
from .dataflow import ModuleInfo, ProjectIndex
from .deep_rules import DET_CHECKS, DET_RULES
from .report import LintReport

#: Every deep rule: id -> (default severity, one-line description).
DEEP_RULES = {**DET_RULES, **CON_RULES}

#: Baseline shipped next to this module, applied by default when the
#: analysis root is the repro package itself.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "deep_baseline.json"

#: Prefixes of rule IDs the deep analyzer owns (stale-waiver scope).
_DEEP_PREFIXES = ("DET", "CON")

BASELINE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class DeepConfig:
    """Project-shape knobs of the deep analyzer.

    The defaults encode this repository's layout; tests override them
    to point the rules at synthetic trees.
    """

    #: Module globs whose stage math DET001 audits for width-dependent
    #: reductions (matched against relpath and basename; the bare
    #: ``batch_*.py`` entry covers single-file CLI invocations where
    #: the report root is the file's own directory).
    kernel_globs: tuple[str, ...] = ("gpu/batch_*.py", "batch_*.py")
    #: Module globs whose functions root the DET004 campaign/checkpoint
    #: reachability query.
    campaign_globs: tuple[str, ...] = ("resilience/*.py",
                                      "io/checkpoint.py")
    #: Function-name prefixes that also root the DET004 query.
    campaign_prefixes: tuple[str, ...] = ("run_",)
    #: Frozen contract dataclasses CON002 audits field-by-field.
    contract_classes: tuple[str, ...] = ("FaultPlan",)
    #: Name of the status-code table CON001 audits.
    status_dict_name: str = "STATUS_NAMES"
    #: Relpath suffix identifying the exception-taxonomy module.
    errors_module: str = "errors.py"
    #: Module globs of the sanctioned wall-clock boundary
    #: (:mod:`repro.telemetry.clock`): raw ``time.*`` / ``datetime``
    #: reads anywhere *else* are a DET005 warning, which is what keeps
    #: the taint analysis sound — every clock read funnels through one
    #: auditable module.
    clock_modules: tuple[str, ...] = ("telemetry/clock.py", "clock.py")
    #: Terminal call names that read the sanctioned clock; DET005
    #: treats them as wall-clock taint sources exactly like ``time.*``.
    clock_calls: tuple[str, ...] = ("monotonic", "walltime")


DEFAULT_CONFIG = DeepConfig()


@dataclass
class _Emitter:
    """Waiver-aware finding sink shared by every rule."""

    report: LintReport
    waived: int = 0
    severities: dict = field(default_factory=lambda: dict(DEEP_RULES))

    def __call__(self, rule_id: str, module: ModuleInfo, lineno: int,
                 message: str, hint: str = "",
                 severity: str | None = None) -> None:
        if module.waivers.suppresses(rule_id, lineno):
            self.waived += 1
            return
        default_severity = self.severities.get(rule_id, ("warning",))[0]
        self.report.add(rule_id, severity or default_severity, message,
                        f"{module.relpath}:{lineno}", hint)


def package_source_files(root: Path | None = None) -> list[Path]:
    """Every ``.py`` file of the repro package (the default subject)."""
    package_root = (Path(root) if root is not None
                    else Path(__file__).resolve().parent.parent)
    return sorted(package_root.rglob("*.py"))


def _finding_key(finding) -> tuple[str, str, str]:
    relfile = finding.location.rsplit(":", 1)[0]
    return (finding.rule_id, relfile, finding.message)


def _apply_baseline(report: LintReport, baseline_path: Path) -> None:
    try:
        payload = json.loads(baseline_path.read_text())
    except OSError as error:
        raise LintError(
            f"cannot read baseline {baseline_path}: {error}") from error
    except json.JSONDecodeError as error:
        raise LintError(
            f"baseline {baseline_path} is not valid JSON: "
            f"{error}") from error
    if payload.get("format_version") != BASELINE_FORMAT_VERSION:
        raise LintError(
            f"baseline {baseline_path} has format_version "
            f"{payload.get('format_version')!r}; this analyzer "
            f"understands {BASELINE_FORMAT_VERSION}")
    budget: dict[tuple[str, str, str], int] = {}
    for entry in payload.get("entries", []):
        key = (entry["rule"], entry["file"], entry["message"])
        budget[key] = budget.get(key, 0) + 1
    kept = []
    cancelled = 0
    for finding in report.findings:
        key = _finding_key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            cancelled += 1
        else:
            kept.append(finding)
    report.findings[:] = kept
    for (rule, relfile, message), remaining in sorted(budget.items()):
        for _ in range(remaining):
            report.add(
                "LNT001", "warning",
                f"stale baseline entry: no current finding matches "
                f"{rule} in {relfile} ({message[:60]}...)"
                if len(message) > 60 else
                f"stale baseline entry: no current finding matches "
                f"{rule} in {relfile} ({message})",
                str(baseline_path),
                "regenerate the baseline: it may only shrink")
    report.metadata["baselined"] = cancelled


def lint_deep(paths: list[str | Path] | None = None, *,
              root: Path | None = None,
              baseline_path: str | Path | None = None,
              config: DeepConfig = DEFAULT_CONFIG) -> LintReport:
    """Run the full deep analysis and return a :class:`LintReport`.

    Parameters
    ----------
    paths:
        Files to analyze. Default: every module of the installed
        ``repro`` package.
    root:
        Directory findings are reported relative to. Default: the
        package directory (or the common parent of ``paths``).
    baseline_path:
        Baseline JSON to subtract. Defaults to the committed
        :data:`DEFAULT_BASELINE` when analyzing the package itself;
        pass an explicit path (or a missing one) to disable.
    config:
        Project-shape configuration for the contract rules.
    """
    analyzing_package = paths is None
    if analyzing_package:
        package_root = Path(__file__).resolve().parent.parent
        files = package_source_files(package_root)
        root = package_root if root is None else Path(root)
    else:
        files = [Path(p) for p in paths]
        if root is None:
            root = (files[0].parent if len(files) == 1
                    else Path(_common_parent(files)))
    index = ProjectIndex(files, root=root)
    report = LintReport(
        subject=f"deep analysis: {len(files)} file(s)",
        metadata={"files": [module.relpath for module in index.modules]})
    emit = _Emitter(report)
    for checks in (DET_CHECKS, CON_CHECKS):
        for check in checks.values():
            check(index, config, emit)
    # CON004 runs last: it needs the waiver-consumption state left by
    # every other rule.
    for module in index.modules:
        for lineno, rule in module.waivers.stale(
                lambda r: r.startswith(_DEEP_PREFIXES)):
            report.add("CON004", CON_RULES["CON004"][0],
                       f"stale waiver: the {rule} pragma on line "
                       f"{lineno} suppresses nothing",
                       f"{module.relpath}:{lineno}",
                       "remove the pragma")
    report.metadata["waived"] = emit.waived
    if baseline_path is None and analyzing_package:
        baseline_path = DEFAULT_BASELINE
    if baseline_path is not None and Path(baseline_path).exists():
        _apply_baseline(report, Path(baseline_path))
    report.findings.sort(key=lambda f: (f.location, f.rule_id))
    return report


def _common_parent(files: list[Path]) -> Path:
    parents = [file.resolve().parent for file in files]
    common = parents[0]
    for parent in parents[1:]:
        while common != parent and common not in parent.parents \
                and common != common.parent:
            common = common.parent
    return common


def write_baseline(report: LintReport, path: str | Path) -> int:
    """Persist a report's findings as the new baseline; returns the
    entry count. Meta findings (``LNT001`` staleness) are excluded —
    a baseline must never baseline its own staleness."""
    entries = []
    for finding in sorted(report.findings,
                          key=lambda f: (f.location, f.rule_id)):
        if finding.rule_id.startswith("LNT"):
            continue
        rule, relfile, message = _finding_key(finding)
        entries.append({"rule": rule, "file": relfile,
                        "message": message})
    payload = {"format_version": BASELINE_FORMAT_VERSION,
               "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return len(entries)
