"""Backend-conformance rules BKD001–BKD003 of the shapes analyzer.

The PR that extracted :mod:`repro.backend` made the gpu package
numpy-free: every array op goes through the ``xp`` namespace, so a
CuPy/torch substrate can drop in without touching kernel code. These
rules keep that boundary from eroding:

* ``BKD001`` — a gpu module imports numpy again.
* ``BKD002`` — a gpu module reads an attribute through a numpy-bound
  alias (``np.sum``, ``numpy.float64``, a ``from numpy import ...``
  name): raw array ops are only legal inside the backend package.
* ``BKD003`` — an ``xp.<op>`` read names an op the backend protocol
  does not declare: the op would work on the numpy substrate and
  explode on any other, so the protocol surface
  (:data:`repro.backend.protocol.REQUIRED_OPS`) is the source of
  truth.

Each rule is a function ``rule(index, config, emit)``; ``config`` is a
:class:`repro.lint.shapes.ShapeConfig`.
"""

from __future__ import annotations

import ast

from ..backend.protocol import REQUIRED_OPS
from .dataflow import ModuleInfo, ProjectIndex

#: Backend-conformance rules: rule ID -> (severity, one-line doc).
BKD_RULES = {
    "BKD001": ("error", "numpy imported inside a backend-ported gpu "
                        "module"),
    "BKD002": ("error", "raw numpy attribute read outside the backend "
                        "substrate"),
    "BKD003": ("error", "xp op is not declared by the backend "
                        "protocol"),
}

#: Dunder/introspection attributes BKD003 ignores on the namespace.
_XP_EXEMPT = {"name"}


def _gpu_modules(index: ProjectIndex, config):
    for module in index.modules:
        if module.matches(config.gpu_globs) \
                and not module.matches(config.backend_globs):
            yield module


def _numpy_bindings(module: ModuleInfo
                    ) -> tuple[dict[int, str], set[str], set[str]]:
    """(import lineno -> rendered form, alias roots, bare names).

    Alias roots are local names whose attributes resolve into numpy
    (``import numpy as np`` binds ``np``); bare names are direct
    ``from numpy import sum``-style bindings.
    """
    imports: dict[int, str] = {}
    roots: set[str] = set()
    bare: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" \
                        or alias.name.startswith("numpy."):
                    local = (alias.asname
                             or alias.name.split(".")[0])
                    roots.add(local)
                    imports[node.lineno] = f"import {alias.name}" + (
                        f" as {alias.asname}" if alias.asname else "")
        elif isinstance(node, ast.ImportFrom):
            if node.module and (node.module == "numpy"
                                or node.module.startswith("numpy.")):
                for alias in node.names:
                    bare.add(alias.asname or alias.name)
                imports[node.lineno] = (
                    f"from {node.module} import "
                    + ", ".join(a.name for a in node.names))
    return imports, roots, bare


def rule_bkd001(index: ProjectIndex, config, emit) -> None:
    for module in _gpu_modules(index, config):
        imports, _, _ = _numpy_bindings(module)
        for lineno, rendered in sorted(imports.items()):
            emit("BKD001", module, lineno,
                 f"{rendered!r}: gpu kernels are backend-ported and "
                 "must not import numpy; array ops go through the xp "
                 "namespace so substrates stay swappable",
                 "import the namespace instead: "
                 "from ..backend import Array, xp")


def rule_bkd002(index: ProjectIndex, config, emit) -> None:
    for module in _gpu_modules(index, config):
        _, roots, bare = _numpy_bindings(module)
        roots = roots | {"np", "numpy"}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and isinstance(node.value.ctx, ast.Load) \
                    and node.value.id in roots:
                emit("BKD002", module, node.value.lineno,
                     f"raw numpy read {node.value.id}.{node.attr} in "
                     "a gpu module: array ops outside the backend "
                     "package bypass the substrate protocol",
                     f"use xp.{node.attr} (extend the protocol if "
                     "the op is missing)")
            elif isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load) \
                    and node.id in bare:
                emit("BKD002", module, node.lineno,
                     f"{node.id!r} was imported from numpy into a "
                     "gpu module: the call bypasses the substrate "
                     "protocol",
                     "route the op through the xp namespace")


def rule_bkd003(index: ProjectIndex, config, emit) -> None:
    ops = set(config.backend_ops
              if config.backend_ops is not None else REQUIRED_OPS)
    ops |= _XP_EXEMPT
    for module in _gpu_modules(index, config):
        seen: set[tuple[int, str]] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute) \
                    or not isinstance(node.value, ast.Name) \
                    or node.value.id != config.backend_name:
                continue
            if node.attr in ops or node.attr.startswith("__"):
                continue
            key = (node.lineno, node.attr)
            if key in seen:
                continue
            seen.add(key)
            emit("BKD003", module, node.lineno,
                 f"{config.backend_name}.{node.attr} is not declared "
                 "by the backend protocol: the op resolves on the "
                 "numpy substrate by accident and breaks on any "
                 "other",
                 "add the op to repro.backend.protocol.REQUIRED_OPS "
                 "(and every substrate) or use a declared op")


#: Rule id -> implementation, in execution order.
BKD_CHECKS = {
    "BKD001": rule_bkd001,
    "BKD002": rule_bkd002,
    "BKD003": rule_bkd003,
}
