"""Findings, severities and reports of the static-analysis pass.

Every linter in :mod:`repro.lint` produces :class:`LintFinding` records
(flake8-style: a stable rule ID, a severity, a message and a location)
collected into a :class:`LintReport` that renders as plain text or JSON
and decides exit codes against a configurable severity threshold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import LintError

#: Severities in increasing order of gravity.
SEVERITIES = ("info", "warning", "error")

_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity name (higher is graver)."""
    try:
        return _RANK[severity]
    except KeyError:
        raise LintError(f"unknown severity {severity!r}; expected one of "
                        f"{SEVERITIES}") from None


@dataclass(frozen=True)
class LintFinding:
    """One static-analysis finding.

    Attributes
    ----------
    rule_id:
        Stable identifier, ``RBM0xx`` for model rules and ``KRN0xx``
        for kernel rules.
    severity:
        One of :data:`SEVERITIES`.
    message:
        Human-readable description of the defect.
    location:
        Where the defect lives: ``model:species[X]``,
        ``model:reaction[3]`` or ``file.py:42``.
    hint:
        Optional remediation advice.
    """

    rule_id: str
    severity: str
    message: str
    location: str
    hint: str = ""

    def __post_init__(self) -> None:
        severity_rank(self.severity)  # validate eagerly

    def render(self) -> str:
        text = f"{self.location}: {self.severity} {self.rule_id}: {self.message}"
        if self.hint:
            text += f" ({self.hint})"
        return text

    def to_dict(self) -> dict:
        record = {"rule_id": self.rule_id, "severity": self.severity,
                  "message": self.message, "location": self.location}
        if self.hint:
            record["hint"] = self.hint
        return record


@dataclass
class LintReport:
    """Collected findings of one lint run over one subject.

    ``metadata`` carries analyzer by-products that are useful beyond
    pass/fail — e.g. the static stiffness-risk score the GPU router
    consumes as a prefilter hint, or the number of waived findings.
    """

    subject: str
    findings: list[LintFinding] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def add(self, rule_id: str, severity: str, message: str,
            location: str, hint: str = "") -> None:
        self.findings.append(
            LintFinding(rule_id, severity, message, location, hint))

    def extend(self, other: "LintReport") -> None:
        """Merge another report's findings and metadata into this one."""
        self.findings.extend(other.findings)
        self.metadata.update(other.metadata)

    # ------------------------------------------------------------------
    # queries

    def __len__(self) -> int:
        return len(self.findings)

    def by_rule(self, rule_id: str) -> list[LintFinding]:
        return [f for f in self.findings if f.rule_id == rule_id]

    def rule_ids(self) -> set[str]:
        return {f.rule_id for f in self.findings}

    def counts(self) -> dict[str, int]:
        """Finding counts per severity (zero-filled)."""
        counts = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    def at_or_above(self, severity: str) -> list[LintFinding]:
        threshold = severity_rank(severity)
        return [f for f in self.findings
                if severity_rank(f.severity) >= threshold]

    def exceeds(self, fail_on: str) -> bool:
        """True when any finding reaches the ``fail_on`` severity."""
        return bool(self.at_or_above(fail_on))

    # ------------------------------------------------------------------
    # rendering

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        counts = self.counts()
        summary = ", ".join(f"{counts[s]} {s}(s)" for s in SEVERITIES
                            if counts[s])
        waived = self.metadata.get("waived", 0)
        if waived:
            summary = (summary + ", " if summary else "") \
                + f"{waived} waived"
        if not summary:
            summary = "clean"
        lines.append(f"{self.subject}: {summary}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        # Imported here: the registry aggregates every rule family, so
        # a module-level import would cycle back through this module.
        from .registry import rule_info
        rules = {}
        for rule_id in sorted(self.rule_ids()):
            info = rule_info(rule_id)
            if info is not None:
                rules[rule_id] = {"severity": info.severity,
                                  "family": info.family,
                                  "doc": info.doc}
        return {
            "subject": self.subject,
            "findings": [finding.to_dict() for finding in self.findings],
            "counts": self.counts(),
            "rules": rules,
            "metadata": {key: value for key, value in self.metadata.items()},
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=float)
