"""Concurrency abstract state + driver of ``repro lint --conc``.

The concurrency analyzer polices the three boundaries the serving
stack crosses constantly — the asyncio event loop, worker threads and
forked shard processes — with the rule family ``CNC001``–``CNC009``
(:mod:`repro.lint.conc_rules`). This module supplies the shared
abstract state those rules consume:

* a **synchronization-primitive registry**
  (:class:`PrimitiveRegistry`) mapping local and attribute names to
  the primitive *kind* their constructor implies
  (``threading.Condition()`` -> ``condition``,
  ``self._context.Queue()`` -> ``queue``, ``asyncio.Event()`` ->
  ``async``), so ``x.wait()`` can be told apart from
  ``await x.wait()`` by what ``x`` *is*, not what it is called;
* a **call-only call graph** (:class:`ConcurrencyModel`) — unlike the
  deep analyzer's over-approximate reference graph
  (:attr:`~repro.lint.dataflow.ProjectIndex.edges`), only actual
  ``ast.Call`` sites create edges, and callables handed to the
  sanctioned offload wrappers (``asyncio.to_thread``,
  ``run_in_executor``) or spawned as ``Thread``/``Process`` targets do
  *not* — those run off the loop by construction;
* **execution-context closures**: the set of functions reachable from
  ``async def`` bodies (the event-loop context) and from each thread /
  offload entry point, traversed through sync functions only — an
  async callee schedules on the loop and is analyzed on its own;
* a **lock-held abstract state**: a write is *lock-protected* when it
  sits lexically inside a ``with <sync-lock>`` block, or when every
  call site of its (helper) function in the module does — the pattern
  ``def _grant(self): ...`` called only under ``with self._cond:``.

The driver :func:`lint_conc` mirrors ``--deep``/``--shapes``: waiver
pragmas (``# lint: skip=CNC00x``), stale waivers as ``LNT000``, and
the committed :data:`DEFAULT_CONC_BASELINE` (shipped empty — the
serving stack carries no accepted concurrency findings) under the
shrink-only ``LNT001`` ratchet.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from .conc_rules import CNC_CHECKS, CNC_RULES
from .dataflow import (FunctionRecord, ModuleInfo, ProjectIndex,
                       attr_chain)
from .deep import (_apply_baseline, _common_parent, _Emitter,
                   package_source_files, write_baseline)
from .report import LintReport

__all__ = ["CONC_RULES", "ConcConfig", "ConcurrencyModel",
           "DEFAULT_CONC_BASELINE", "PrimitiveRegistry", "conc_model",
           "lint_conc", "write_baseline"]

#: Every concurrency rule: id -> (default severity, one-line doc).
CONC_RULES = dict(CNC_RULES)

#: Baseline shipped next to this module, applied by default when the
#: analysis root is the repro package itself. Committed empty.
DEFAULT_CONC_BASELINE = (Path(__file__).resolve().parent
                         / "conc_baseline.json")

#: Prefixes of rule IDs the conc analyzer owns (stale-waiver scope).
_CONC_PREFIXES = ("CNC",)


@dataclass(frozen=True)
class ConcConfig:
    """Project-shape knobs of the concurrency analyzer.

    The defaults encode this repository's conventions; tests override
    them to point the rules at synthetic trees.
    """

    #: Call terminals that move a callable off the event loop; their
    #: callable argument does not become a call edge (CNC001) and
    #: roots a worker-thread context (CNC005).
    offload_wrappers: tuple[str, ...] = ("to_thread", "run_in_executor")
    #: Constructor terminals whose ``target=`` keyword roots a thread
    #: context instead of creating a call edge.
    thread_spawners: tuple[str, ...] = ("Thread",)
    #: Constructor terminals whose ``target=`` runs in a *separate
    #: address space*: no call edge, and no racing context either —
    #: a child process's writes cannot race the parent's memory.
    process_spawners: tuple[str, ...] = ("Process",)
    #: Call terminals that legitimately consume a coroutine object
    #: without an immediate ``await`` (CNC004 escapes).
    task_wrappers: tuple[str, ...] = (
        "create_task", "ensure_future", "gather", "wait", "wait_for",
        "shield", "run", "run_until_complete",
        "run_coroutine_threadsafe", "as_completed", "to_thread")
    #: Project entry points that run a whole blocking campaign; calling
    #: one directly from a coroutine stalls the loop for its duration.
    loop_blocking_calls: tuple[str, ...] = ("run_campaign",
                                            "run_sharded")
    #: Call terminals that block on the filesystem or a socket. The
    #: set is deliberately high-signal: generic ``.write``/``.read``/
    #: ``.close`` terminals are everywhere in non-blocking APIs
    #: (``StreamWriter.write``) and would drown the rule in noise.
    blocking_io_calls: tuple[str, ...] = (
        "open", "mkdir", "unlink", "rmtree", "read_text", "write_text",
        "read_bytes", "write_bytes", "urlopen", "accept", "recv",
        "recv_into", "getaddrinfo", "create_connection", "loadtxt",
        "savetxt", "parse")
    #: Module-path prefixes CNC005's multi-context trigger applies to:
    #: the subsystems whose objects genuinely span the event loop,
    #: worker threads and offloads. Outside them, cross-context
    #: reachability of a constructor-style method (building a model on
    #: two different worker threads) says nothing about *sharing one
    #: instance*, and the trigger would drown in false positives. The
    #: lock-discipline trigger stays global.
    shared_state_modules: tuple[str, ...] = ("service/", "resilience/",
                                             "telemetry/", "io/")
    #: Parameter names identifying the executor message protocol's
    #: routing token and its payload (CNC008).
    protocol_token_params: tuple[str, ...] = ("token",)
    protocol_payload_params: tuple[str, ...] = ("payload",
                                                "task_message")
    #: Name fragment of the staleness field a protocol consumer must
    #: compare before touching the payload.
    protocol_guard_names: tuple[str, ...] = ("generation",)
    #: Constructor terminals that make an object unsafe to send across
    #: a multiprocessing queue / fork boundary when a class closes
    #: over one (CNC007): live handles, sockets, locks, tracers.
    unpicklable_ctors: tuple[str, ...] = (
        "open", "Lock", "RLock", "Condition", "Event", "Semaphore",
        "BoundedSemaphore", "create_connection", "socket", "Tracer",
        "JsonlSink")


DEFAULT_CONFIG = ConcConfig()


# ======================================================================
# synchronization-primitive registry


#: Constructor terminal -> primitive kind, for the sync (threading /
#: queue / multiprocessing) namespaces.
_SYNC_CTORS = {
    "Lock": "lock", "RLock": "lock",
    "Condition": "condition",
    "Event": "event",
    "Semaphore": "semaphore", "BoundedSemaphore": "semaphore",
    "Barrier": "event",
    "Queue": "queue", "LifoQueue": "queue", "PriorityQueue": "queue",
    "SimpleQueue": "queue", "JoinableQueue": "queue",
}

#: Kinds whose blocking calls must not run on the event loop.
SYNC_KINDS = frozenset({"lock", "condition", "event", "semaphore",
                        "queue"})

#: Kinds a ``with`` block on which counts as holding a lock.
LOCK_KINDS = frozenset({"lock", "condition", "semaphore"})

#: Blocking method terminal -> primitive kinds it blocks on.
_BLOCKING_METHODS = {
    "wait": frozenset({"condition", "event", "lock"}),
    "acquire": frozenset({"lock", "condition", "semaphore"}),
    "get": frozenset({"queue"}),
    "put": frozenset({"queue"}),
    "join": frozenset({"queue"}),
}


class PrimitiveRegistry:
    """Name -> primitive kind over one module's assignments.

    Flow-insensitive: every ``name = ctor(...)`` / ``obj.attr =
    ctor(...)`` whose constructor chain resolves to a known primitive
    registers the bound *name* (local id or attribute name). An
    ``asyncio.*`` constructor registers kind ``"async"`` so its
    ``wait``/``acquire`` calls are recognized as loop-native and never
    reported as blocking. On a collision the sync kind wins — the
    over-approximation that keeps the rules report-sound.
    """

    def __init__(self, module: ModuleInfo,
                 config: ConcConfig = DEFAULT_CONFIG) -> None:
        self.kinds: dict[str, str] = {}
        #: (class name, attribute) -> kind, for class-owned primitives.
        self.class_kinds: dict[tuple[str, str], str] = {}
        self._scan(module.tree, None)

    def _scan(self, node: ast.AST, class_name: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                self._scan(child, child.name)
                continue
            if isinstance(child, (ast.Assign, ast.AnnAssign)):
                targets = (child.targets
                           if isinstance(child, ast.Assign)
                           else [child.target])
                kind = self._ctor_kind(child.value)
                if kind is not None:
                    for target in targets:
                        self._register(target, kind, class_name)
            self._scan(child, class_name)

    def _ctor_kind(self, value: ast.AST | None) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        chain = attr_chain(value.func)
        if not chain:
            return None
        if chain[0] == "asyncio":
            return "async" if chain[-1] in _SYNC_CTORS else None
        return _SYNC_CTORS.get(chain[-1])

    def _register(self, target: ast.AST, kind: str,
                  class_name: str | None) -> None:
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
            if class_name is not None and isinstance(target.value,
                                                     ast.Name) \
                    and target.value.id == "self":
                existing = self.class_kinds.get((class_name, name))
                if existing is None or existing == "async":
                    self.class_kinds[(class_name, name)] = kind
        else:
            return
        existing = self.kinds.get(name)
        if existing is None or existing == "async":
            self.kinds[name] = kind
        elif kind != "async":
            self.kinds[name] = kind  # sync wins over a stale async bind

    def kind_of(self, node: ast.AST) -> str | None:
        """Primitive kind of an expression (``None`` when unknown)."""
        if isinstance(node, ast.Name):
            return self.kinds.get(node.id)
        if isinstance(node, ast.Attribute):
            return self.kinds.get(node.attr)
        return None

    def lock_classes(self) -> set[str]:
        """Classes owning at least one ``self.x = <sync lock>``."""
        return {class_name
                for (class_name, _attr), kind in self.class_kinds.items()
                if kind in LOCK_KINDS}


# ======================================================================
# call-only graph + execution contexts


def own_nodes(node: ast.AST) -> list[ast.AST]:
    """Every descendant of ``node`` excluding nested function bodies.

    A nested ``def``/``async def`` is its own execution unit with its
    own record; attributing its calls and awaits to the enclosing
    function would misfile them into the wrong context.
    """
    out: list[ast.AST] = []
    stack = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        out.append(current)
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(current))
    return out


class ConcurrencyModel:
    """Derived concurrency facts over one :class:`ProjectIndex`.

    Built once per analysis run (see :func:`conc_model`) and shared by
    every CNC rule.
    """

    def __init__(self, index: ProjectIndex,
                 config: ConcConfig = DEFAULT_CONFIG) -> None:
        self.index = index
        self.config = config
        self.registries: dict[str, PrimitiveRegistry] = {
            module.relpath: PrimitiveRegistry(module, config)
            for module in index.modules}
        #: module relpath -> names imported ``from time import ...``.
        self.time_imports: dict[str, set[str]] = {
            module.relpath: self._time_imports(module)
            for module in index.modules}
        self.records: dict[str, FunctionRecord] = {
            record.qualname: record for record in index.functions()}
        #: every class defined anywhere in the project.
        self.class_names: set[str] = {
            node.name for module in index.modules
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)}
        #: (class, attribute) -> class of the value it holds, from
        #: ``self.x = Ctor(...)`` / ``self.x = <annotated param>``.
        self.class_attr_types: dict[tuple[str, str], str] = {}
        #: call-only edges: qualname -> (terminal, receiver type|None).
        self.call_names: dict[str, set[tuple[str, str | None]]] = {}
        #: call sites: qualname -> [(call, terminal, receiver type)].
        self.call_sites: dict[
            str, list[tuple[ast.Call, str, str | None]]] = {}
        #: expressions that are offload / spawn-target arguments; the
        #: id() set CNC001's edge construction skips.
        self._offloaded: set[int] = set()
        #: (context tag, entry record) thread/offload roots.
        self.thread_roots: list[tuple[str, FunctionRecord]] = []
        self._link()
        self._blocking_cache: dict[str, tuple[int, str, tuple[str, ...]]
                                   | None] = {}

    # -- construction --------------------------------------------------

    @staticmethod
    def _time_imports(module: ModuleInfo) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                names.update(alias.asname or alias.name
                             for alias in node.names)
        return names

    def _link(self) -> None:
        spawners = set(self.config.thread_spawners)
        processes = set(self.config.process_spawners)
        offloads = set(self.config.offload_wrappers)
        self._build_class_attr_types()
        for record in self.records.values():
            nodes = own_nodes(record.node)
            types = self._local_types(record, nodes)
            # First pass: mark offloaded callables and thread targets.
            for node in nodes:
                if not isinstance(node, ast.Call):
                    continue
                chain = attr_chain(node.func)
                terminal = chain[-1] if chain else None
                if terminal in spawners or terminal in processes:
                    for keyword in node.keywords:
                        if keyword.arg == "target":
                            self._root_from(
                                record, keyword.value, types,
                                None if terminal in processes
                                else f"thread:{terminal}")
                elif terminal in offloads:
                    args = list(node.args)
                    # run_in_executor(executor, func, ...) carries the
                    # callable second; to_thread(func, ...) first.
                    position = 1 if terminal == "run_in_executor" else 0
                    if len(args) > position:
                        self._root_from(record, args[position], types,
                                        f"worker:{terminal}")
            # Second pass: call edges (offloaded callables excluded).
            names = self.call_names.setdefault(record.qualname, set())
            sites = self.call_sites.setdefault(record.qualname, [])
            for node in nodes:
                if not isinstance(node, ast.Call) \
                        or id(node.func) in self._offloaded:
                    continue
                chain = attr_chain(node.func)
                if not chain:
                    continue
                terminal = chain[-1]
                if terminal == record.name:
                    continue  # direct recursion adds nothing
                rtype = None
                if isinstance(node.func, ast.Attribute):
                    rtype = self._expr_type(record, node.func.value,
                                            types)
                names.add((terminal, rtype))
                sites.append((node, terminal, rtype))

    def _root_from(self, record: FunctionRecord, value: ast.AST,
                   types: dict[str, str], tag: str | None) -> None:
        chain = attr_chain(value)
        if not chain:
            return
        self._offloaded.add(id(value))
        if tag is None:
            return  # process target: separate address space, no root
        terminal = chain[-1]
        rtype = None
        if isinstance(value, ast.Attribute):
            rtype = self._expr_type(record, value.value, types)
        for target in self.candidates(terminal, rtype):
            self.thread_roots.append((f"{tag}:{terminal}", target))

    # -- light receiver typing ------------------------------------------

    #: Builtin/stdlib receiver types whose methods are never project
    #: functions: a typed receiver in this set stops candidate fanout.
    _OPAQUE_TYPES = frozenset({"dict", "list", "set", "tuple", "str",
                               "bytes", "int", "float", "bool", "Path"})

    def _build_class_attr_types(self) -> None:
        for record in self.records.values():
            if record.class_name is None:
                continue
            params = self._param_types(record)
            for node in own_nodes(record.node):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    inferred = None
                    if isinstance(node, ast.AnnAssign):
                        inferred = _annotation_type(node.annotation)
                    if inferred is None:
                        inferred = self._value_type(node.value, params)
                    if inferred is not None:
                        self.class_attr_types.setdefault(
                            (record.class_name, target.attr), inferred)

    def _param_types(self, record: FunctionRecord) -> dict[str, str]:
        args = getattr(record.node, "args", None)
        if args is None:
            return {}
        types: dict[str, str] = {}
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            inferred = _annotation_type(arg.annotation)
            if inferred is not None:
                types[arg.arg] = inferred
        return types

    def _value_type(self, value: ast.AST | None,
                    names: dict[str, str]) -> str | None:
        """Class a value expression constructs or forwards, resolved
        against ``names`` (params/locals); ``x or Ctor(...)`` defaults
        take the first resolvable branch."""
        if isinstance(value, ast.Call):
            chain = attr_chain(value.func)
            if chain and chain[-1] in self.class_names:
                return chain[-1]
            return None
        if isinstance(value, ast.Name):
            return names.get(value.id)
        if isinstance(value, ast.BoolOp):
            for branch in value.values:
                inferred = self._value_type(branch, names)
                if inferred is not None:
                    return inferred
        return None

    def _local_types(self, record: FunctionRecord,
                     nodes: list[ast.AST]) -> dict[str, str]:
        """Parameter + local-variable types of one function body,
        flow-insensitive, resolved in source order."""
        types = self._param_types(record)
        assigns = sorted(
            (node for node in nodes if isinstance(node, ast.Assign)),
            key=lambda node: node.lineno)
        for node in assigns:
            if len(node.targets) != 1 \
                    or not isinstance(node.targets[0], ast.Name):
                continue
            inferred = self._value_type(node.value, types)
            if inferred is None:
                inferred = self._expr_type(record, node.value, types)
            if inferred is not None:
                types[node.targets[0].id] = inferred
        return types

    def _expr_type(self, record: FunctionRecord, expr: ast.AST,
                   types: dict[str, str], depth: int = 0) -> str | None:
        """Receiver type of an expression: ``self``, typed names, and
        attribute chains stepped through :attr:`class_attr_types`."""
        if depth > 4:
            return None
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return record.class_name
            return types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._expr_type(record, expr.value, types, depth + 1)
            if base is None:
                return None
            return self.class_attr_types.get((base, expr.attr))
        if isinstance(expr, ast.Call):
            return self._value_type(expr, types)
        return None

    def candidates(self, terminal: str,
                   rtype: str | None = None) -> list[FunctionRecord]:
        """Project functions a call to ``terminal`` may reach. With a
        typed receiver, only that class's methods qualify; an opaque
        builtin receiver reaches no project function at all. Untyped
        receivers keep the full name-based over-approximation."""
        records = self.index.by_simple_name.get(terminal, ())
        if rtype is not None:
            if rtype in self._OPAQUE_TYPES:
                return []
            typed = [record for record in records
                     if record.class_name == rtype]
            if typed or rtype in self.class_names:
                return typed
        return list(records)

    # -- queries --------------------------------------------------------

    def registry(self, module: ModuleInfo) -> PrimitiveRegistry:
        return self.registries[module.relpath]

    def is_async(self, record: FunctionRecord) -> bool:
        return isinstance(record.node, ast.AsyncFunctionDef)

    def async_functions(self) -> list[FunctionRecord]:
        return [record for record in self.records.values()
                if self.is_async(record)]

    def sync_candidates(self, terminal: str,
                        rtype: str | None = None) -> list[FunctionRecord]:
        return [record for record in self.candidates(terminal, rtype)
                if not self.is_async(record)]

    def sync_closure(self, roots) -> set[str]:
        """Qualnames reachable from ``roots`` through sync functions
        only (an async callee runs on the loop and owns its body)."""
        seen: set[str] = set()
        frontier = [root.qualname if isinstance(root, FunctionRecord)
                    else root for root in roots]
        seen.update(frontier)
        while frontier:
            current = frontier.pop()
            # Only sync targets are ever enqueued, so an async qualname
            # here is a root: its sync callees are traversed, async
            # callees are analyzed as their own loop-context members.
            for terminal, rtype in self.call_names.get(current, ()):
                for target in self.sync_candidates(terminal, rtype):
                    if target.qualname not in seen:
                        seen.add(target.qualname)
                        frontier.append(target.qualname)
        return seen

    def loop_context(self) -> set[str]:
        """Functions that may run on the event-loop thread: every
        coroutine plus its synchronous call closure."""
        closure = self.sync_closure(self.async_functions())
        return closure

    def thread_contexts(self) -> dict[str, set[str]]:
        """Context tag -> sync closure of that thread/offload root."""
        contexts: dict[str, set[str]] = {}
        for tag, record in self.thread_roots:
            closure = contexts.setdefault(tag, set())
            closure |= self.sync_closure([record])
        return contexts

    # -- blocking analysis ----------------------------------------------

    def direct_blocking(self, record: FunctionRecord
                        ) -> list[tuple[int, str, ast.Call]]:
        """(line, reason, call) of every blocking op written directly
        in ``record``'s body (awaited calls excluded)."""
        module = record.module
        registry = self.registry(module)
        time_names = self.time_imports[module.relpath]
        parents = module.parent_map()
        found: list[tuple[int, str, ast.Call]] = []
        for node in own_nodes(record.node):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(parents.get(id(node)), ast.Await):
                continue  # awaited -> loop-native by definition
            reason = self._blocking_reason(node, registry, time_names)
            if reason is not None:
                found.append((node.lineno, reason, node))
        return found

    def _blocking_reason(self, call: ast.Call,
                         registry: PrimitiveRegistry,
                         time_names: set[str]) -> str | None:
        chain = attr_chain(call.func)
        if not chain:
            return None
        terminal = chain[-1]
        if terminal == "sleep":
            if (len(chain) > 1 and chain[-2] == "time") \
                    or (len(chain) == 1 and "sleep" in time_names):
                return "time.sleep()"
            return None
        if terminal in self.config.loop_blocking_calls:
            return (f"the synchronous campaign entry point "
                    f"{terminal}()")
        kinds = _BLOCKING_METHODS.get(terminal)
        if kinds is not None and isinstance(call.func, ast.Attribute):
            kind = registry.kind_of(call.func.value)
            if kind in kinds:
                if terminal in ("get", "put") and any(
                        keyword.arg in ("block", "timeout")
                        and _is_nonblocking_arg(keyword.value)
                        for keyword in call.keywords):
                    return None
                return f"{kind}.{terminal}() on a sync primitive"
        if terminal in self.config.blocking_io_calls:
            return f"blocking IO ({terminal}())"
        return None

    def transitive_blocking(self, qualname: str
                            ) -> tuple[int, str, tuple[str, ...]] | None:
        """(line, reason, via-chain) when the sync closure of
        ``qualname`` contains a blocking op; memoized, cycle-safe."""
        return self._transitive(qualname, set())

    def _transitive(self, qualname: str, visiting: set[str]
                    ) -> tuple[int, str, tuple[str, ...]] | None:
        if qualname in self._blocking_cache:
            return self._blocking_cache[qualname]
        if qualname in visiting:
            return None
        visiting.add(qualname)
        record = self.records.get(qualname)
        result: tuple[int, str, tuple[str, ...]] | None = None
        if record is not None and not self.is_async(record):
            direct = self.direct_blocking(record)
            if direct:
                lineno, reason, _call = direct[0]
                result = (lineno, reason, (record.name,))
            else:
                for terminal, rtype in sorted(
                        self.call_names.get(qualname, ()),
                        key=lambda edge: (edge[0], edge[1] or "")):
                    for target in self.sync_candidates(terminal, rtype):
                        sub = self._transitive(target.qualname,
                                               visiting)
                        if sub is not None:
                            result = (sub[0], sub[1],
                                      (record.name,) + sub[2])
                            break
                    if result is not None:
                        break
        visiting.discard(qualname)
        self._blocking_cache[qualname] = result
        return result

    # -- lock-held abstract state ---------------------------------------

    def under_sync_lock(self, module: ModuleInfo,
                        node: ast.AST) -> bool:
        """True when ``node`` sits lexically inside a (non-async)
        ``with`` block whose context expression is a sync lock."""
        registry = self.registry(module)
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                return False
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        expr = expr.func
                    if registry.kind_of(expr) in LOCK_KINDS:
                        return True
        return False

    def called_only_under_lock(self, record: FunctionRecord) -> bool:
        """True when every call site of ``record`` inside its own
        module is lexically under a sync lock — the helper-under-lock
        pattern (``_grant`` called only inside ``with self._cond:``)."""
        module = record.module
        sites = []
        for other in module.functions.values():
            if other.qualname == record.qualname:
                continue
            for node in own_nodes(other.node):
                if isinstance(node, ast.Call):
                    chain = attr_chain(node.func)
                    if chain and chain[-1] == record.name:
                        sites.append(node)
        return bool(sites) and all(
            self.under_sync_lock(module, site) for site in sites)


def _is_nonblocking_arg(value: ast.AST) -> bool:
    """True for ``block=False`` / ``timeout=<anything>`` values that
    make a queue op non-stalling enough not to flag."""
    return not (isinstance(value, ast.Constant) and value.value is True)


def _annotation_type(annotation: ast.AST | None) -> str | None:
    """Terminal class name of a parameter/attribute annotation,
    unwrapping ``X | None`` unions and ``Optional[X]``."""
    if annotation is None:
        return None
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        chain = attr_chain(annotation)
        terminal = chain[-1] if chain else None
        return None if terminal in (None, "None") else terminal
    if isinstance(annotation, ast.Constant) \
            and isinstance(annotation.value, str):
        text = annotation.value.strip().strip("'\"")
        return text.rsplit(".", 1)[-1] or None
    if isinstance(annotation, ast.BinOp):
        return (_annotation_type(annotation.left)
                or _annotation_type(annotation.right))
    if isinstance(annotation, ast.Subscript):
        chain = attr_chain(annotation.value)
        if chain and chain[-1] == "Optional":
            return _annotation_type(annotation.slice)
    return None


def conc_model(index: ProjectIndex,
               config: ConcConfig = DEFAULT_CONFIG) -> ConcurrencyModel:
    """The per-run :class:`ConcurrencyModel`, cached on the index so
    the nine rules share one graph construction."""
    cached = getattr(index, "_conc_model", None)
    if cached is None or cached.config is not config:
        cached = ConcurrencyModel(index, config)
        index._conc_model = cached
    return cached


# ======================================================================
# driver


def lint_conc(paths: list[str | Path] | None = None, *,
              root: Path | None = None,
              baseline_path: str | Path | None = None,
              config: ConcConfig = DEFAULT_CONFIG) -> LintReport:
    """Run the concurrency analysis and return a
    :class:`~repro.lint.report.LintReport`.

    Parameters
    ----------
    paths:
        Files to analyze. Default: every module of the installed
        ``repro`` package.
    root:
        Directory findings are reported relative to. Default: the
        package directory (or the common parent of ``paths``).
    baseline_path:
        Baseline JSON to subtract. Defaults to the committed
        :data:`DEFAULT_CONC_BASELINE` when analyzing the package
        itself; pass an explicit path (or a missing one) to disable.
    config:
        Project-shape configuration for the rules.
    """
    analyzing_package = paths is None
    if analyzing_package:
        package_root = Path(__file__).resolve().parent.parent
        files = package_source_files(package_root)
        root = package_root if root is None else Path(root)
    else:
        files = [Path(p) for p in paths]
        if root is None:
            root = (files[0].parent if len(files) == 1
                    else Path(_common_parent(files)))
    index = ProjectIndex(files, root=root)
    report = LintReport(
        subject=f"concurrency analysis: {len(files)} file(s)",
        metadata={"files": [module.relpath for module in index.modules]})
    emit = _Emitter(report, severities=dict(CONC_RULES))
    for check in CNC_CHECKS.values():
        check(index, config, emit)
    # Stale CNC waivers surface as LNT000, after every rule has had
    # its chance to consume them.
    for module in index.modules:
        for lineno, rule in module.waivers.stale(
                lambda r: r.startswith(_CONC_PREFIXES)):
            report.add("LNT000", "warning",
                       f"stale waiver: the {rule} pragma on line "
                       f"{lineno} suppresses nothing",
                       f"{module.relpath}:{lineno}",
                       "remove the pragma")
    report.metadata["waived"] = emit.waived
    if baseline_path is None and analyzing_package:
        baseline_path = DEFAULT_CONC_BASELINE
    if baseline_path is not None and Path(baseline_path).exists():
        _apply_baseline(report, Path(baseline_path))
    report.findings.sort(key=lambda f: (f.location, f.rule_id))
    return report
