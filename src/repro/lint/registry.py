"""Unified rule registry: every lint rule with family, severity, docs.

Aggregates the analyzer registries — model rules (``RBM0xx``),
shallow kernel rules (``KRN0xx``), deep dataflow/contract rules
(``DET0xx``/``CON0xx``), symbolic shape/dtype rules (``SHP0xx``),
backend-conformance rules (``BKD0xx``) and concurrency-safety rules
(``CNC0xx``) — plus the meta rules the tooling itself emits
(``LNT0xx``), into :class:`RuleInfo` records
consumed by ``repro lint --list-rules`` and the JSON report's rule
documentation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .backend_rules import BKD_RULES
from .conc_rules import CNC_RULES
from .contract_rules import CON_RULES
from .deep_rules import DET_RULES
from .kernel_rules import KERNEL_RULES
from .model_rules import MODEL_RULES
from .shape_rules import SHP_RULES

#: Meta rules emitted by the lint infrastructure itself.
META_RULES = {
    "LNT000": ("warning", "waiver pragma suppresses nothing (stale "
                          "suppression)"),
    "LNT001": ("warning", "baseline entry no longer matches any "
                          "finding (ratchet: baseline may only "
                          "shrink)"),
}

#: Extended documentation per rule (one short paragraph each).
RULE_DOCS = {
    "RBM001": "A species is referenced by no reaction: it can never "
              "change and inflates the state vector.",
    "RBM002": "A species starts empty and no fireable reaction ever "
              "produces it: its trajectory is identically zero.",
    "RBM003": "A species is produced but never consumed and sits in no "
              "conservation law: it accumulates without bound.",
    "RBM004": "The reaction network splits into structurally "
              "independent sub-models that cannot exchange material.",
    "RBM005": "Two reactions share reactants, products and kinetic "
              "law: their rate constants are unidentifiable.",
    "RBM006": "A reaction can never fire from the initial state: its "
              "flux is identically zero.",
    "RBM007": "A rate constant is numerically invisible next to the "
              "fastest reaction's flux.",
    "RBM008": "A conservation law sums over species that all start at "
              "zero: the conserved pool is frozen for the whole run.",
    "RBM009": "The spread of rate-constant magnitudes predicts "
              "stiffness: explicit solvers will struggle.",
    "KRN001": "A Python for/while loop walks the batch axis: the batch "
              "must be advanced by whole-array NumPy kernels.",
    "KRN002": "A per-simulation scalar is pulled through the "
              "interpreter inside a loop (item()/float(x[i])).",
    "KRN003": "A narrow float dtype appears in a float64 kernel: "
              "mixed-precision expressions promote per element or "
              "truncate solver state.",
    "KRN004": "An in-place write goes through an array bound by "
              "subscripting: basic slices alias the original, fancy "
              "indexing silently copies.",
    "KRN005": "A scalar scipy routine (solve_ivp, brentq, ...) is "
              "called inside a batch kernel, serializing the batch.",
    "DET001": "Kernel stage math reduces over the row axis with a "
              "width-sensitive path (tensordot/dot/@, a row-"
              "contracting einsum, or axis=0): per-row rounding then "
              "depends on how many rows are in flight, breaking "
              "bit-identity under memory-governor launch splitting.",
    "DET002": "An out= destination may alias an input operand of a "
              "routine that is not elementwise: the routine reads "
              "inputs while overwriting them, so results depend on "
              "traversal order.",
    "DET003": "A value narrowed to float32/float16 feeds an arithmetic "
              "accumulation chain: rounding drifts with evaluation "
              "order and batch shape.",
    "DET004": "An unseeded random source (default_rng(), the global "
              "np.random state, stdlib random) is reachable from "
              "campaign or checkpoint code: resumed campaigns can no "
              "longer replay bit-for-bit.",
    "DET005": "A wall-clock value (time.*, datetime.now) flows into a "
              "checkpoint fingerprint, hash or result array: the "
              "artifact differs on every run.",
    "DET006": "A loop over an unordered set/frozenset writes ordered "
              "output (subscript store, append): iteration order "
              "varies across processes, so row ordering is not "
              "reproducible.",
    "CON001": "A status code declared in the batch-result status table "
              "is read by no other module: quarantine, guard "
              "re-stamping and analysis masking cannot be handling it.",
    "CON002": "A fault-injection field is consumed by no integrator, "
              "governor or campaign driver (directly or via an "
              "accessor): the injection is silently inert.",
    "CON003": "An exception type in the error taxonomy is never "
              "raised, or is raised but neither caught nor referenced "
              "outside its defining module.",
    "CON004": "A deep-analysis waiver pragma no longer suppresses any "
              "finding: the defect it excused is gone, so the pragma "
              "is dead weight that can mask future regressions.",
    "SHP001": "A row-contracting op (tensordot/dot/@, an einsum that "
              "drops the leading subscript, or an axis=0 reduction) "
              "consumes an operand whose inferred symbolic shape is "
              "batch-led: the B axis is summed away or reblocked, so "
              "per-row results change with the rows in flight.",
    "SHP002": "A broadcast pairs the batch axis B with a different "
              "symbolic axis (S, R or K): the expression only runs "
              "when the two lengths coincide, and then silently "
              "combines values across simulations.",
    "SHP003": "A value whose inferred dtype is float32/float16/int32 "
              "flows into state or accumulator arithmetic: the "
              "downcast truncates solver state and the drift moves "
              "with evaluation order.",
    "SHP004": "Definitions with conflicting symbolic shapes (different "
              "rank, or different leading axis symbol) reach one use "
              "site: the variable's shape depends on which branch "
              "executed.",
    "SHP005": "reshape/ravel/flatten folds a batch-led array of rank "
              "two or more without keeping B as the leading target "
              "dimension: row boundaries are mixed into other axes.",
    "SHP006": "An out= destination's inferred dtype is narrower than "
              "the widest input dtype: every store silently "
              "downcasts at a point that moves with the expression.",
    "BKD001": "A backend-ported gpu module imports numpy: kernels "
              "must touch array ops only through the xp namespace so "
              "substrates stay swappable.",
    "BKD002": "A gpu module reads an attribute through a numpy-bound "
              "alias or a from-numpy import: the op bypasses the "
              "backend substrate protocol.",
    "BKD003": "An xp.<op> read names an op the backend protocol does "
              "not declare: it resolves on the numpy substrate by "
              "accident and breaks on every other backend.",
    "CNC001": "A blocking operation (time.sleep, a sync-primitive "
              "wait/acquire/get, file or socket IO, a direct campaign "
              "run) is reachable from an async def through the "
              "synchronous call closure: the event loop stalls for "
              "its full duration. Transitive findings are reported "
              "at the first async-to-sync call edge, where an "
              "asyncio.to_thread offload belongs.",
    "CNC002": "A coroutine awaits while lexically inside "
              "`with <threading lock>:`. The coroutine parks on the "
              "loop holding the lock, and every thread contending "
              "for it blocks — the async/sync deadlock inversion.",
    "CNC003": "In a coroutine, a bare except / except BaseException / "
              "except CancelledError without a re-raise absorbs the "
              "cancellation the service's cooperative-cancel "
              "discipline depends on; except Exception wrapped "
              "around an await gets the same warning for hiding "
              "task failures.",
    "CNC004": "A coroutine object is created and dropped (called as "
              "a bare statement, never awaited — its body never "
              "runs), or a create_task/ensure_future result is "
              "discarded without a retained reference or "
              "done-callback, so the task is collectable mid-flight "
              "and its exception is never observed.",
    "CNC005": "A shared attribute is written without its lock: "
              "either the owning class has a lock and the same "
              "attribute is written both under and outside it, or "
              "the attribute is written by functions reachable from "
              "two different execution contexts (event loop, thread "
              "targets, to_thread offloads) with no dominating lock. "
              "Lock state is lexical `with` ancestry plus helpers "
              "whose every module-local call site holds the lock.",
    "CNC006": "Condition.wait returning proves nothing about the "
              "predicate (spurious and stolen wakeups): a wait "
              "without an enclosing while-predicate loop proceeds "
              "with the condition still false.",
    "CNC007": "An object built from an unpicklable or "
              "post-fork-stale constructor (open handles, sockets, "
              "live locks, tracers) is put onto a multiprocessing "
              "or thread queue: it fails to pickle or silently goes "
              "stale on the far side of the fork.",
    "CNC008": "A consumer that unpacks a (slot, generation) routing "
              "token must compare the generation before touching the "
              "payload, or a message from a killed-and-restarted "
              "slot corrupts the new generation's bookkeeping.",
    "CNC009": "lock.acquire() outside a `with` statement needs its "
              "release() in a finally block: any exception between "
              "acquire and release otherwise leaks the lock and "
              "deadlocks every later waiter.",
    "LNT000": "A waiver pragma of the shallow linter, the shapes "
              "analyzer or the concurrency analyzer no longer "
              "suppresses any finding and should be removed.",
    "LNT001": "A committed baseline entry matched no finding in this "
              "run: regenerate the baseline so it only shrinks.",
}

#: Deep-analyzer rules (dataflow + contract families).
DEEP_RULES = {**DET_RULES, **CON_RULES}


@dataclass(frozen=True)
class RuleInfo:
    """One registered lint rule, for listings and JSON reports."""

    rule_id: str
    severity: str
    summary: str
    family: str
    doc: str

    def to_dict(self) -> dict:
        return {"rule_id": self.rule_id, "severity": self.severity,
                "summary": self.summary, "family": self.family,
                "doc": self.doc}


def _family_table() -> list[tuple[str, dict]]:
    return [("model", MODEL_RULES), ("kernel", KERNEL_RULES),
            ("deep", DEEP_RULES), ("shape", SHP_RULES),
            ("backend", BKD_RULES), ("conc", CNC_RULES),
            ("meta", META_RULES)]


def iter_rules() -> list[RuleInfo]:
    """Every registered rule, ordered by family then rule ID."""
    rules = []
    for family, registry in _family_table():
        for rule_id in sorted(registry):
            severity, summary = registry[rule_id]
            rules.append(RuleInfo(rule_id, severity, summary, family,
                                  RULE_DOCS.get(rule_id, summary)))
    return rules


def rule_info(rule_id: str) -> RuleInfo | None:
    """Registry record for one rule ID (None when unregistered)."""
    for family, registry in _family_table():
        if rule_id in registry:
            severity, summary = registry[rule_id]
            return RuleInfo(rule_id, severity, summary, family,
                            RULE_DOCS.get(rule_id, summary))
    return None


def render_rule_table() -> str:
    """Plain-text table for ``repro lint --list-rules``."""
    rules = iter_rules()
    width = max(len(rule.summary) for rule in rules)
    lines = [f"{'ID':<8} {'FAMILY':<7} {'SEVERITY':<8} SUMMARY",
             f"{'-' * 8} {'-' * 7} {'-' * 8} {'-' * max(7, width)}"]
    for rule in rules:
        lines.append(f"{rule.rule_id:<8} {rule.family:<7} "
                     f"{rule.severity:<8} {rule.summary}")
    lines.append(f"{len(rules)} rule(s) registered")
    return "\n".join(lines)
