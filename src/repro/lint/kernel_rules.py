"""Static kernel analysis: vectorization lint over batch kernels (KRN0xx).

The whole performance model of this reproduction rests on one
assumption: the batch axis is traversed by NumPy kernels, never by the
Python interpreter. A "GPU-style" solver that quietly iterates
simulations in a Python ``for`` loop still produces correct numbers —
tens to hundreds of times slower, which on a parameter sweep is the
difference between minutes and days. This module is an ``ast``-based
linter that catches such regressions *statically*, and is self-applied
to the repo's own ``gpu/batch_*.py`` solvers by a pytest gate and CI.

Waivers: a finding is suppressed by a pragma comment on the flagged
line or the line directly above it::

    # lint: skip=KRN001 -- per-row fallback on a small failed subset

Waived findings are counted in the report's ``metadata["waived"]``.
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
from pathlib import Path

from ..errors import LintError
from .dataflow import WaiverIndex
from .report import LintReport

#: Rule registry: rule ID -> (default severity, one-line description).
KERNEL_RULES = {
    "KRN001": ("error", "Python loop over the batch axis in a kernel"),
    "KRN002": ("warning", "per-simulation scalar extraction inside a "
                          "loop"),
    "KRN003": ("warning", "reduced-precision dtype in a float64 kernel "
                          "(promotion hazard)"),
    "KRN004": ("warning", "in-place write to an array derived by "
                          "subscripting (view/copy hazard)"),
    "KRN005": ("error", "non-vectorized scipy routine called inside a "
                        "kernel"),
}

#: Identifiers that denote the batch extent when they appear inside a
#: ``range(...)`` argument.
_BATCH_SIZE_TOKENS = {"batch", "batch_size", "n_batch", "batch_width",
                      "nsim", "n_sim", "n_sims", "n_simulations"}

#: Names that conventionally hold per-simulation row-index arrays.
_BATCH_INDEX_NAMES = {"rows", "active", "all_rows", "batch_rows",
                      "acc_rows", "rej_rows", "conv_rows", "stiff_rows",
                      "nonstiff_rows", "failed_rows"}

#: Loop-target names that give away per-simulation iteration.
_BATCH_TARGET_NAMES = {"row", "sim", "simulation"}

#: NumPy index producers: iterating their result walks row indices.
_INDEX_PRODUCERS = {"flatnonzero", "nonzero", "argwhere"}

#: Narrow floating dtypes whose mixture with float64 state promotes
#: (or worse, truncates) silently.
_NARROW_DTYPES = {"float32", "float16", "half", "single"}

#: scipy routines that integrate/solve one scalar problem per call —
#: calling them inside a batch kernel serializes the batch.
_SCALAR_SCIPY = {"solve_ivp", "odeint", "ode", "quad", "quad_vec",
                 "brentq", "bisect", "newton", "fsolve", "root",
                 "root_scalar", "minimize", "minimize_scalar"}

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _identifiers(node: ast.AST) -> set[str]:
    return set(_IDENT_RE.findall(ast.unparse(node)))


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c(...)`` -> ['a', 'b', 'c'] (best effort)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return parts[::-1]


def _is_basic_slice(index: ast.AST) -> bool:
    """True for basic (view-returning) indexing, False for fancy."""
    if isinstance(index, ast.Slice):
        return True
    if isinstance(index, ast.Constant):
        return True
    if isinstance(index, ast.Tuple):
        return all(_is_basic_slice(element) for element in index.elts)
    return False


class _KernelVisitor(ast.NodeVisitor):
    """Single-pass AST walk emitting KRN0xx findings."""

    def __init__(self, filename: str, report: LintReport,
                 waivers: WaiverIndex) -> None:
        self.filename = filename
        self.report = report
        self.waivers = waivers
        self.waived = 0
        self.loop_depth = 0
        self.scipy_names: set[str] = set()
        # Per-function map: name -> (source line, was fancy indexing).
        self.subscript_bindings: list[dict[str, tuple[int, bool]]] = [{}]

    # -- plumbing ------------------------------------------------------

    def emit(self, rule_id: str, node: ast.AST, message: str,
             hint: str = "") -> None:
        lineno = getattr(node, "lineno", 0)
        if self.waivers.suppresses(rule_id, lineno):
            self.waived += 1
            return
        self.report.add(rule_id, KERNEL_RULES[rule_id][0], message,
                        f"{self.filename}:{lineno}", hint)

    # -- imports (for KRN005 name resolution) --------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.split(".")[0] == "scipy":
            for alias in node.names:
                self.scipy_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- KRN001: batch-axis loops --------------------------------------

    def _batch_axis_iter(self, iterator: ast.AST) -> str | None:
        if isinstance(iterator, ast.Name) \
                and iterator.id in _BATCH_INDEX_NAMES:
            return f"iterates the row-index array {iterator.id!r}"
        if isinstance(iterator, ast.Call):
            chain = _attr_chain(iterator.func)
            if chain and chain[-1] == "range":
                tokens = set()
                for argument in iterator.args:
                    tokens |= _identifiers(argument)
                hits = tokens & _BATCH_SIZE_TOKENS
                if hits:
                    return ("ranges over the batch extent "
                            f"({', '.join(sorted(hits))})")
            if chain and chain[-1] in _INDEX_PRODUCERS:
                return (f"iterates np.{chain[-1]}(...) — a per-simulation "
                        "index walk")
        return None

    def _batch_axis_target(self, target: ast.AST) -> str | None:
        names = []
        if isinstance(target, ast.Name):
            names = [target.id]
        elif isinstance(target, ast.Tuple):
            names = [e.id for e in target.elts if isinstance(e, ast.Name)]
        hits = set(names) & _BATCH_TARGET_NAMES
        if hits:
            return (f"loop variable {sorted(hits)[0]!r} walks simulations "
                    "one at a time")
        return None

    def visit_For(self, node: ast.For) -> None:
        reason = self._batch_axis_iter(node.iter) \
            or self._batch_axis_target(node.target)
        if reason:
            self.emit("KRN001", node,
                      f"Python for-loop over the batch axis: {reason}",
                      "replace with a vectorized NumPy operation over "
                      "the whole sub-batch")
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        hits = _identifiers(node.test) & _BATCH_SIZE_TOKENS
        if hits:
            self.emit("KRN001", node,
                      "Python while-loop conditioned on the batch extent "
                      f"({', '.join(sorted(hits))})",
                      "advance all simulations per iteration, not one")
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def _visit_comprehension(self, node: ast.AST) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- KRN002 / KRN003 / KRN005: calls -------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        terminal = chain[-1] if chain else ""

        if self.loop_depth > 0:
            if terminal == "item" and isinstance(node.func, ast.Attribute):
                self.emit("KRN002", node,
                          "ndarray.item() inside a loop pulls one "
                          "simulation's scalar through the interpreter",
                          "keep the value as an array slice")
            if isinstance(node.func, ast.Name) \
                    and node.func.id in ("float", "int") \
                    and len(node.args) == 1 \
                    and isinstance(node.args[0], ast.Subscript):
                self.emit("KRN002", node,
                          f"{node.func.id}(array[...]) inside a loop "
                          "extracts one simulation's value per iteration",
                          "operate on the whole axis instead")

        if terminal in _SCALAR_SCIPY:
            from_scipy = (isinstance(node.func, ast.Name)
                          and node.func.id in self.scipy_names)
            via_module = bool({"scipy", "integrate", "optimize"}
                              & set(chain[:-1]))
            if from_scipy or via_module:
                self.emit("KRN005", node,
                          f"scipy routine {terminal!r} solves one scalar "
                          "problem per call; inside a batch kernel it "
                          "serializes the batch",
                          "use the batched substrate (or a vectorized "
                          "formulation) instead")

        if terminal == "astype":
            # Attribute arguments (np.float32) are caught by
            # visit_Attribute; only string dtypes need handling here.
            for argument in node.args:
                if isinstance(argument, ast.Constant):
                    self._check_dtype_value(argument)
        self.generic_visit(node)

    def _check_dtype_value(self, node: ast.AST) -> None:
        narrow = None
        if isinstance(node, ast.Attribute) and node.attr in _NARROW_DTYPES:
            narrow = node.attr
        elif isinstance(node, ast.Constant) \
                and isinstance(node.value, str) \
                and node.value in _NARROW_DTYPES:
            narrow = node.value
        if narrow:
            self.emit("KRN003", node,
                      f"narrow dtype {narrow!r} in a float64 kernel: "
                      "mixed-precision expressions promote per element "
                      "(or truncate solver state)",
                      "keep kernel state uniformly float64")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _NARROW_DTYPES:
            chain = _attr_chain(node)
            if chain and chain[0] in ("np", "numpy"):
                self._check_dtype_value(node)
        self.generic_visit(node)

    def visit_keyword(self, node: ast.keyword) -> None:
        # Attribute dtypes (np.float32) are caught by visit_Attribute;
        # only string dtypes ("float32") need handling here.
        if node.arg == "dtype" and isinstance(node.value, ast.Constant):
            self._check_dtype_value(node.value)
        self.generic_visit(node)

    # -- KRN004: writes through subscript-derived arrays ---------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.subscript_bindings.append({})
        self.generic_visit(node)
        self.subscript_bindings.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        if isinstance(value, ast.Subscript) \
                and isinstance(value.value, ast.Name):
            basic = _is_basic_slice(value.slice)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.subscript_bindings[-1][target.id] = \
                        (node.lineno, basic)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.subscript_bindings[-1].pop(target.id, None)
        for target in node.targets:
            self._check_subscript_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_subscript_store(node.target)
        self.generic_visit(node)

    def _check_subscript_store(self, target: ast.AST) -> None:
        if not (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)):
            return
        binding = self.subscript_bindings[-1].get(target.value.id)
        if binding is None:
            return
        origin_line, basic = binding
        if basic:
            self.emit("KRN004", target,
                      f"in-place write to {target.value.id!r}, a basic-"
                      f"slice view bound on line {origin_line}: the write "
                      "aliases the original solver state",
                      "write through the original array with an explicit "
                      "index")
        else:
            self.emit("KRN004", target,
                      f"in-place write to {target.value.id!r}, bound by "
                      f"fancy indexing on line {origin_line}: fancy "
                      "indexing copies, so the write never reaches the "
                      "solver state",
                      "write through the original array: "
                      f"original[rows] = ...")


def lint_source(source: str, filename: str = "<kernel>") -> LintReport:
    """Lint one kernel source string; returns a :class:`LintReport`.

    Waiver pragmas that suppress nothing are themselves reported as
    ``LNT000 unused-suppression`` findings, so the self-lint gate
    fails when a fixed defect leaves its pragma behind.
    """
    report = LintReport(subject=filename)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as error:
        raise LintError(f"cannot parse {filename}: {error}") from error
    waivers = WaiverIndex.from_source(source)
    visitor = _KernelVisitor(filename, report, waivers)
    visitor.visit(tree)
    for lineno, rule in waivers.stale(
            lambda r: r.startswith(("KRN", "LNT"))):
        report.add("LNT000", "warning",
                   f"stale waiver: the {rule} pragma on line {lineno} "
                   "suppresses nothing",
                   f"{filename}:{lineno}", "remove the pragma")
    report.metadata["waived"] = visitor.waived
    return report


def lint_file(path: str | Path) -> LintReport:
    """Lint one kernel source file."""
    path = Path(path)
    try:
        source = path.read_text()
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}") from error
    return lint_source(source, str(path))


def lint_callable(function) -> LintReport:
    """Lint a registered RHS callable (or any function) by source.

    Accepts anything :func:`inspect.getsource` understands; builtins
    and C extensions have no Python body to analyze and raise
    :class:`~repro.errors.LintError`.
    """
    try:
        source = inspect.getsource(function)
    except (OSError, TypeError) as error:
        raise LintError(
            f"cannot fetch source of {function!r}: {error}") from error
    code = getattr(function, "__code__", None)
    where = (f"{code.co_filename}:{code.co_firstlineno}"
             if code is not None else getattr(function, "__name__",
                                              "<callable>"))
    return lint_source(textwrap.dedent(source), where)


def shipped_kernel_paths() -> list[Path]:
    """The repo's own batch-kernel modules (``gpu/batch_*.py``)."""
    gpu_dir = Path(__file__).resolve().parent.parent / "gpu"
    return sorted(gpu_dir.glob("batch_*.py"))


def lint_kernels(paths: list[str | Path] | None = None) -> LintReport:
    """Lint a set of kernel files (default: the shipped batch solvers)."""
    targets = [Path(p) for p in paths] if paths else shipped_kernel_paths()
    if not targets:
        raise LintError("no kernel files to lint")
    merged = LintReport(
        subject=f"{len(targets)} kernel file(s)",
        metadata={"files": [str(t) for t in targets], "waived": 0})
    for target in targets:
        part = lint_file(target)
        merged.findings.extend(part.findings)
        merged.metadata["waived"] += part.metadata.get("waived", 0)
    return merged
