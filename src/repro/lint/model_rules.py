"""Static model analysis: structural lint rules over an RBM (RBM0xx).

Every rule operates on a :class:`~repro.model.rbm.ReactionBasedModel`
(optionally specialized by a
:class:`~repro.model.parameterization.Parameterization`) *without
integrating anything*: the stoichiometric graph, the null space of S
and the rate-constant magnitudes are enough to catch the structural
defects that otherwise surface as silently wrong sweep results.

The stiffness-risk score (rule RBM009) doubles as a cheap prefilter
hint for :mod:`repro.gpu.router`: batches whose rate constants span
less than :data:`STIFFNESS_SAFE_DECADES` decades can skip the Jacobian
power-iteration probe entirely.
"""

from __future__ import annotations

import numpy as np

from ..model import Parameterization, ReactionBasedModel
from .report import LintReport

#: Rule registry: rule ID -> (default severity, one-line description).
MODEL_RULES = {
    "RBM001": ("warning", "dead species: referenced by no reaction"),
    "RBM002": ("warning", "unproducible species: starts empty and no "
                          "fireable reaction ever produces it"),
    "RBM003": ("info", "unbounded accumulation: species is produced but "
                       "never consumed and not conserved"),
    "RBM004": ("warning", "disconnected reaction network: structurally "
                          "independent sub-models"),
    "RBM005": ("warning", "duplicate reaction: same reactants, products "
                          "and kinetic law"),
    "RBM006": ("error", "zero-flux reaction: can never fire from the "
                        "initial state"),
    "RBM007": ("warning", "degenerate rate constant: effectively zero "
                          "next to the fastest reaction"),
    "RBM008": ("warning", "conserved pool with zero initial total: its "
                          "species are frozen at zero"),
    "RBM009": ("info", "stiffness risk: rate constants span many orders "
                       "of magnitude"),
}

#: Decades of rate-constant spread above which RBM009 fires.
STIFFNESS_RISK_DECADES = 4.0

#: Decades of spread below which the router may skip its dynamic
#: stiffness probe (see :func:`repro.gpu.router.classify_batch`).
STIFFNESS_SAFE_DECADES = 2.0

#: Relative magnitude below which a rate constant is numerically
#: invisible next to the fastest reaction's flux (double precision
#: holds ~15-16 significant digits).
_DEGENERATE_RATIO = 1e-12

_TOL = 1e-10


def stiffness_risk_score(rate_constants: np.ndarray) -> float:
    """Decades spanned by the positive rate constants.

    ``log10(k_max / k_min)`` over the finite, strictly positive entries
    of ``rate_constants`` (any shape). A purely static proxy for the
    spread of dynamical timescales: 0 means all reactions run at one
    speed, ~9 is Robertson territory.
    """
    k = np.asarray(rate_constants, dtype=np.float64).ravel()
    k = k[np.isfinite(k) & (k > 0.0)]
    if k.size < 2:
        return 0.0
    return float(np.log10(k.max() / k.min()))


def _law_species(reaction) -> set[str]:
    """Species a kinetic law reads beyond the stoichiometric reactants
    (custom-law modifiers such as an enzyme concentration)."""
    names = getattr(reaction.law, "species_names", None)
    if names is None:
        return set()
    return set(names())


def _reachable_closure(model: ReactionBasedModel,
                       initial_state: np.ndarray
                       ) -> tuple[set[str], list[bool]]:
    """Fixpoint of 'which species can ever hold mass'.

    A species is available when its initial concentration is positive
    or some fireable reaction net-produces it; a reaction is fireable
    when all its stoichiometric reactants are available (zero-order
    inflows always fire). Kinetic-law modifiers are deliberately not
    required: a zero modifier gives zero flux but does not make the
    reaction structurally dead.
    """
    names = model.species.names
    available = {name for name, x0 in zip(names, initial_state) if x0 > 0.0}
    fireable = [False] * model.n_reactions
    changed = True
    while changed:
        changed = False
        for i, reaction in enumerate(model.reactions):
            if fireable[i]:
                continue
            if all(name in available for name in reaction.reactants):
                fireable[i] = True
                changed = True
                for name in reaction.products:
                    if reaction.net_change(name) > 0:
                        available.add(name)
    return available, fireable


def _connected_components(model: ReactionBasedModel) -> list[set[str]]:
    """Connected components of the species co-occurrence graph.

    Two species are connected when one reaction touches both, either
    stoichiometrically or through a kinetic-law modifier. Species that
    no reaction references at all are excluded (rule RBM001 covers
    them).
    """
    parent: dict[str, str] = {}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_a] = root_b

    for reaction in model.reactions:
        participants = (reaction.species_names() | _law_species(reaction)) \
            & set(model.species.names)
        participants = sorted(participants)
        for name in participants:
            parent.setdefault(name, name)
        for name in participants[1:]:
            union(participants[0], name)

    components: dict[str, set[str]] = {}
    for name in parent:
        components.setdefault(find(name), set()).add(name)
    return sorted(components.values(), key=lambda c: sorted(c)[0])


def _nonnegative_laws(laws: np.ndarray) -> np.ndarray:
    """Sign-canonicalized conservation laws that describe a pool.

    Each law is flipped so its largest-magnitude entry is positive;
    only laws that are then (numerically) non-negative everywhere are
    returned — those are the moiety pools whose total can meaningfully
    be 'empty'. Sign-indefinite combinations of a multi-dimensional
    null space are skipped (a linter heuristic, documented as such).
    """
    pools = []
    for law in laws:
        peak = law[np.argmax(np.abs(law))]
        if peak < 0:
            law = -law
        if np.all(law >= -_TOL):
            pools.append(law)
    return np.array(pools) if pools else np.zeros((0, laws.shape[1]))


def lint_model(model: ReactionBasedModel,
               parameterization: Parameterization | None = None
               ) -> LintReport:
    """Run every RBM0xx rule and return the collected findings.

    ``parameterization`` overrides the model's nominal rate constants
    and initial state, so a sweep's specific corner can be linted
    without mutating the model.
    """
    model.validate()
    if parameterization is not None:
        model.check_parameterization(parameterization)
        constants = parameterization.rate_constants
        initial = parameterization.initial_state
    else:
        constants = model.rate_constants()
        initial = model.initial_state()

    report = LintReport(subject=f"model {model.name!r}")
    names = model.species.names

    # RBM001 — dead species.
    referenced: set[str] = set()
    for reaction in model.reactions:
        referenced |= reaction.species_names() | _law_species(reaction)
    for name in names:
        if name not in referenced:
            report.add("RBM001", MODEL_RULES["RBM001"][0],
                       f"species {name!r} is referenced by no reaction; "
                       "its ODE is identically dX/dt = 0",
                       f"{model.name}:species[{name}]",
                       "drop it or wire it into the network")

    # RBM002 / RBM006 — reachability closure from the initial state.
    available, fireable = _reachable_closure(model, initial)
    for name, x0 in zip(names, initial):
        needed = any(name in r.reactants for r in model.reactions)
        if x0 <= 0.0 and name not in available and needed:
            report.add("RBM002", MODEL_RULES["RBM002"][0],
                       f"species {name!r} starts at zero and no fireable "
                       "reaction ever produces it, yet reactions consume "
                       "it", f"{model.name}:species[{name}]",
                       "give it mass at t=0 or add a producing reaction")
    for i, (reaction, fires) in enumerate(zip(model.reactions, fireable)):
        if not fires:
            report.add("RBM006", MODEL_RULES["RBM006"][0],
                       f"reaction {reaction.text()!r} can never fire: some "
                       "reactant is empty at t=0 and never produced",
                       f"{model.name}:reaction[{i}]",
                       "its rate constant is unused — sweeping it is "
                       "meaningless")

    # Conservation laws (needed by RBM003 and RBM008).
    laws = model.conservation_law_basis()
    conserved_support = set()
    for law in laws:
        for index in np.flatnonzero(np.abs(law) > _TOL):
            conserved_support.add(names[index])

    # RBM003 — unbounded accumulation.
    for name in names:
        produced = any(r.net_change(name) > 0 for r in model.reactions)
        consumed = any(r.net_change(name) < 0 for r in model.reactions)
        if produced and not consumed and name not in conserved_support:
            report.add("RBM003", MODEL_RULES["RBM003"][0],
                       f"species {name!r} is net-produced but never "
                       "consumed and lies in no conservation law; it "
                       "grows without bound",
                       f"{model.name}:species[{name}]",
                       "add a drain reaction if accumulation is not "
                       "intended")

    # RBM004 — disconnected components.
    components = _connected_components(model)
    if len(components) > 1:
        rendered = "; ".join(
            "{" + ", ".join(sorted(c)) + "}" for c in components)
        report.add("RBM004", MODEL_RULES["RBM004"][0],
                   f"the reaction network splits into {len(components)} "
                   f"independent components: {rendered}",
                   f"{model.name}:network",
                   "independent sub-models are cheaper to analyze "
                   "separately — or a coupling reaction is missing")

    # RBM005 — duplicate / shadowed reactions.
    groups: dict[tuple, list[int]] = {}
    for i, reaction in enumerate(model.reactions):
        key = (frozenset(reaction.reactants.items()),
               frozenset(reaction.products.items()),
               reaction.law.describe())
        groups.setdefault(key, []).append(i)
    for indices in groups.values():
        if len(indices) > 1:
            first = model.reactions[indices[0]]
            rates = ", ".join(f"{model.reactions[i].rate_constant:g}"
                              for i in indices)
            report.add("RBM005", MODEL_RULES["RBM005"][0],
                       f"reactions {indices} are copies of "
                       f"{first.text()!r} (rates {rates}); their fluxes "
                       "silently sum",
                       f"{model.name}:reaction{indices}",
                       "merge them into one reaction with the combined "
                       "rate")

    # RBM007 — degenerate rate constants.
    finite = constants[np.isfinite(constants) & (constants > 0.0)]
    k_max = float(finite.max()) if finite.size else 0.0
    for i, k in enumerate(constants):
        if not np.isfinite(k):
            report.add("RBM007", MODEL_RULES["RBM007"][0],
                       f"rate constant k[{i}] = {k} is not finite",
                       f"{model.name}:reaction[{i}]")
        elif k_max > 0.0 and k < k_max * _DEGENERATE_RATIO:
            report.add("RBM007", MODEL_RULES["RBM007"][0],
                       f"rate constant k[{i}] = {k:g} is more than 12 "
                       "orders of magnitude below the fastest reaction "
                       f"({k_max:g}); its flux is lost to double-"
                       "precision rounding in the aggregate derivative",
                       f"{model.name}:reaction[{i}]",
                       "rescale the model or drop the reaction")

    # RBM008 — empty conserved pools.
    for law in _nonnegative_laws(laws):
        total = float(law @ initial)
        if abs(total) <= _TOL:
            members = ", ".join(names[j] for j in
                                np.flatnonzero(np.abs(law) > _TOL))
            report.add("RBM008", MODEL_RULES["RBM008"][0],
                       f"the conserved pool {{{members}}} has zero total "
                       "at t=0, so every member stays at zero forever",
                       f"{model.name}:conservation",
                       "seed the pool or remove its species")

    # RBM009 — static stiffness risk (also the router prefilter hint).
    risk = stiffness_risk_score(constants)
    report.metadata["stiffness_risk_decades"] = risk
    if risk >= STIFFNESS_RISK_DECADES:
        report.add("RBM009", MODEL_RULES["RBM009"][0],
                   f"rate constants span {risk:.1f} orders of magnitude; "
                   "expect stiffness — the explicit solver will crawl or "
                   "abort", f"{model.name}:rates",
                   "use the 'auto'/router method so stiff simulations "
                   "land on Radau IIA")
    return report
