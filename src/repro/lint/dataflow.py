"""AST-based dataflow engine powering the deep static-analysis pass.

The shallow linters in :mod:`repro.lint.kernel_rules` pattern-match on
single AST nodes; that is enough to spot a Python loop over the batch
axis, but not to prove dataflow properties such as "no wall-clock value
reaches a checkpoint fingerprint" or "this status code is handled
somewhere". This module provides the four classic ingredients the deep
rules (``DET0xx`` / ``CON0xx``, see :mod:`repro.lint.deep_rules` and
:mod:`repro.lint.contract_rules`) are built on:

* **Control-flow graphs** (:class:`ControlFlowGraph`) — per-function
  basic blocks with branch/loop/exception edges, built by
  :func:`build_cfg`.
* **Def-use chains** (:class:`DefUseChains`) — reaching definitions
  computed by a worklist pass over the CFG, exposing def→use edges,
  use→reaching-def queries and a transitive taint closure over local
  assignment flows.
* **Alias sets** (:class:`AliasSets`) — flow-insensitive may-alias
  union-find over simple name bindings, NumPy view producers and basic
  slices.
* **A project call graph** (:class:`ProjectIndex`) — function records
  for every indexed module with name-based (over-approximate) call
  edges, including calls through decorators, ``functools.partial``
  bindings and bare callable references, plus BFS reachability.

Everything is best-effort and over-approximate in the direction that
keeps rules sound-for-reporting: unknown constructs widen (more edges,
more aliases) rather than silently dropping facts. Analysis never
executes the target code.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import LintError

_PRAGMA_RE = re.compile(r"#\s*lint:\s*skip=([A-Z0-9,\s]+?)(?:\s*(?:--|—).*)?$")


# ======================================================================
# waivers


@dataclass(frozen=True)
class Waiver:
    """One ``# lint: skip=RULE[,RULE...]`` pragma comment.

    The pragma suppresses findings on its own line and on the line
    directly below it (a pragma on its own line covers the statement
    it precedes).
    """

    lineno: int
    rules: tuple[str, ...]

    @property
    def covered_lines(self) -> tuple[int, int]:
        return (self.lineno, self.lineno + 1)


def parse_waivers(source: str) -> list[Waiver]:
    """Extract waiver pragmas from real comment tokens only.

    Uses :mod:`tokenize` so pragma *examples* inside docstrings (the
    shallow linter's own documentation quotes one) are not mistaken for
    live waivers. Falls back to a line-based scan when the source does
    not tokenize (the AST parse will report the real error).
    """
    waivers: list[Waiver] = []
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _PRAGMA_RE.search(line)
            if match is not None:
                waivers.append(_waiver_from_match(lineno, match))
        return waivers
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if match is not None:
            waivers.append(_waiver_from_match(token.start[0], match))
    return waivers


def _waiver_from_match(lineno: int, match: re.Match) -> Waiver:
    rules = tuple(sorted({rule.strip()
                          for rule in match.group(1).split(",")
                          if rule.strip()}))
    return Waiver(lineno, rules)


class WaiverIndex:
    """Lookup + consumption tracking over one file's waivers.

    :meth:`suppresses` both answers the query and records the waiver as
    *used*; :meth:`stale` then lists the (line, rule) pairs that never
    suppressed anything — the raw material of ``LNT000`` (shallow) and
    ``CON004`` (deep) unused-suppression findings. Each analyzer passes
    a ``known`` predicate so it only reports staleness for rule IDs in
    its own families.
    """

    def __init__(self, waivers: list[Waiver]) -> None:
        self.waivers = list(waivers)
        self._by_line: dict[int, list[tuple[Waiver, str]]] = {}
        self.used: set[tuple[int, str]] = set()
        for waiver in self.waivers:
            for line in waiver.covered_lines:
                for rule in waiver.rules:
                    self._by_line.setdefault(line, []).append((waiver, rule))

    @classmethod
    def from_source(cls, source: str) -> "WaiverIndex":
        return cls(parse_waivers(source))

    def suppresses(self, rule_id: str, lineno: int) -> bool:
        for waiver, rule in self._by_line.get(lineno, ()):
            if rule == rule_id:
                self.used.add((waiver.lineno, rule))
                return True
        return False

    def stale(self, known) -> list[tuple[int, str]]:
        """(pragma line, rule) pairs that suppressed nothing.

        ``known`` is a predicate over rule IDs restricting the check to
        the calling analyzer's rule families.
        """
        entries = []
        for waiver in self.waivers:
            for rule in waiver.rules:
                if known(rule) and (waiver.lineno, rule) not in self.used:
                    entries.append((waiver.lineno, rule))
        return entries


# ======================================================================
# control-flow graphs


@dataclass
class CFGElement:
    """One analyzable unit inside a basic block.

    ``kind`` tells the dataflow pass which fields of ``node`` to read:

    * ``"stmt"`` — a whole simple statement.
    * ``"test"`` — the condition expression of an ``if``/``while``.
    * ``"for"`` — a ``for`` header: uses its ``iter``, defines its
      ``target``.
    * ``"with"`` — one ``with`` item: uses the context expression,
      defines the optional ``as`` names.
    * ``"except"`` — an except handler: uses the exception expression,
      defines the ``as`` name.
    * ``"match"`` — a ``match`` subject or case pattern.
    """

    node: ast.AST
    kind: str = "stmt"


@dataclass
class BasicBlock:
    """A straight-line run of CFG elements."""

    index: int
    elements: list[CFGElement] = field(default_factory=list)
    successors: set[int] = field(default_factory=set)
    predecessors: set[int] = field(default_factory=set)


class ControlFlowGraph:
    """Per-function CFG with a unique entry and exit block."""

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.entry = self._new_block().index
        self.exit = self._new_block().index

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def add_edge(self, src: int, dst: int) -> None:
        self.blocks[src].successors.add(dst)
        self.blocks[dst].predecessors.add(src)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def elements(self):
        for block in self.blocks:
            yield from block.elements


class _CFGBuilder:
    """Builds a :class:`ControlFlowGraph` from a statement list.

    ``break``/``continue`` resolve against a loop stack; ``return`` and
    ``raise`` edge to the exit block. ``try`` conservatively assumes any
    statement in the body may transfer to every handler.
    """

    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()
        self.loop_stack: list[tuple[int, int]] = []  # (head, after)

    def build(self, body: list[ast.stmt]) -> ControlFlowGraph:
        first = self.cfg._new_block()
        self.cfg.add_edge(self.cfg.entry, first.index)
        last = self._sequence(body, first.index)
        if last is not None:
            self.cfg.add_edge(last, self.cfg.exit)
        return self.cfg

    # -- helpers -------------------------------------------------------

    def _fresh(self, *predecessors: int) -> int:
        block = self.cfg._new_block()
        for pred in predecessors:
            if pred is not None:
                self.cfg.add_edge(pred, block.index)
        return block.index

    def _sequence(self, body: list[ast.stmt],
                  current: int | None) -> int | None:
        """Thread a statement list; returns the live trailing block."""
        for stmt in body:
            if current is None:
                # Unreachable code still gets analyzed (a dead block).
                current = self._fresh()
            current = self._statement(stmt, current)
        return current

    def _statement(self, stmt: ast.stmt, current: int) -> int | None:
        handler = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if handler is not None:
            return handler(stmt, current)
        self.cfg.blocks[current].elements.append(CFGElement(stmt))
        return current

    # -- compound statements -------------------------------------------

    def _stmt_If(self, stmt: ast.If, current: int) -> int | None:
        self.cfg.blocks[current].elements.append(
            CFGElement(stmt.test, "test"))
        then_entry = self._fresh(current)
        then_exit = self._sequence(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self._fresh(current)
            else_exit = self._sequence(stmt.orelse, else_entry)
        else:
            else_exit = current
        if then_exit is None and else_exit is None:
            return None
        join = self._fresh(then_exit, else_exit)
        return join

    def _loop(self, stmt, current: int, header: list[CFGElement]
              ) -> int | None:
        head = self._fresh(current)
        self.cfg.blocks[head].elements.extend(header)
        after = self.cfg._new_block().index
        self.cfg.add_edge(head, after)  # zero-iteration path
        self.loop_stack.append((head, after))
        body_entry = self._fresh(head)
        body_exit = self._sequence(stmt.body, body_entry)
        if body_exit is not None:
            self.cfg.add_edge(body_exit, head)  # back edge
        self.loop_stack.pop()
        if stmt.orelse:
            else_entry = self._fresh(head)
            else_exit = self._sequence(stmt.orelse, else_entry)
            if else_exit is not None:
                self.cfg.add_edge(else_exit, after)
        return after

    def _stmt_While(self, stmt: ast.While, current: int) -> int | None:
        return self._loop(stmt, current, [CFGElement(stmt.test, "test")])

    def _stmt_For(self, stmt: ast.For, current: int) -> int | None:
        return self._loop(stmt, current, [CFGElement(stmt, "for")])

    _stmt_AsyncFor = _stmt_For

    def _stmt_With(self, stmt: ast.With, current: int) -> int | None:
        for item in stmt.items:
            self.cfg.blocks[current].elements.append(
                CFGElement(item, "with"))
        return self._sequence(stmt.body, current)

    _stmt_AsyncWith = _stmt_With

    def _stmt_Try(self, stmt, current: int) -> int | None:
        body_entry = self._fresh(current)
        body_exit = self._sequence(stmt.body, body_entry)
        exits: list[int] = []
        if body_exit is not None:
            if stmt.orelse:
                else_exit = self._sequence(stmt.orelse,
                                           self._fresh(body_exit))
                if else_exit is not None:
                    exits.append(else_exit)
            else:
                exits.append(body_exit)
        for handler in stmt.handlers:
            # Any statement in the body may raise: edge from the body's
            # entry region to the handler (conservative).
            handler_entry = self._fresh(body_entry)
            if body_exit is not None:
                self.cfg.add_edge(body_exit, handler_entry)
            self.cfg.blocks[handler_entry].elements.append(
                CFGElement(handler, "except"))
            handler_exit = self._sequence(handler.body, handler_entry)
            if handler_exit is not None:
                exits.append(handler_exit)
        if stmt.finalbody:
            final_entry = self._fresh(*exits) if exits else self._fresh()
            for exit_block in exits or []:
                pass  # edges added by _fresh
            final_exit = self._sequence(stmt.finalbody, final_entry)
            return final_exit
        if not exits:
            return None
        join = self._fresh(*exits)
        return join

    _stmt_TryStar = _stmt_Try

    def _stmt_Match(self, stmt, current: int) -> int | None:
        self.cfg.blocks[current].elements.append(
            CFGElement(stmt.subject, "test"))
        exits: list[int] = []
        for case in stmt.cases:
            case_entry = self._fresh(current)
            self.cfg.blocks[case_entry].elements.append(
                CFGElement(case, "match"))
            case_exit = self._sequence(case.body, case_entry)
            if case_exit is not None:
                exits.append(case_exit)
        exits.append(current)  # no case may match
        join = self._fresh(*exits)
        return join

    # -- jumps ---------------------------------------------------------

    def _stmt_Return(self, stmt: ast.Return, current: int) -> None:
        self.cfg.blocks[current].elements.append(CFGElement(stmt))
        self.cfg.add_edge(current, self.cfg.exit)
        return None

    def _stmt_Raise(self, stmt: ast.Raise, current: int) -> None:
        self.cfg.blocks[current].elements.append(CFGElement(stmt))
        self.cfg.add_edge(current, self.cfg.exit)
        return None

    def _stmt_Break(self, stmt: ast.Break, current: int) -> None:
        self.cfg.blocks[current].elements.append(CFGElement(stmt))
        if self.loop_stack:
            self.cfg.add_edge(current, self.loop_stack[-1][1])
        else:
            self.cfg.add_edge(current, self.cfg.exit)
        return None

    def _stmt_Continue(self, stmt: ast.Continue, current: int) -> None:
        self.cfg.blocks[current].elements.append(CFGElement(stmt))
        if self.loop_stack:
            self.cfg.add_edge(current, self.loop_stack[-1][0])
        else:
            self.cfg.add_edge(current, self.cfg.exit)
        return None


def build_cfg(function: ast.AST) -> ControlFlowGraph:
    """CFG of a function definition (or any object with a ``body``)."""
    body = getattr(function, "body", None)
    if not isinstance(body, list):
        raise LintError(f"cannot build a CFG for {type(function).__name__}")
    return _CFGBuilder().build(body)


# ======================================================================
# def-use chains


@dataclass(frozen=True)
class Definition:
    """One binding of a local name."""

    name: str
    lineno: int
    col: int
    kind: str  # 'assign' | 'aug' | 'for' | 'param' | 'with' | ...
    value_id: int = -1  # id() of the RHS expression node, -1 if none

    def __repr__(self) -> str:  # compact for test failure output
        return f"<def {self.name}@{self.lineno} {self.kind}>"


def _target_names(target: ast.AST) -> list[ast.AST]:
    """Name nodes bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        return [target]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[ast.AST] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []  # attribute / subscript stores bind no local name


def _load_names(node: ast.AST | None) -> list[ast.Name]:
    """Every Name in Load context under ``node`` (nested defs skipped)."""
    if node is None:
        return []
    loads: list[ast.Name] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)) and current is not node:
            continue  # nested scopes keep their own chains
        if isinstance(current, ast.Name) and \
                isinstance(current.ctx, ast.Load):
            loads.append(current)
        stack.extend(ast.iter_child_nodes(current))
    return loads


class DefUseChains:
    """Reaching-definition chains of one function.

    Attributes
    ----------
    definitions:
        Every :class:`Definition` in source order.
    uses_of:
        Definition -> list of ``ast.Name`` load sites it reaches.
    reaching:
        ``id(ast.Name)`` -> definitions that may flow into that use.
    flows:
        Definition -> definitions whose binding expression consumed one
        of its uses (the local assignment-flow relation the taint
        closure walks).
    value_of:
        Definition -> its RHS expression node (``None`` for parameters,
        loop targets and other value-less bindings).
    """

    def __init__(self, function: ast.AST,
                 cfg: ControlFlowGraph | None = None) -> None:
        self.function = function
        self.cfg = cfg if cfg is not None else build_cfg(function)
        self.definitions: list[Definition] = []
        self.uses_of: dict[Definition, list[ast.Name]] = {}
        self.reaching: dict[int, list[Definition]] = {}
        self.flows: dict[Definition, set[Definition]] = {}
        self.value_of: dict[Definition, ast.AST | None] = {}
        self._analyze()

    # -- per-element fact extraction -----------------------------------

    def _element_facts(self, element: CFGElement
                       ) -> tuple[list[ast.Name], list[Definition]]:
        """(uses, defs) of one CFG element, in evaluation order."""
        node, kind = element.node, element.kind
        uses: list[ast.Name] = []
        defs: list[Definition] = []

        def bind(target: ast.AST, def_kind: str,
                 value: ast.AST | None) -> None:
            for name_node in _target_names(target):
                definition = Definition(
                    name_node.id, getattr(name_node, "lineno", 0),
                    getattr(name_node, "col_offset", 0), def_kind,
                    id(value) if value is not None else -1)
                defs.append(definition)
                self.value_of[definition] = value

        if kind == "test":
            uses = _load_names(node)
        elif kind == "for":
            uses = _load_names(node.iter)
            bind(node.target, "for", node.iter)
        elif kind == "with":
            uses = _load_names(node.context_expr)
            if node.optional_vars is not None:
                bind(node.optional_vars, "with", node.context_expr)
        elif kind == "except":
            uses = _load_names(node.type)
            if node.name:
                definition = Definition(node.name, node.lineno,
                                        node.col_offset, "except")
                defs.append(definition)
                self.value_of[definition] = None
        elif kind == "match":
            uses = _load_names(getattr(node, "guard", None))
            for capture in ast.walk(node):
                name = getattr(capture, "name", None)
                if isinstance(capture, (ast.MatchAs, ast.MatchStar)) \
                        and isinstance(name, str):
                    definition = Definition(name, capture.lineno,
                                            capture.col_offset, "match")
                    defs.append(definition)
                    self.value_of[definition] = None
        elif isinstance(node, ast.Assign):
            uses = _load_names(node.value)
            for target in node.targets:
                bind(target, "assign", node.value)
                uses.extend(_load_names_of_store_target(target))
        elif isinstance(node, ast.AnnAssign):
            uses = _load_names(node.value)
            if node.value is not None:
                bind(node.target, "assign", node.value)
        elif isinstance(node, ast.AugAssign):
            # x += e reads x and e, then rebinds x. The target node
            # itself records the read: it lives in the real tree, so
            # parent-map queries (rule sink checks) work on it.
            uses = _load_names(node.value)
            if isinstance(node.target, ast.Name):
                uses.append(node.target)
                bind(node.target, "aug", node)
            else:
                uses.extend(_load_names_of_store_target(node.target))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in node.decorator_list:
                uses.extend(_load_names(decorator))
            for default in (node.args.defaults + node.args.kw_defaults):
                uses.extend(_load_names(default))
            definition = Definition(node.name, node.lineno,
                                    node.col_offset, "funcdef")
            defs.append(definition)
            self.value_of[definition] = node
        elif isinstance(node, ast.ClassDef):
            for decorator in node.decorator_list:
                uses.extend(_load_names(decorator))
            for base in node.bases:
                uses.extend(_load_names(base))
            definition = Definition(node.name, node.lineno,
                                    node.col_offset, "classdef")
            defs.append(definition)
            self.value_of[definition] = node
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                local = (alias.asname or alias.name).split(".")[0]
                definition = Definition(local, node.lineno,
                                        node.col_offset, "import")
                defs.append(definition)
                self.value_of[definition] = None
        elif isinstance(node, ast.stmt):
            uses = _load_names(node)
        else:  # bare expression element
            uses = _load_names(node)
        return uses, defs

    # -- the worklist pass ---------------------------------------------

    def _parameters(self) -> list[Definition]:
        args = getattr(self.function, "args", None)
        if args is None:
            return []
        params = []
        every = (list(args.posonlyargs) + list(args.args)
                 + ([args.vararg] if args.vararg else [])
                 + list(args.kwonlyargs)
                 + ([args.kwarg] if args.kwarg else []))
        for arg in every:
            definition = Definition(arg.arg, arg.lineno, arg.col_offset,
                                    "param")
            params.append(definition)
            self.value_of[definition] = None
        return params

    def _analyze(self) -> None:
        cfg = self.cfg
        # Per-block facts, computed once.
        block_facts = [[self._element_facts(element)
                        for element in block.elements]
                       for block in cfg.blocks]
        for facts in block_facts:
            for _, defs in facts:
                self.definitions.extend(defs)
        params = self._parameters()
        self.definitions = params + self.definitions
        for definition in self.definitions:
            self.uses_of[definition] = []
            self.flows[definition] = set()

        def transfer(in_state: dict[str, frozenset[Definition]],
                     facts, record: bool):
            state = dict(in_state)
            for uses, defs in facts:
                if record:
                    for use in uses:
                        reaching = state.get(use.id)
                        if reaching:
                            self.reaching[id(use)] = list(reaching)
                            for definition in reaching:
                                self.uses_of[definition].append(use)
                                for new_def in defs:
                                    self.flows[definition].add(new_def)
                for definition in defs:
                    state[definition.name] = frozenset([definition])
            return state

        entry_state = {p.name: frozenset([p]) for p in params}
        in_states: list[dict | None] = [None] * cfg.n_blocks
        in_states[cfg.entry] = entry_state
        # Worklist to a fixpoint over may-reach states.
        work = [cfg.entry]
        out_states: list[dict | None] = [None] * cfg.n_blocks
        iterations = 0
        limit = 50 * (cfg.n_blocks + 1)
        while work and iterations < limit:
            iterations += 1
            index = work.pop()
            in_state = in_states[index] or {}
            out_state = transfer(in_state, block_facts[index],
                                 record=False)
            if out_states[index] == out_state:
                continue
            out_states[index] = out_state
            for successor in cfg.blocks[index].successors:
                merged = dict(in_states[successor] or {})
                changed = in_states[successor] is None
                for name, defs in out_state.items():
                    combined = merged.get(name, frozenset()) | defs
                    if combined != merged.get(name):
                        merged[name] = combined
                        changed = True
                if changed:
                    in_states[successor] = merged
                    work.append(successor)
        # Recording pass with the converged in-states.
        for index, block in enumerate(cfg.blocks):
            transfer(in_states[index] or {}, block_facts[index],
                     record=True)

    # -- queries -------------------------------------------------------

    def definitions_of(self, name: str) -> list[Definition]:
        return [d for d in self.definitions if d.name == name]

    def reaching_definitions(self, use: ast.Name) -> list[Definition]:
        return self.reaching.get(id(use), [])

    def tainted_closure(self, seeds) -> set[Definition]:
        """Definitions transitively derived from the seed definitions
        through local assignment flows (``b = f(a)`` taints ``b``)."""
        tainted = set(seeds)
        frontier = list(seeds)
        while frontier:
            definition = frontier.pop()
            for derived in self.flows.get(definition, ()):
                if derived not in tainted:
                    tainted.add(derived)
                    frontier.append(derived)
        return tainted


def _load_names_of_store_target(target: ast.AST) -> list[ast.Name]:
    """Loads implied by a non-Name store target (``a[i] = ...`` reads
    ``a`` and ``i``; ``a.x = ...`` reads ``a``)."""
    loads: list[ast.Name] = []
    if isinstance(target, ast.Subscript):
        loads.extend(_load_names(target.value))
        loads.extend(_load_names(target.slice))
    elif isinstance(target, ast.Attribute):
        loads.extend(_load_names(target.value))
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            loads.extend(_load_names_of_store_target(element))
    return loads


# ======================================================================
# alias sets


#: Callees whose result shares memory with their array argument.
_VIEW_PRODUCERS = {"asarray", "ravel", "reshape", "view", "transpose",
                   "atleast_1d", "atleast_2d", "broadcast_to", "squeeze",
                   "swapaxes", "ascontiguousarray"}


def attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``['a', 'b', 'c']`` (best effort, [] if opaque)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    if isinstance(node, ast.Call):
        inner = attr_chain(node.func)
        return inner + parts[::-1] if inner else []
    return []


def is_basic_slice(index: ast.AST) -> bool:
    """True for view-returning (basic) indexing, False for fancy."""
    if isinstance(index, (ast.Slice, ast.Constant)):
        return True
    if isinstance(index, ast.Tuple):
        return all(is_basic_slice(element) for element in index.elts)
    if isinstance(index, ast.UnaryOp) \
            and isinstance(index.operand, ast.Constant):
        return True
    return False


class AliasSets:
    """Flow-insensitive may-alias sets over one function's local names.

    Union-find on simple bindings: ``a = b``, basic-slice views
    (``a = b[1:]``), attribute views (``a = b.T``) and NumPy view
    producers (``a = np.asarray(b)``) put both names in one set;
    copies (``.copy()``, ``np.array``) do not. ``may_alias`` also
    answers for arbitrary expressions by comparing their base names and
    falling back to textual equality.
    """

    def __init__(self, function: ast.AST) -> None:
        self._parent: dict[str, str] = {}
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                source = self._alias_source(node.value)
                if source is not None:
                    self._union(node.targets[0].id, source)

    def _alias_source(self, value: ast.AST) -> str | None:
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Subscript) \
                and isinstance(value.value, ast.Name) \
                and is_basic_slice(value.slice):
            return value.value.id
        if isinstance(value, ast.Attribute) and value.attr == "T" \
                and isinstance(value.value, ast.Name):
            return value.value.id
        if isinstance(value, ast.Call):
            chain = attr_chain(value.func)
            if chain and chain[-1] in _VIEW_PRODUCERS and value.args:
                base = value.args[0]
                if isinstance(base, ast.Name):
                    return base.id
        return None

    def _find(self, name: str) -> str:
        root = name
        while self._parent.get(root, root) != root:
            root = self._parent[root]
        while self._parent.get(name, name) != root:
            self._parent[name], name = root, self._parent[name]
        return root

    def _union(self, a: str, b: str) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._parent[ra] = rb

    @staticmethod
    def _base_name(expression: ast.AST) -> str | None:
        while isinstance(expression, (ast.Subscript, ast.Attribute)):
            expression = expression.value
        if isinstance(expression, ast.Name):
            return expression.id
        return None

    def may_alias(self, left: ast.AST, right: ast.AST) -> bool:
        try:
            if ast.unparse(left) == ast.unparse(right):
                return True
        except Exception:  # pragma: no cover - unparse is total on ast
            pass
        base_left = self._base_name(left)
        base_right = self._base_name(right)
        if base_left is None or base_right is None:
            return False
        return self._find(base_left) == self._find(base_right)


# ======================================================================
# project index + call graph


@dataclass
class FunctionRecord:
    """One function (or method) discovered in an indexed module."""

    qualname: str          # "<relpath>::<dotted qualname>"
    name: str
    module: "ModuleInfo"
    node: ast.AST
    lineno: int
    class_name: str | None = None


class ModuleInfo:
    """Parsed source + per-module derived facts for one file."""

    def __init__(self, path: Path, relpath: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.waivers = WaiverIndex.from_source(source)
        self.functions: dict[str, FunctionRecord] = {}
        self._parents: dict[int, ast.AST] | None = None
        self._docstrings: str | None = None

    def parent_map(self) -> dict[int, ast.AST]:
        """``id(node) -> parent`` over the whole module tree."""
        if self._parents is None:
            parents: dict[int, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST):
        """Walk outwards from ``node`` to the module root."""
        parents = self.parent_map()
        current = parents.get(id(node))
        while current is not None:
            yield current
            current = parents.get(id(current))

    def docstring_corpus(self) -> str:
        """All docstrings of the module concatenated."""
        if self._docstrings is None:
            texts = []
            for node in ast.walk(self.tree):
                if isinstance(node, (ast.Module, ast.ClassDef,
                                     ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    doc = ast.get_docstring(node, clean=False)
                    if doc:
                        texts.append(doc)
            self._docstrings = "\n".join(texts)
        return self._docstrings

    def matches(self, patterns) -> bool:
        return any(fnmatch.fnmatch(self.relpath, pattern)
                   or fnmatch.fnmatch(self.path.name, pattern)
                   for pattern in patterns)


class FunctionScope:
    """Lazily computed per-function analyses (CFG, def-use, aliases)."""

    def __init__(self, record: FunctionRecord) -> None:
        self.record = record
        self._cfg: ControlFlowGraph | None = None
        self._defuse: DefUseChains | None = None
        self._aliases: AliasSets | None = None

    @property
    def cfg(self) -> ControlFlowGraph:
        if self._cfg is None:
            self._cfg = build_cfg(self.record.node)
        return self._cfg

    @property
    def defuse(self) -> DefUseChains:
        if self._defuse is None:
            self._defuse = DefUseChains(self.record.node, self.cfg)
        return self._defuse

    @property
    def aliases(self) -> AliasSets:
        if self._aliases is None:
            self._aliases = AliasSets(self.record.node)
        return self._aliases


class ProjectIndex:
    """Parsed view of a file set with a name-resolved call graph.

    Call edges are *over-approximate*: a call (or a bare reference —
    callbacks, decorators, ``functools.partial`` bindings) to a name
    links to every indexed function of that simple name. Module-level
    statements are modeled as a pseudo-function ``<module>`` per file.
    """

    MODULE_FUNCTION = "<module>"

    def __init__(self, files: list[Path], root: Path | None = None) -> None:
        if not files:
            raise LintError("no files to analyze")
        self.root = root
        self.modules: list[ModuleInfo] = []
        self.by_simple_name: dict[str, list[FunctionRecord]] = {}
        self._scopes: dict[str, FunctionScope] = {}
        for path in files:
            self._index_file(Path(path))
        self.edges: dict[str, set[str]] = {}
        for module in self.modules:
            self._link_module(module)

    # -- construction --------------------------------------------------

    def _relpath(self, path: Path) -> str:
        if self.root is not None:
            try:
                return path.resolve().relative_to(
                    Path(self.root).resolve()).as_posix()
            except ValueError:
                pass
        return path.name

    def _index_file(self, path: Path) -> None:
        try:
            source = path.read_text()
        except OSError as error:
            raise LintError(f"cannot read {path}: {error}") from error
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            raise LintError(f"cannot parse {path}: {error}") from error
        module = ModuleInfo(path, self._relpath(path), source, tree)
        self.modules.append(module)
        self._collect_functions(module)

    def _collect_functions(self, module: ModuleInfo) -> None:
        def visit(node: ast.AST, prefix: str, class_name: str | None):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    dotted = f"{prefix}{child.name}"
                    record = FunctionRecord(
                        f"{module.relpath}::{dotted}", child.name,
                        module, child, child.lineno, class_name)
                    module.functions[dotted] = record
                    self.by_simple_name.setdefault(child.name,
                                                   []).append(record)
                    visit(child, f"{dotted}.", class_name)
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}{child.name}.", child.name)
                else:
                    visit(child, prefix, class_name)

        visit(module.tree, "", None)
        # The module-level pseudo-function captures import-time code.
        record = FunctionRecord(
            f"{module.relpath}::{self.MODULE_FUNCTION}",
            self.MODULE_FUNCTION, module, module.tree, 1, None)
        module.functions[self.MODULE_FUNCTION] = record

    def _link_module(self, module: ModuleInfo) -> None:
        known = self.by_simple_name
        for dotted, record in module.functions.items():
            edges = self.edges.setdefault(record.qualname, set())
            if record.name == self.MODULE_FUNCTION:
                nodes = self._module_level_nodes(module)
            else:
                nodes = list(ast.walk(record.node))
            for node in nodes:
                referenced: str | None = None
                if isinstance(node, ast.Call):
                    chain = attr_chain(node.func)
                    referenced = chain[-1] if chain else None
                elif isinstance(node, ast.Name) and \
                        isinstance(node.ctx, ast.Load):
                    referenced = node.id
                elif isinstance(node, ast.Attribute) and \
                        isinstance(node.ctx, ast.Load):
                    referenced = node.attr
                if referenced is None or referenced == record.name:
                    continue
                for target in known.get(referenced, ()):
                    edges.add(target.qualname)
            # A function owns its nested definitions.
            prefix = f"{dotted}."
            for other in module.functions:
                if other.startswith(prefix) and "." not in \
                        other[len(prefix):]:
                    edges.add(module.functions[other].qualname)

    def _module_level_nodes(self, module: ModuleInfo) -> list[ast.AST]:
        """Nodes executed at import time (function bodies excluded)."""
        nodes: list[ast.AST] = []
        stack: list[ast.AST] = list(ast.iter_child_nodes(module.tree))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nodes.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return nodes

    # -- queries -------------------------------------------------------

    def functions(self):
        for module in self.modules:
            for record in module.functions.values():
                if record.name != self.MODULE_FUNCTION:
                    yield record

    def module_records(self):
        for module in self.modules:
            yield module.functions[self.MODULE_FUNCTION]

    def scope(self, record: FunctionRecord) -> FunctionScope:
        scope = self._scopes.get(record.qualname)
        if scope is None:
            scope = FunctionScope(record)
            self._scopes[record.qualname] = scope
        return scope

    def reachable(self, roots) -> set[str]:
        """Qualnames reachable from the root qualnames (roots included)."""
        seen = set()
        frontier = [root for root in roots if root in self.edges]
        seen.update(frontier)
        while frontier:
            current = frontier.pop()
            for target in self.edges.get(current, ()):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def enclosing_function(self, module: ModuleInfo,
                           node: ast.AST) -> FunctionRecord:
        """Innermost indexed function containing ``node``."""
        chain = [node, *module.ancestors(node)]
        for candidate in chain:
            for record in module.functions.values():
                if record.node is candidate and \
                        record.name != self.MODULE_FUNCTION:
                    return record
        return module.functions[self.MODULE_FUNCTION]
