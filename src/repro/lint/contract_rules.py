"""Cross-layer contract rules CON001–CON004 of the deep analyzer.

Where the DET family proves local dataflow properties, these rules
check *inter-module* contracts: declarations in one layer (status
codes, fault-injection fields, exception types, waiver pragmas) must
have consumers in another. A contract that nothing consumes is either
dead weight or — worse — a handler someone deleted without noticing.
"""

from __future__ import annotations

import ast

from .dataflow import ModuleInfo, ProjectIndex, attr_chain

#: Deep contract rules: rule ID -> (default severity, one-line doc).
CON_RULES = {
    "CON001": ("error", "declared status code has no handler outside "
                        "its defining module"),
    "CON002": ("warning", "fault-injection field is consumed by no "
                          "integrator or governor"),
    "CON003": ("warning", "exception type is never raised, or raised "
                          "but neither caught nor documented"),
    "CON004": ("warning", "stale deep-analysis waiver suppresses "
                          "nothing"),
}


# ----------------------------------------------------------------------
# CON001 — status codes must be exhaustively handled


def _status_declarations(module: ModuleInfo, dict_name: str):
    """(lineno, [status constant names]) for each status-name table."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Dict) \
                and any(isinstance(target, ast.Name)
                        and target.id == dict_name
                        for target in node.targets):
            names = [key.id for key in node.value.keys
                     if isinstance(key, ast.Name)]
            if names:
                yield node.lineno, names


def rule_con001(index: ProjectIndex, config, emit) -> None:
    for module in index.modules:
        for lineno, names in _status_declarations(
                module, config.status_dict_name):
            for status in names:
                if not _loaded_elsewhere(index, module, status):
                    emit("CON001", module, lineno,
                         f"status code {status} is declared in "
                         f"{config.status_dict_name} but no other "
                         "module reads it: quarantine, guard "
                         "re-stamping and analysis masking cannot be "
                         "handling it",
                         "handle (or retire) the status everywhere "
                         "results are consumed")


def _loaded_elsewhere(index: ProjectIndex, defining: ModuleInfo,
                      name: str) -> bool:
    for module in index.modules:
        if module is defining:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name) and node.id == name \
                    and isinstance(node.ctx, ast.Load):
                return True
    return False


# ----------------------------------------------------------------------
# CON002 — fault-plan fields must have consumers


class _ContractClass:
    """A frozen contract dataclass and how its fields are read."""

    def __init__(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.fields: dict[str, int] = {}
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) \
                    and isinstance(statement.target, ast.Name):
                self.fields[statement.target.id] = statement.lineno
        #: accessor name -> contract fields it reads via ``self.<f>``.
        self.accessor_reads: dict[str, set[str]] = {}
        for statement in node.body:
            if not isinstance(statement, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                continue
            if statement.name.startswith("__") \
                    or self._is_remap(statement):
                continue
            reads = {sub.attr for sub in ast.walk(statement)
                     if isinstance(sub, ast.Attribute)
                     and isinstance(sub.value, ast.Name)
                     and sub.value.id == "self"
                     and sub.attr in self.fields}
            if reads:
                self.accessor_reads[statement.name] = reads

    @staticmethod
    def _is_remap(method: ast.AST) -> bool:
        """True for methods like ``for_chunk`` that rebuild the whole
        object via ``dataclasses.replace(self, ...)`` — they mention
        every field without consuming any of them."""
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain and chain[-1] == "replace" and node.args \
                        and isinstance(node.args[0], ast.Name) \
                        and node.args[0].id == "self":
                    return True
        return False


def rule_con002(index: ProjectIndex, config, emit) -> None:
    for module in index.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) \
                    and node.name in config.contract_classes:
                _check_contract_class(index, _ContractClass(module, node),
                                      emit)


def _check_contract_class(index: ProjectIndex, contract: _ContractClass,
                          emit) -> None:
    external_attrs: set[str] = set()
    for module in index.modules:
        if module is contract.module:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.ctx, ast.Load):
                external_attrs.add(node.attr)
    consumed = set(contract.fields) & external_attrs
    for accessor, reads in contract.accessor_reads.items():
        if accessor in external_attrs:
            consumed |= reads
    for field, lineno in contract.fields.items():
        if field not in consumed:
            emit("CON002", contract.module, lineno,
                 f"{contract.node.name}.{field} is declared but no "
                 "integrator, governor or campaign driver consumes it "
                 "(directly or through an accessor): the injection is "
                 "silently inert",
                 "consume the field in the layer it targets, or "
                 "retire it")


# ----------------------------------------------------------------------
# CON003 — exception types: raised, and caught or documented


def _exception_classes(module: ModuleInfo) -> dict[str, ast.ClassDef]:
    classes = {}
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            classes[node.name] = node
    return classes


def _subclass_closure(classes: dict[str, ast.ClassDef]
                      ) -> dict[str, set[str]]:
    """name -> {name and all transitive subclasses} (within module)."""
    children: dict[str, set[str]] = {name: set() for name in classes}
    for name, node in classes.items():
        for base in node.bases:
            base_name = base.id if isinstance(base, ast.Name) else None
            if base_name in children:
                children[base_name].add(name)
    closure = {}
    for name in classes:
        seen = {name}
        frontier = [name]
        while frontier:
            for child in children.get(frontier.pop(), ()):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        closure[name] = seen
    return closure


def _ancestor_closure(classes: dict[str, ast.ClassDef]
                      ) -> dict[str, set[str]]:
    """name -> {name and all transitive bases} (within module)."""
    closure = {}
    for name in classes:
        seen = {name}
        frontier = [name]
        while frontier:
            node = classes.get(frontier.pop())
            if node is None:
                continue
            for base in node.bases:
                if isinstance(base, ast.Name) and base.id not in seen:
                    seen.add(base.id)
                    frontier.append(base.id)
        closure[name] = seen
    return closure


def _raised_names(index: ProjectIndex) -> set[str]:
    raised = set()
    for module in index.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                chain = attr_chain(exc)
                if chain:
                    raised.add(chain[-1])
    return raised


def _caught_names(index: ProjectIndex) -> set[str]:
    caught = set()
    for module in index.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) \
                    and node.type is not None:
                types = node.type.elts \
                    if isinstance(node.type, ast.Tuple) else [node.type]
                for expression in types:
                    chain = attr_chain(expression)
                    if chain:
                        caught.add(chain[-1])
    return caught


def rule_con003(index: ProjectIndex, config, emit) -> None:
    errors_module = None
    for module in index.modules:
        if module.relpath.endswith(config.errors_module):
            errors_module = module
            break
    if errors_module is None:
        return
    classes = _exception_classes(errors_module)
    if not classes:
        return
    subclasses = _subclass_closure(classes)
    ancestors = _ancestor_closure(classes)
    raised = _raised_names(index)
    caught = _caught_names(index)
    documented = set()
    for module in index.modules:
        if module is errors_module:
            continue
        corpus = module.docstring_corpus()
        for name in classes:
            # Docstring mentions outside errors.py count as documented
            # contract; import lines and raise sites do not (every
            # raise necessarily imports the name).
            if name in corpus:
                documented.add(name)
    for name, node in classes.items():
        if not (subclasses[name] & raised):
            emit("CON003", errors_module, node.lineno,
                 f"exception type {name} (or any subclass) is never "
                 "raised: the taxonomy promises an error surface the "
                 "code does not produce",
                 "raise it where the failure occurs, or retire it")
            continue
        handled = bool(ancestors[name] & caught)
        if not handled and name not in documented:
            emit("CON003", errors_module, node.lineno,
                 f"exception type {name} is raised but neither caught "
                 "(directly or via a base class) nor referenced "
                 "anywhere outside its defining module",
                 "catch it at the API boundary or document the "
                 "contract")


#: Rule id -> implementation (CON004 lives in the driver: stale-waiver
#: detection needs the post-run waiver consumption state).
CON_CHECKS = {
    "CON001": rule_con001,
    "CON002": rule_con002,
    "CON003": rule_con003,
}
