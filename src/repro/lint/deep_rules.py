"""Determinism rules DET001–DET006 of the deep analyzer.

Each rule is a function ``rule(index, config, emit)`` over a
:class:`~repro.lint.dataflow.ProjectIndex`; ``emit(rule_id, module,
lineno, message, hint)`` routes findings through waiver and baseline
handling in :mod:`repro.lint.deep`.

The family statically guards the two reproducibility invariants earlier
work hand-established: bit-identical results under memory-governor
launch splitting (the batched kernels must never reduce over the row
axis with width-sensitive BLAS paths) and bit-for-bit campaign replay
from checkpoints (no unseeded randomness or wall-clock values may reach
campaign state).
"""

from __future__ import annotations

import ast

from .dataflow import ModuleInfo, ProjectIndex, attr_chain

#: Deep determinism rules: rule ID -> (default severity, one-line doc).
DET_RULES = {
    "DET001": ("error", "batch-width-dependent reduction over the row "
                        "axis in a kernel"),
    "DET002": ("warning", "out= destination may alias an input operand "
                          "of a non-elementwise routine"),
    "DET003": ("warning", "narrow-dtype value feeds an accumulation "
                          "chain (precision drift)"),
    "DET004": ("error", "unseeded random source reachable from "
                        "campaign/checkpoint paths"),
    "DET005": ("error", "wall-clock value flows into a checkpoint "
                        "fingerprint or result array"),
    "DET006": ("warning", "iteration over an unordered set feeds row "
                          "ordering"),
}

# ----------------------------------------------------------------------
# DET001 — width-dependent reductions in kernel stage math

#: Routines that lower to BLAS products whose per-row rounding depends
#: on how many rows are in flight.
_WIDTH_SENSITIVE = {"tensordot", "dot", "vdot", "inner", "matmul"}

#: Axis-aware reductions that collapse the row axis when axis=0.
_AXIS_REDUCERS = {"sum", "mean", "nansum", "nanmean", "prod", "cumsum"}


def _einsum_contracted_operands(spec: str, n_operands: int) -> list[int]:
    """Operand positions whose *leading* (row) subscript is contracted.

    A batched einsum is width-stable when every ≥2-d operand keeps its
    first subscript letter in the output — contracting it sums over the
    batch axis, which re-associates when launches split.
    """
    spec = spec.replace(" ", "")
    if "->" not in spec or "..." in spec:
        return []  # implicit output / ellipsis: handled conservatively
    inputs, output = spec.split("->", 1)
    operands = inputs.split(",")
    if len(operands) != n_operands:
        return []
    flagged = []
    for position, subscripts in enumerate(operands):
        if len(subscripts) >= 2 and subscripts[0] not in output:
            flagged.append(position)
    return flagged


def rule_det001(index: ProjectIndex, config, emit) -> None:
    for module in index.modules:
        if not module.matches(config.kernel_globs):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) \
                    and isinstance(node.op, ast.MatMult):
                emit("DET001", module, node.lineno,
                     "matrix product (@) in kernel stage math: BLAS row "
                     "results change with the number of rows in flight",
                     "accumulate element-wise so split launches stay "
                     "bit-identical")
                continue
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            terminal = chain[-1] if chain else ""
            if terminal in _WIDTH_SENSITIVE:
                emit("DET001", module, node.lineno,
                     f"{terminal}(...) reduces with a width-sensitive "
                     "BLAS path: per-row rounding depends on the batch "
                     "width, breaking bit-identity under launch "
                     "splitting",
                     "replace with an element-wise accumulation or a "
                     "batch-preserving einsum")
            elif terminal == "einsum":
                _det001_einsum(module, node, emit)
            elif terminal in _AXIS_REDUCERS:
                for keyword in node.keywords:
                    if keyword.arg == "axis" \
                            and isinstance(keyword.value, ast.Constant) \
                            and keyword.value.value == 0:
                        emit("DET001", module, node.lineno,
                             f"{terminal}(axis=0) collapses the row "
                             "axis: the reduction order re-associates "
                             "when the launch is split",
                             "reduce along the state axis (axis=1) or "
                             "accumulate per row")


def _det001_einsum(module: ModuleInfo, node: ast.Call, emit) -> None:
    if not node.args or not isinstance(node.args[0], ast.Constant) \
            or not isinstance(node.args[0].value, str):
        return
    spec = node.args[0].value
    operands = node.args[1:]
    for position in _einsum_contracted_operands(spec, len(operands)):
        emit("DET001", module, node.lineno,
             f"einsum({spec!r}) contracts the leading axis of operand "
             f"{position}: summing over the row axis re-associates "
             "under launch splitting",
             "keep the batch subscript in the output spec")
    for keyword in node.keywords:
        if keyword.arg == "optimize" and not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value in (False, None)):
            emit("DET001", module, node.lineno,
                 f"einsum({spec!r}, optimize=...) lets the contraction "
                 "order vary with operand shapes, so results depend on "
                 "the batch width",
                 "drop optimize= in kernel stage math")


# ----------------------------------------------------------------------
# DET002 — out= aliasing an input operand

#: ufuncs that process elements independently: out-aliasing an input is
#: well-defined for these, so they are exempt.
_ELEMENTWISE_SAFE = {
    "clip", "maximum", "minimum", "abs", "absolute", "fabs", "add",
    "subtract", "multiply", "divide", "true_divide", "floor_divide",
    "negative", "exp", "expm1", "log", "log1p", "log2", "log10", "sqrt",
    "square", "power", "mod", "remainder", "where", "copyto", "copysign",
    "sign", "rint", "floor", "ceil", "trunc", "logical_and",
    "logical_or", "logical_not", "isfinite", "isnan", "greater", "less",
    "greater_equal", "less_equal", "equal", "not_equal",
}


def rule_det002(index: ProjectIndex, config, emit) -> None:
    for module in index.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            out_expr = None
            for keyword in node.keywords:
                if keyword.arg == "out":
                    out_expr = keyword.value
            if out_expr is None:
                continue
            chain = attr_chain(node.func)
            terminal = chain[-1] if chain else ""
            if terminal in _ELEMENTWISE_SAFE:
                continue
            record = index.enclosing_function(module, node)
            aliases = index.scope(record).aliases
            for position, argument in enumerate(node.args):
                if aliases.may_alias(out_expr, argument):
                    try:
                        rendered = ast.unparse(out_expr)
                    except Exception:  # pragma: no cover
                        rendered = "<out>"
                    emit("DET002", module, node.lineno,
                         f"out={rendered} may alias input operand "
                         f"{position} of {terminal or 'a call'}(...): "
                         "non-elementwise routines read inputs while "
                         "writing the output, so results depend on "
                         "traversal order",
                         "write into a fresh array (or prove the "
                         "routine elementwise and waive)")
                    break


# ----------------------------------------------------------------------
# DET003 — narrow dtypes feeding accumulation chains

_NARROW = {"float32", "float16", "half", "single", "int32", "int16"}


def _is_narrowing(expression: ast.AST) -> str | None:
    """Narrow dtype produced by ``expression``, or None."""
    for node in ast.walk(expression):
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            terminal = chain[-1] if chain else ""
            if terminal == "astype":
                for argument in list(node.args) + \
                        [k.value for k in node.keywords]:
                    name = _narrow_name(argument)
                    if name:
                        return name
            elif terminal in _NARROW and chain[:-1] and \
                    chain[0] in ("np", "numpy"):
                return terminal
        elif isinstance(node, ast.keyword) and node.arg == "dtype":
            name = _narrow_name(node.value)
            if name:
                return name
    return None


def _narrow_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str) \
            and node.value in _NARROW:
        return node.value
    if isinstance(node, ast.Attribute) and node.attr in _NARROW:
        return node.attr
    return None


def rule_det003(index: ProjectIndex, config, emit) -> None:
    for record in list(index.functions()) + list(index.module_records()):
        module = record.module
        defuse = index.scope(record).defuse
        for definition in defuse.definitions:
            value = defuse.value_of.get(definition)
            if value is None or not isinstance(value, ast.AST):
                continue
            narrow = _is_narrowing(value)
            if narrow is None:
                continue
            for use in defuse.uses_of.get(definition, ()):
                if _feeds_arithmetic(module, use):
                    emit("DET003", module, use.lineno,
                         f"{definition.name!r} holds a {narrow} value "
                         f"(bound on line {definition.lineno}) and "
                         "feeds an arithmetic chain: mixed-precision "
                         "accumulation drifts with evaluation order",
                         "keep accumulator state float64; narrow only "
                         "at the output boundary")
                    break


def _feeds_arithmetic(module: ModuleInfo, use: ast.Name) -> bool:
    for ancestor in module.ancestors(use):
        if isinstance(ancestor, (ast.BinOp, ast.AugAssign)):
            return True
        if isinstance(ancestor, ast.stmt):
            return isinstance(ancestor, ast.AugAssign)
    return False


# ----------------------------------------------------------------------
# DET004 — unseeded randomness on campaign/checkpoint paths

_GLOBAL_NP_DISTS = {"rand", "randn", "randint", "random", "choice",
                    "uniform", "normal", "standard_normal", "shuffle",
                    "permutation", "exponential", "poisson", "lognormal"}

_STDLIB_RANDOM = {"random", "randint", "uniform", "choice", "shuffle",
                  "gauss", "normalvariate", "sample", "randrange",
                  "betavariate", "expovariate"}


def _unseeded_rng_reason(node: ast.Call) -> str | None:
    chain = attr_chain(node.func)
    if not chain:
        return None
    terminal = chain[-1]
    if terminal == "default_rng" and not node.args and not node.keywords:
        return "default_rng() without a seed draws from OS entropy"
    if terminal == "RandomState" and not node.args and not node.keywords:
        return "RandomState() without a seed draws from OS entropy"
    if len(chain) >= 3 and chain[-2] == "random" \
            and chain[-3] in ("np", "numpy") \
            and terminal in _GLOBAL_NP_DISTS:
        return (f"np.random.{terminal} uses the shared global "
                "generator, whose state depends on call history")
    if len(chain) == 2 and chain[0] == "random" \
            and terminal in _STDLIB_RANDOM:
        return (f"random.{terminal} uses the interpreter-global "
                "generator")
    return None


def campaign_roots(index: ProjectIndex, config) -> set[str]:
    """Qualnames rooting the campaign/checkpoint reachability query."""
    roots = set()
    for record in index.functions():
        if record.module.matches(config.campaign_globs):
            roots.add(record.qualname)
        elif any(record.name.startswith(prefix)
                 for prefix in config.campaign_prefixes):
            roots.add(record.qualname)
    return roots


def rule_det004(index: ProjectIndex, config, emit) -> None:
    reachable = index.reachable(campaign_roots(index, config))
    for module in index.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            reason = _unseeded_rng_reason(node)
            if reason is None:
                continue
            record = index.enclosing_function(module, node)
            on_campaign_path = (
                record.name == ProjectIndex.MODULE_FUNCTION  # import time
                or record.qualname in reachable)
            if on_campaign_path:
                emit("DET004", module, node.lineno,
                     f"unseeded random source on a campaign/checkpoint "
                     f"path: {reason}; checkpoint resume can no longer "
                     "replay bit-for-bit",
                     "thread an explicit seeded Generator through the "
                     "call chain")
            else:
                emit("DET004", module, node.lineno,
                     f"unseeded random source: {reason}",
                     "prefer an explicit seeded Generator",
                     severity="warning")


# ----------------------------------------------------------------------
# DET005 — wall-clock taint into fingerprints / result arrays

_TIME_CALLS = {"time", "perf_counter", "monotonic", "process_time",
               "time_ns", "perf_counter_ns", "monotonic_ns",
               "thread_time", "clock_gettime"}
_DATETIME_CALLS = {"now", "utcnow", "today"}
_HASH_SINKS = {"sha256", "sha1", "md5", "blake2b", "blake2s", "sha512"}
_CHECKPOINT_SINKS = {"save_chunk", "set_payload", "write_payload"}


def _is_raw_time_source(node: ast.AST) -> bool:
    """A direct ``time.*`` / ``datetime`` read (not the sanctioned
    :mod:`repro.telemetry.clock` facade)."""
    if not isinstance(node, ast.Call):
        return False
    chain = attr_chain(node.func)
    if not chain:
        return False
    terminal = chain[-1]
    if terminal in _TIME_CALLS and "time" in chain[:-1]:
        return True
    if terminal in _DATETIME_CALLS and \
            {"datetime", "date"} & set(chain[:-1]):
        return True
    return False


def _is_time_source(node: ast.AST, clock_calls=()) -> bool:
    if _is_raw_time_source(node):
        return True
    # Reads of the sanctioned clock (clock.monotonic() and friends)
    # taint just like raw time.* — the boundary moves where the call
    # is *allowed*, not what its value may flow into.
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        return bool(chain) and chain[-1] in clock_calls
    return False


def _contains_time_source(expression: ast.AST, clock_calls=()) -> bool:
    return any(_is_time_source(node, clock_calls)
               for node in ast.walk(expression))


def _hash_object_names(scope_node: ast.AST) -> set[str]:
    """Local names bound to hashlib digest objects (``h.update`` on
    these is a fingerprint sink; ``d.update`` on a dict is not)."""
    names = set()
    for node in ast.walk(scope_node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call):
                    chain = attr_chain(sub.func)
                    if chain and (chain[-1] in _HASH_SINKS
                                  or "hashlib" in chain):
                        names.add(node.targets[0].id)
    return names


def _is_sink_call(node: ast.Call, hash_objects: set[str]) -> bool:
    chain = attr_chain(node.func)
    if not chain:
        return False
    terminal = chain[-1]
    if terminal == "update":
        return len(chain) >= 2 and chain[0] in hash_objects
    return ("fingerprint" in terminal
            or terminal in _HASH_SINKS
            or terminal in _CHECKPOINT_SINKS
            or "hashlib" in chain[:-1])


def _sink_reason(module: ModuleInfo, use: ast.AST,
                 in_fingerprint_function: bool,
                 hash_objects: set[str]) -> str | None:
    """Why this use site is a determinism sink, or None."""
    previous = use
    for ancestor in module.ancestors(use):
        if isinstance(ancestor, ast.Call) \
                and _is_sink_call(ancestor, hash_objects) \
                and previous is not ancestor.func:
            chain = attr_chain(ancestor.func)
            return f"argument of {chain[-1]}(...)"
        if isinstance(ancestor, ast.Assign):
            for target in ancestor.targets:
                if isinstance(target, ast.Subscript) \
                        and previous is ancestor.value:
                    return "stored into an array element"
        if isinstance(ancestor, ast.Return) and in_fingerprint_function:
            return "returned from a fingerprint function"
        if isinstance(ancestor, ast.stmt):
            previous = ancestor
            continue
        previous = ancestor
    return None


def rule_det005(index: ProjectIndex, config, emit) -> None:
    clock_calls = tuple(getattr(config, "clock_calls", ()))
    clock_modules = tuple(getattr(config, "clock_modules", ()))
    for record in list(index.functions()) + list(index.module_records()):
        module = record.module
        in_fingerprint = "fingerprint" in record.name
        defuse = index.scope(record).defuse
        seeds = [definition for definition in defuse.definitions
                 if isinstance(defuse.value_of.get(definition), ast.AST)
                 and _contains_time_source(defuse.value_of[definition],
                                           clock_calls)]
        if not seeds:
            continue
        hash_objects = _hash_object_names(record.node)
        tainted = defuse.tainted_closure(seeds)
        for definition in tainted:
            for use in defuse.uses_of.get(definition, ()):
                reason = _sink_reason(module, use, in_fingerprint,
                                      hash_objects)
                if reason:
                    emit("DET005", module, use.lineno,
                         f"wall-clock value {definition.name!r} "
                         f"(tainted on line {definition.lineno}) "
                         f"{reason}: fingerprints/results now differ "
                         "between runs, so checkpoint replay breaks",
                         "derive fingerprints and results only from "
                         "campaign inputs")
    # Direct flows without an intermediate binding:
    # fingerprint(time.time()).
    for module in index.modules:
        module_hash_objects = _hash_object_names(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) \
                    and _is_sink_call(node, module_hash_objects):
                for argument in list(node.args) + \
                        [k.value for k in node.keywords]:
                    if _contains_time_source(argument, clock_calls):
                        chain = attr_chain(node.func)
                        emit("DET005", module, node.lineno,
                             f"wall-clock call passed directly to "
                             f"{chain[-1]}(...): the result is "
                             "different on every run",
                             "derive fingerprints only from campaign "
                             "inputs")
    # Boundary check: raw time.* / datetime reads are allowed only in
    # the sanctioned clock module(s). Funnelling every read through
    # repro.telemetry.clock is what lets the taint analysis above stay
    # sound — a new raw read elsewhere is an untracked clock source.
    for module in index.modules:
        if module.matches(clock_modules):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _is_raw_time_source(node):
                chain = attr_chain(node.func)
                emit("DET005", module, node.lineno,
                     f"raw wall-clock read {'.'.join(chain)}(...) "
                     "outside the sanctioned telemetry clock boundary",
                     "read time via repro.telemetry.clock "
                     "(monotonic()/walltime()) so wall-clock taint "
                     "stays trackable",
                     severity="warning")


# ----------------------------------------------------------------------
# DET006 — unordered set iteration feeding row ordering


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        return bool(chain) and chain[-1] in ("set", "frozenset")
    return False


def rule_det006(index: ProjectIndex, config, emit) -> None:
    for record in list(index.functions()) + list(index.module_records()):
        module = record.module
        defuse = None  # built lazily, only when a Name iterator shows up
        for node in ast.walk(record.node):
            if not isinstance(node, ast.For):
                continue
            unordered = _is_set_expression(node.iter)
            if not unordered and isinstance(node.iter, ast.Name):
                if defuse is None:
                    defuse = index.scope(record).defuse
                reaching = defuse.reaching_definitions(node.iter)
                values = [defuse.value_of.get(d) for d in reaching]
                unordered = bool(values) and all(
                    isinstance(v, ast.AST) and _is_set_expression(v)
                    for v in values)
            if not unordered:
                continue
            if _orders_rows(node):
                emit("DET006", module, node.lineno,
                     "loop over an unordered set writes ordered output: "
                     "set iteration order varies across processes "
                     "(PYTHONHASHSEED), so row ordering is not "
                     "reproducible",
                     "iterate sorted(...) instead")


def _orders_rows(loop: ast.For) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, ast.Assign) and any(
                isinstance(target, ast.Subscript)
                for target in node.targets):
            return True
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain and chain[-1] in ("append", "extend", "add") \
                    and len(chain) >= 2:
                return True
    return False


#: Rule id -> implementation, in execution order.
DET_CHECKS = {
    "DET001": rule_det001,
    "DET002": rule_det002,
    "DET003": rule_det003,
    "DET004": rule_det004,
    "DET005": rule_det005,
    "DET006": rule_det006,
}
