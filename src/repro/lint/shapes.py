"""Driver of the shape/backend analysis pass (``repro lint --shapes``).

Builds a :class:`~repro.lint.dataflow.ProjectIndex` over the package
source (or an explicit file set), runs the symbolic shape/dtype rules
(``SHP001``–``SHP006``, :mod:`repro.lint.shape_rules`) and the
backend-conformance rules (``BKD001``–``BKD003``,
:mod:`repro.lint.backend_rules`), applies waiver pragmas and the
committed baseline, and reports stale waivers (``LNT000``) and stale
baseline entries (``LNT001``).

The baseline machinery is shared bit-for-bit with the deep analyzer
(:mod:`repro.lint.deep`): the committed
:data:`DEFAULT_SHAPES_BASELINE` may only shrink, and it ships empty —
the shipped kernels carry no accepted shape findings, so any new one
fails ``--fail-on warning`` immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .backend_rules import BKD_CHECKS, BKD_RULES
from .dataflow import ProjectIndex
from .deep import (_apply_baseline, _common_parent, _Emitter,
                   package_source_files, write_baseline)
from .report import LintReport
from .shape_rules import SHP_CHECKS, SHP_RULES

__all__ = ["DEFAULT_SHAPES_BASELINE", "SHAPE_RULES", "ShapeConfig",
           "lint_shapes", "write_baseline"]

#: Every shapes-analyzer rule: id -> (default severity, one-line doc).
SHAPE_RULES = {**SHP_RULES, **BKD_RULES}

#: Baseline shipped next to this module, applied by default when the
#: analysis root is the repro package itself. Committed empty.
DEFAULT_SHAPES_BASELINE = (Path(__file__).resolve().parent
                           / "shapes_baseline.json")

#: Prefixes of rule IDs the shapes analyzer owns (stale-waiver scope).
_SHAPE_PREFIXES = ("SHP", "BKD")


@dataclass(frozen=True)
class ShapeConfig:
    """Project-shape knobs of the shapes analyzer.

    The defaults encode this repository's layout; tests override them
    to point the rules at synthetic trees.
    """

    #: Module globs the symbolic shape interpreter analyzes (matched
    #: against relpath and basename; the bare entries cover single-file
    #: CLI invocations where the report root is the file's directory).
    shape_globs: tuple[str, ...] = ("gpu/*.py", "solvers/*.py",
                                    "batch_*.py")
    #: Module globs whose function parameters are seeded from the
    #: batched-kernel naming conventions (``states`` -> (B, S), ...).
    #: Everything else starts unknown — conservative by construction.
    seed_globs: tuple[str, ...] = ("gpu/*.py", "batch_*.py")
    #: Module globs the backend-conformance rules police (the bare
    #: ``batch_*.py`` entry covers single-file CLI invocations where
    #: the report root is the file's own directory).
    gpu_globs: tuple[str, ...] = ("gpu/*.py", "batch_*.py")
    #: Module globs exempt from conformance (the substrate itself).
    backend_globs: tuple[str, ...] = ("backend/*.py",
                                      "numpy_backend.py",
                                      "protocol.py")
    #: Local name of the backend namespace inside kernels.
    backend_name: str = "xp"
    #: Op surface BKD003 checks ``xp.<op>`` reads against. ``None``
    #: means the live protocol (:data:`repro.backend.protocol
    #: .REQUIRED_OPS`), so protocol and consumers cannot drift apart.
    backend_ops: tuple[str, ...] | None = None


DEFAULT_CONFIG = ShapeConfig()


def lint_shapes(paths: list[str | Path] | None = None, *,
                root: Path | None = None,
                baseline_path: str | Path | None = None,
                config: ShapeConfig = DEFAULT_CONFIG) -> LintReport:
    """Run the shape/backend analysis and return a
    :class:`~repro.lint.report.LintReport`.

    Parameters
    ----------
    paths:
        Files to analyze. Default: every module of the installed
        ``repro`` package.
    root:
        Directory findings are reported relative to. Default: the
        package directory (or the common parent of ``paths``).
    baseline_path:
        Baseline JSON to subtract. Defaults to the committed
        :data:`DEFAULT_SHAPES_BASELINE` when analyzing the package
        itself; pass an explicit path (or a missing one) to disable.
    config:
        Project-shape configuration for the rules.
    """
    analyzing_package = paths is None
    if analyzing_package:
        package_root = Path(__file__).resolve().parent.parent
        files = package_source_files(package_root)
        root = package_root if root is None else Path(root)
    else:
        files = [Path(p) for p in paths]
        if root is None:
            root = (files[0].parent if len(files) == 1
                    else Path(_common_parent(files)))
    index = ProjectIndex(files, root=root)
    report = LintReport(
        subject=f"shape analysis: {len(files)} file(s)",
        metadata={"files": [module.relpath for module in index.modules]})
    emit = _Emitter(report, severities=dict(SHAPE_RULES))
    for checks in (SHP_CHECKS, BKD_CHECKS):
        for check in checks.values():
            check(index, config, emit)
    # Stale SHP/BKD waivers surface as LNT000, after every rule has
    # had its chance to consume them.
    for module in index.modules:
        for lineno, rule in module.waivers.stale(
                lambda r: r.startswith(_SHAPE_PREFIXES)):
            report.add("LNT000", "warning",
                       f"stale waiver: the {rule} pragma on line "
                       f"{lineno} suppresses nothing",
                       f"{module.relpath}:{lineno}",
                       "remove the pragma")
    report.metadata["waived"] = emit.waived
    if baseline_path is None and analyzing_package:
        baseline_path = DEFAULT_SHAPES_BASELINE
    if baseline_path is not None and Path(baseline_path).exists():
        _apply_baseline(report, Path(baseline_path))
    report.findings.sort(key=lambda f: (f.location, f.rule_id))
    return report
