"""Shape/dtype rules SHP001–SHP006 of the shapes analyzer.

A symbolic abstract interpreter over the PR-4 dataflow engine
(:mod:`repro.lint.dataflow`): every expression in a batched-kernel
scope evaluates to an :class:`AbstractValue` — a tuple of symbolic
axis lengths drawn from the project's dimension vocabulary (``B``
batch rows, ``S`` species, ``R`` reactions, ``K`` stage count) plus a
dtype — propagated through def-use chains, subscripts, broadcasts and
the backend op surface. The rules then ask shape questions the
syntactic DET family cannot: *is this operand actually batch-led when
it hits a row-contracting op?*, *does this broadcast silently pair the
batch axis with the species axis?*, *does a float32 value reach a
state accumulator?*

Everything widens to unknown rather than guessing: a rule only fires
when both sides of a conflict are confidently known, which is what
lets the pass run over the whole package at ``--fail-on warning`` with
an empty baseline.

Each rule is a function ``rule(index, config, emit)`` like the DET/CON
families; ``config`` is a :class:`repro.lint.shapes.ShapeConfig`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .dataflow import (DefUseChains, ModuleInfo, ProjectIndex, attr_chain)

#: Shape/dtype rules: rule ID -> (default severity, one-line doc).
SHP_RULES = {
    "SHP001": ("error", "row-contracting op consumes a batch-led "
                        "operand (batch axis lost)"),
    "SHP002": ("warning", "silent broadcast pairs the batch axis with "
                          "a different symbolic axis"),
    "SHP003": ("warning", "narrow-dtype value reaches a state/"
                          "accumulator arithmetic path"),
    "SHP004": ("warning", "variable is shape-unstable across branches "
                          "(conflicting symbolic shapes reach a use)"),
    "SHP005": ("warning", "reshape/ravel folds the batch axis into "
                          "other axes"),
    "SHP006": ("warning", "out= target dtype is narrower than the "
                          "widest input dtype"),
}

#: The symbolic dimension vocabulary. ``1`` broadcasts against
#: anything; ``?`` is an unknown-but-fixed axis length.
_SYMBOLS = {"B", "S", "R", "K"}

#: Parameter-name seeds applied in seeded (kernel) modules only: the
#: naming conventions of the batched integrators, mapped to their
#: documented shapes. Unlisted parameters stay unknown.
_PARAM_SHAPES: dict[str, tuple[tuple[str, ...], str | None]] = {
    "states": (("B", "S"), "float64"),
    "initial_states": (("B", "S"), "float64"),
    "derivatives": (("B", "S"), "float64"),
    "stage_states": (("B", "S"), "float64"),
    "y": (("B", "S"), "float64"),
    "y_act": (("B", "S"), "float64"),
    "y_new": (("B", "S"), "float64"),
    "reference": (("B", "S"), "float64"),
    "candidate": (("B", "S"), "float64"),
    "error": (("B", "S"), "float64"),
    "residual": (("B", "S"), "float64"),
    "stage_k": (("K", "B", "S"), "float64"),
    "stages": (("K", "B", "S"), "float64"),
    "weights": (("K",), "float64"),
    "times": (("B",), "float64"),
    "t_act": (("B",), "float64"),
    "h_act": (("B",), "float64"),
    "steps": (("B",), "float64"),
    "err": (("B",), "float64"),
    "h0": (("B",), "float64"),
    "h1": (("B",), "float64"),
    "rows": (("B",), "int64"),
    "active": (("B",), "int64"),
    "acc_rows": (("B",), "int64"),
    "rej_rows": (("B",), "int64"),
    "row_ids": (("B",), "int64"),
    "status": (("B",), "int64"),
    "accepted": (("B",), "bool"),
    "matrices": (("B", "S", "S"), "float64"),
    "jacobians": (("B", "S", "S"), "float64"),
    "vectors": (("B", "S"), "float64"),
}

#: Scalar names conventionally holding a symbolic axis length, used
#: when such a name appears as a dimension of a creation op.
_DIM_NAMES = {
    "batch": "B", "batch_size": "B", "n_rows": "B", "rows_in_flight": "B",
    "n": "S", "n_species": "S", "num_species": "S",
    "n_reactions": "R", "num_reactions": "R",
    "n_stages": "K", "stages": "K",
}

#: Dtype widths for promotion; wider rank wins (numpy-like, coarse).
_DTYPE_RANK = {"bool": 0, "bool_": 0,
               "int16": 1, "int32": 1, "int64": 1,
               "float16": 2, "half": 2, "float32": 2, "single": 2,
               "float64": 3, "complex128": 4}

_NARROW_DTYPES = {"float32", "float16", "half", "single",
                  "int32", "int16"}

#: Ops whose BLAS lowering makes per-row rounding width-dependent.
_ROW_CONTRACTING = {"tensordot", "dot", "vdot", "inner", "matmul"}

#: Reducers that collapse the leading axis when called with axis=0.
_AXIS_REDUCERS = {"sum", "mean", "nansum", "nanmean", "prod", "all",
                  "any", "argmax", "norm"}

_ELEMENTWISE_ONE_ARG = {"abs", "absolute", "sqrt", "exp", "log",
                        "square", "negative", "sign", "copy",
                        "ascontiguousarray"}

_ARITH_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
                 ast.Mod, ast.Pow)


@dataclass(frozen=True)
class AbstractValue:
    """Symbolic (shape, dtype) lattice element; ``None`` = unknown."""

    shape: tuple[str, ...] | None = None
    dtype: str | None = None

    @property
    def rank(self) -> int | None:
        return None if self.shape is None else len(self.shape)

    @property
    def batch_led(self) -> bool:
        return bool(self.shape) and self.shape[0] == "B"


UNKNOWN = AbstractValue()


def _join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound: agreement survives, conflict widens."""
    shape = a.shape if a.shape == b.shape else None
    dtype = a.dtype if a.dtype == b.dtype else None
    return AbstractValue(shape, dtype)


def _promote(*dtypes: str | None) -> str | None:
    known = [d for d in dtypes if d is not None]
    if len(known) != len(dtypes) or not known:
        return None
    return max(known, key=lambda d: _DTYPE_RANK.get(d, -1))


def broadcast(a: AbstractValue, b: AbstractValue
              ) -> tuple[AbstractValue, tuple[str, str] | None]:
    """numpy-style broadcast of two abstract values.

    Returns ``(result, mismatch)`` where ``mismatch`` is the first
    right-aligned axis pair of two *different known* symbols — the
    signature of a silent misbroadcast (SHP002). Unknown shapes pass
    through the known operand: best-effort propagation, never a flag.
    """
    dtype = _promote(a.dtype, b.dtype)
    if a.shape is None or b.shape is None:
        known = a.shape if a.shape is not None else b.shape
        # A scalar never constrains the other operand: when the other
        # side is unknown, the result stays unknown (claiming "scalar"
        # here is what would fabricate SHP004 rank conflicts).
        if known == ():
            known = None
        return AbstractValue(known, dtype), None
    short, long = sorted((a.shape, b.shape), key=len)
    offset = len(long) - len(short)
    result = list(long)
    mismatch = None
    for i, dim in enumerate(short):
        other = long[offset + i]
        if dim == other or other == "1" or other == "?":
            result[offset + i] = dim if dim not in ("1", "?") else other
        elif dim in ("1", "?"):
            result[offset + i] = other
        else:  # two distinct known symbols on one broadcast axis
            mismatch = mismatch or (other, dim)
            result[offset + i] = "?"
    return AbstractValue(tuple(result), dtype), mismatch


def _dtype_name(node: ast.AST) -> str | None:
    """Dtype named by an expression (``xp.float32``, ``"float32"``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str) \
            and node.value in _DTYPE_RANK:
        return node.value
    if isinstance(node, ast.Attribute) and node.attr in _DTYPE_RANK:
        return node.attr
    if isinstance(node, ast.Name) and node.id in _DTYPE_RANK:
        return node.id
    return None


class ShapeInterpreter:
    """Abstract interpreter over one function's def-use chains.

    Evaluation is demand-driven and memoized; loop-carried cycles
    (``combined += ...``) widen to :data:`UNKNOWN` through a visiting
    guard instead of recursing.
    """

    def __init__(self, defuse: DefUseChains, seeded: bool) -> None:
        self.defuse = defuse
        self.seeded = seeded
        self._def_memo: dict[int, AbstractValue] = {}
        self._visiting: set[int] = set()

    # -- definitions ---------------------------------------------------

    def value_at(self, definition) -> AbstractValue:
        key = id(definition)
        if key in self._def_memo:
            return self._def_memo[key]
        if key in self._visiting:
            return UNKNOWN
        self._visiting.add(key)
        try:
            value = self._infer_definition(definition)
        finally:
            self._visiting.discard(key)
        self._def_memo[key] = value
        return value

    def _infer_definition(self, definition) -> AbstractValue:
        if definition.kind == "param":
            if self.seeded and definition.name in _PARAM_SHAPES:
                shape, dtype = _PARAM_SHAPES[definition.name]
                return AbstractValue(shape, dtype)
            return UNKNOWN
        value = self.defuse.value_of.get(definition)
        if value is None or not isinstance(value, ast.AST):
            return UNKNOWN
        if definition.kind == "for":
            iterated = self.eval(value)
            if isinstance(value, ast.Call):
                chain = attr_chain(value.func)
                if chain and chain[-1] in ("range", "enumerate"):
                    return AbstractValue((), "int64")
            if iterated.shape:
                return AbstractValue(iterated.shape[1:], iterated.dtype)
            return UNKNOWN
        if isinstance(value, ast.AugAssign):
            target = AbstractValue()
            if isinstance(value.target, ast.Name):
                target = self._eval_name(value.target)
            result, _ = broadcast(target, self.eval(value.value))
            return result
        return self.eval(value)

    # -- expressions ---------------------------------------------------

    def eval(self, node: ast.AST) -> AbstractValue:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            return UNKNOWN
        return method(node)

    def _eval_Constant(self, node: ast.Constant) -> AbstractValue:
        if isinstance(node.value, bool):
            return AbstractValue((), "bool")
        if isinstance(node.value, int):
            return AbstractValue((), "int64")
        if isinstance(node.value, float):
            return AbstractValue((), "float64")
        return UNKNOWN

    def _eval_Name(self, node: ast.Name) -> AbstractValue:
        return self._eval_name(node)

    def _eval_name(self, node: ast.Name) -> AbstractValue:
        reaching = self.defuse.reaching_definitions(node)
        if not reaching:
            return UNKNOWN
        value = self.value_at(reaching[0])
        for definition in reaching[1:]:
            value = _join(value, self.value_at(definition))
        return value

    def _eval_BinOp(self, node: ast.BinOp) -> AbstractValue:
        if isinstance(node.op, ast.MatMult):
            return UNKNOWN
        result, _ = broadcast(self.eval(node.left), self.eval(node.right))
        return result

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> AbstractValue:
        value = self.eval(node.operand)
        if isinstance(node.op, ast.Not):
            return AbstractValue(value.shape, "bool")
        if isinstance(node.op, ast.Invert):
            return value
        return value

    def _eval_BoolOp(self, node: ast.BoolOp) -> AbstractValue:
        value = self.eval(node.values[0])
        for operand in node.values[1:]:
            value = _join(value, self.eval(operand))
        return value

    def _eval_Compare(self, node: ast.Compare) -> AbstractValue:
        value = self.eval(node.left)
        for comparator in node.comparators:
            value, _ = broadcast(value, self.eval(comparator))
        return AbstractValue(value.shape, "bool")

    def _eval_IfExp(self, node: ast.IfExp) -> AbstractValue:
        return _join(self.eval(node.body), self.eval(node.orelse))

    def _eval_Attribute(self, node: ast.Attribute) -> AbstractValue:
        if node.attr == "T":
            base = self.eval(node.value)
            if base.shape is not None:
                return AbstractValue(base.shape[::-1], base.dtype)
        if node.attr == "real" or node.attr == "imag":
            base = self.eval(node.value)
            return AbstractValue(base.shape, "float64")
        return UNKNOWN

    def _eval_Subscript(self, node: ast.Subscript) -> AbstractValue:
        base = self.eval(node.value)
        if base.shape is None:
            return UNKNOWN
        items = (list(node.slice.elts)
                 if isinstance(node.slice, ast.Tuple) else [node.slice])
        dims = list(base.shape)
        result: list[str] = []
        position = 0
        for item in items:
            if _is_none_constant(item):
                result.append("1")
                continue
            if position >= len(dims):
                return UNKNOWN
            if _is_int_constant(item):
                position += 1  # drops this axis
            elif isinstance(item, ast.Slice):
                result.append(dims[position])
                position += 1
            else:
                index = self.eval(item)
                if index.rank == 1:
                    # Fancy index / boolean mask over one axis: the
                    # axis survives (a batch subset is still batch).
                    symbol = (index.shape[0]
                              if index.shape[0] in _SYMBOLS
                              else dims[position])
                    result.append(symbol)
                    position += 1
                elif index.rank == 0:
                    position += 1  # scalar index drops the axis
                else:
                    return UNKNOWN
        result.extend(dims[position:])
        return AbstractValue(tuple(result), base.dtype)

    # -- calls ---------------------------------------------------------

    def _eval_Call(self, node: ast.Call) -> AbstractValue:
        chain = attr_chain(node.func)
        terminal = chain[-1] if chain else ""
        handler = getattr(self, f"_call_{terminal}", None)
        if handler is not None:
            return handler(node)
        if terminal in _ELEMENTWISE_ONE_ARG and node.args:
            return self.eval(node.args[0])
        if terminal in _AXIS_REDUCERS and node.args:
            return self._reduce(node, terminal)
        return UNKNOWN

    def _keyword(self, node: ast.Call, name: str) -> ast.AST | None:
        for keyword in node.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    def _dtype_kw(self, node: ast.Call, default: str | None
                  ) -> str | None:
        value = self._keyword(node, "dtype")
        if value is None:
            return default
        return _dtype_name(value)

    def _dim(self, node: ast.AST) -> str:
        """Symbolic length of one creation-op dimension expression."""
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return "1" if node.value == 1 else "?"
        if isinstance(node, ast.Name):
            return _DIM_NAMES.get(node.id, "?") if self.seeded else "?"
        if isinstance(node, ast.Attribute):
            if self.seeded and node.attr in _DIM_NAMES:
                return _DIM_NAMES[node.attr]
            if node.attr == "size":
                base = self.eval(node.value)
                if base.rank == 1:
                    return base.shape[0]
            return "?"
        if isinstance(node, ast.Subscript) \
                and isinstance(node.value, ast.Attribute) \
                and node.value.attr == "shape" \
                and _is_int_constant(node.slice):
            base = self.eval(node.value.value)
            if base.shape is not None:
                index = _int_value(node.slice)
                if -len(base.shape) <= index < len(base.shape):
                    return base.shape[index]
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain and chain[-1] == "len" and node.args:
                base = self.eval(node.args[0])
                if base.shape:
                    return base.shape[0]
        return "?"

    def _dims(self, node: ast.AST) -> tuple[str, ...]:
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(self._dim(element) for element in node.elts)
        if isinstance(node, ast.Attribute) and node.attr == "shape":
            base = self.eval(node.value)
            if base.shape is not None:
                return base.shape
        return (self._dim(node),)

    def _creation(self, node: ast.Call,
                  default_dtype: str | None) -> AbstractValue:
        if not node.args:
            return UNKNOWN
        return AbstractValue(self._dims(node.args[0]),
                             self._dtype_kw(node, default_dtype))

    def _call_zeros(self, node): return self._creation(node, "float64")
    def _call_ones(self, node): return self._creation(node, "float64")
    def _call_empty(self, node): return self._creation(node, "float64")

    def _call_full(self, node: ast.Call) -> AbstractValue:
        if not node.args:
            return UNKNOWN
        fill = (self.eval(node.args[1]).dtype
                if len(node.args) > 1 else None)
        return AbstractValue(self._dims(node.args[0]),
                             self._dtype_kw(node, fill))

    def _like(self, node: ast.Call) -> AbstractValue:
        if not node.args:
            return UNKNOWN
        base = self.eval(node.args[0])
        return AbstractValue(base.shape, self._dtype_kw(node, base.dtype))

    def _call_zeros_like(self, node): return self._like(node)
    def _call_ones_like(self, node): return self._like(node)
    def _call_full_like(self, node): return self._like(node)

    def _call_asarray(self, node: ast.Call) -> AbstractValue:
        if not node.args:
            return UNKNOWN
        base = self.eval(node.args[0])
        return AbstractValue(base.shape, self._dtype_kw(node, base.dtype))

    _call_array = _call_asarray

    def _call_arange(self, node: ast.Call) -> AbstractValue:
        if len(node.args) == 1:
            return AbstractValue((self._dim(node.args[0]),),
                                 self._dtype_kw(node, "int64"))
        return AbstractValue(("?",), self._dtype_kw(node, None))

    def _call_flatnonzero(self, node: ast.Call) -> AbstractValue:
        if node.args:
            base = self.eval(node.args[0])
            if base.rank == 1:
                return AbstractValue((base.shape[0],), "int64")
        return AbstractValue(("?",), "int64")

    def _call_where(self, node: ast.Call) -> AbstractValue:
        if len(node.args) == 3:
            branches, _ = broadcast(self.eval(node.args[1]),
                                    self.eval(node.args[2]))
            condition = self.eval(node.args[0])
            result, _ = broadcast(
                branches, AbstractValue(condition.shape, branches.dtype))
            return result
        return UNKNOWN

    def _variadic_broadcast(self, node: ast.Call) -> AbstractValue:
        value = UNKNOWN
        for argument in node.args:
            value, _ = broadcast(value, self.eval(argument))
        return value

    def _call_maximum(self, node): return self._variadic_broadcast(node)
    def _call_minimum(self, node): return self._variadic_broadcast(node)
    def _call_clip(self, node): return self._variadic_broadcast(node)

    def _call_isfinite(self, node: ast.Call) -> AbstractValue:
        if node.args:
            return AbstractValue(self.eval(node.args[0]).shape, "bool")
        return UNKNOWN

    def _reduce(self, node: ast.Call, terminal: str) -> AbstractValue:
        if not node.args:
            return UNKNOWN
        base = self.eval(node.args[0])
        dtype = {"all": "bool", "any": "bool",
                 "argmax": "int64"}.get(terminal, base.dtype)
        if terminal in ("mean", "norm") and dtype not in (None,
                                                          "complex128"):
            dtype = "float64"
        axis = self._keyword(node, "axis")
        if axis is None and len(node.args) > 1 \
                and terminal != "norm":
            axis = node.args[1]
        if axis is None:
            return AbstractValue((), dtype)
        if base.shape is None or not _is_int_constant(axis):
            return AbstractValue(None, dtype)
        index = _int_value(axis)
        if not -len(base.shape) <= index < len(base.shape):
            return AbstractValue(None, dtype)
        remaining = list(base.shape)
        del remaining[index]
        return AbstractValue(tuple(remaining), dtype)

    def _call_einsum(self, node: ast.Call) -> AbstractValue:
        if not node.args or not isinstance(node.args[0], ast.Constant) \
                or not isinstance(node.args[0].value, str):
            return UNKNOWN
        spec = node.args[0].value.replace(" ", "")
        if "->" not in spec or "..." in spec:
            return UNKNOWN
        inputs, output = spec.split("->", 1)
        operands = inputs.split(",")
        if len(operands) != len(node.args) - 1:
            return UNKNOWN
        letters: dict[str, str] = {}
        dtypes = []
        for subscripts, argument in zip(operands, node.args[1:]):
            value = self.eval(argument)
            dtypes.append(value.dtype)
            if value.shape is not None \
                    and len(value.shape) == len(subscripts):
                for letter, dim in zip(subscripts, value.shape):
                    if letters.get(letter, dim) == dim:
                        letters[letter] = dim
        return AbstractValue(
            tuple(letters.get(letter, "?") for letter in output),
            _promote(*dtypes) if dtypes else None)

    def _call_batched_matvec(self, node: ast.Call) -> AbstractValue:
        if len(node.args) == 2:
            matrices = self.eval(node.args[0])
            vectors = self.eval(node.args[1])
            dtype = _promote(matrices.dtype, vectors.dtype)
            if matrices.rank == 3:
                return AbstractValue(
                    (matrices.shape[0], matrices.shape[2]), dtype)
            return AbstractValue(vectors.shape, dtype)
        return UNKNOWN

    def _call_batched_inv(self, node: ast.Call) -> AbstractValue:
        return self.eval(node.args[0]) if node.args else UNKNOWN

    _call_inv = _call_batched_inv

    def _call_astype(self, node: ast.Call) -> AbstractValue:
        if not isinstance(node.func, ast.Attribute):
            return UNKNOWN
        base = self.eval(node.func.value)
        dtype = None
        for argument in list(node.args) + \
                [k.value for k in node.keywords]:
            dtype = dtype or _dtype_name(argument)
        return AbstractValue(base.shape, dtype)

    def _call_ravel(self, node: ast.Call) -> AbstractValue:
        return AbstractValue(("?",), self._method_base(node).dtype)

    _call_flatten = _call_ravel

    def _call_reshape(self, node: ast.Call) -> AbstractValue:
        base = self._method_base(node)
        return AbstractValue(None, base.dtype)

    def _method_base(self, node: ast.Call) -> AbstractValue:
        """Receiver of a method-style call (``x.ravel()``), or the
        first argument of the function-style spelling."""
        if isinstance(node.func, ast.Attribute):
            root = node.func.value
            namespace = (isinstance(root, ast.Name)
                         and root.id in ("xp", "np", "numpy"))
            if not namespace:
                return self.eval(root)
        if node.args:
            return self.eval(node.args[0])
        return UNKNOWN


def _is_int_constant(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, int)
            and not isinstance(node.value, bool)) \
        or (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, int))


def _is_none_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _int_value(node: ast.AST) -> int:
    """Plain value of a (possibly negated) integer constant."""
    if isinstance(node, ast.UnaryOp):
        return -node.operand.value
    return node.value


# ----------------------------------------------------------------------
# shared rule plumbing


def interpreter_for(index: ProjectIndex, config, record
                    ) -> ShapeInterpreter:
    """Memoized per-scope interpreter (cached on the FunctionScope)."""
    scope = index.scope(record)
    interp = getattr(scope, "_shape_interpreter", None)
    if interp is None:
        interp = ShapeInterpreter(
            scope.defuse, record.module.matches(config.seed_globs))
        scope._shape_interpreter = interp
    return interp


def _scoped_nodes(index: ProjectIndex, module: ModuleInfo):
    """(record, node) pairs covering the module exactly once: each
    node paired with its innermost enclosing scope."""
    for node in ast.walk(module.tree):
        record = index.enclosing_function(module, node)
        yield record, node


def _shape_modules(index: ProjectIndex, config):
    for module in index.modules:
        if module.matches(config.shape_globs):
            yield module


# ----------------------------------------------------------------------
# SHP001 — batch-axis loss via row-contracting ops


def rule_shp001(index: ProjectIndex, config, emit) -> None:
    for module in _shape_modules(index, config):
        for record, node in _scoped_nodes(index, module):
            interp = interpreter_for(index, config, record)
            if isinstance(node, ast.BinOp) \
                    and isinstance(node.op, ast.MatMult):
                for side in (node.left, node.right):
                    if interp.eval(side).batch_led:
                        emit("SHP001", module, node.lineno,
                             "matrix product (@) consumes a batch-led "
                             "operand: the B axis enters a BLAS "
                             "contraction whose rounding depends on "
                             "the rows in flight",
                             "accumulate element-wise, keeping B in "
                             "every intermediate")
                        break
                continue
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            terminal = chain[-1] if chain else ""
            if terminal in _ROW_CONTRACTING:
                for position, argument in enumerate(node.args):
                    value = interp.eval(argument)
                    if value.batch_led:
                        emit("SHP001", module, node.lineno,
                             f"{terminal}(...) consumes operand "
                             f"{position} with inferred shape "
                             f"{_render(value)}: the batch axis B is "
                             "contracted or reblocked, so per-row "
                             "results change with the batch width",
                             "use a batch-preserving einsum (keep the "
                             "b subscript in the output)")
                        break
            elif terminal == "einsum":
                _shp001_einsum(module, node, interp, emit)
            elif terminal in _AXIS_REDUCERS:
                axis = None
                for keyword in node.keywords:
                    if keyword.arg == "axis" \
                            and isinstance(keyword.value, ast.Constant):
                        axis = keyword.value.value
                if axis == 0 and node.args \
                        and interp.eval(node.args[0]).batch_led:
                    emit("SHP001", module, node.lineno,
                         f"{terminal}(axis=0) collapses the batch "
                         "axis of a B-led operand: downstream values "
                         "lose their per-row identity",
                         "reduce along the state axis or keep per-row "
                         "partials")


def _shp001_einsum(module, node: ast.Call, interp, emit) -> None:
    if not node.args or not isinstance(node.args[0], ast.Constant) \
            or not isinstance(node.args[0].value, str):
        return
    spec = node.args[0].value.replace(" ", "")
    if "->" not in spec or "..." in spec:
        return
    inputs, output = spec.split("->", 1)
    operands = inputs.split(",")
    if len(operands) != len(node.args) - 1:
        return
    for position, (subscripts, argument) in enumerate(
            zip(operands, node.args[1:])):
        if len(subscripts) < 2 or subscripts[0] in output:
            continue
        value = interp.eval(argument)
        if value.batch_led:
            emit("SHP001", module, node.lineno,
                 f"einsum({spec!r}) contracts the leading subscript "
                 f"of operand {position}, whose inferred shape "
                 f"{_render(value)} is batch-led: B is summed away",
                 "keep the batch subscript in the output spec")


# ----------------------------------------------------------------------
# SHP002 — silent broadcasts misaligning the batch axis


def rule_shp002(index: ProjectIndex, config, emit) -> None:
    for module in _shape_modules(index, config):
        for record, node in _scoped_nodes(index, module):
            if not isinstance(node, ast.BinOp) \
                    or not isinstance(node.op, _ARITH_BINOPS):
                continue
            interp = interpreter_for(index, config, record)
            left = interp.eval(node.left)
            right = interp.eval(node.right)
            _, mismatch = broadcast(left, right)
            if mismatch is not None and "B" in mismatch:
                other = mismatch[0] if mismatch[1] == "B" else mismatch[1]
                emit("SHP002", module, node.lineno,
                     f"broadcast pairs the batch axis B with axis "
                     f"{other!r} ({_render(left)} vs {_render(right)}): "
                     "rows silently combine across simulations "
                     "whenever the two lengths happen to match",
                     "insert an explicit [:, None] (or align shapes) "
                     "so B only ever broadcasts against itself")


# ----------------------------------------------------------------------
# SHP003 — narrow dtypes reaching state/accumulator arithmetic


def rule_shp003(index: ProjectIndex, config, emit) -> None:
    for module in _shape_modules(index, config):
        records = [r for r in index.functions() if r.module is module]
        records.append(module.functions[ProjectIndex.MODULE_FUNCTION])
        for record in records:
            interp = interpreter_for(index, config, record)
            defuse = index.scope(record).defuse
            for definition in defuse.definitions:
                value = defuse.value_of.get(definition)
                if value is None or not isinstance(value, ast.AST):
                    continue
                dtype = interp.value_at(definition).dtype
                if dtype not in _NARROW_DTYPES:
                    continue
                for use in defuse.uses_of.get(definition, ()):
                    if _feeds_state_arithmetic(module, use):
                        emit("SHP003", module, use.lineno,
                             f"{definition.name!r} carries inferred "
                             f"dtype {dtype} (bound on line "
                             f"{definition.lineno}) into a state/"
                             "accumulator arithmetic path: the "
                             "downcast truncates solver state",
                             "keep state float64; narrow only at the "
                             "output boundary")
                        break


def _feeds_state_arithmetic(module: ModuleInfo, use: ast.Name) -> bool:
    previous: ast.AST = use
    for ancestor in module.ancestors(use):
        if isinstance(ancestor, (ast.BinOp, ast.AugAssign)):
            return True
        if isinstance(ancestor, ast.Assign):
            # stored into an element of an existing array
            return any(isinstance(target, ast.Subscript)
                       for target in ancestor.targets) \
                and previous is ancestor.value
        if isinstance(ancestor, ast.stmt):
            return False
        previous = ancestor
    return False


# ----------------------------------------------------------------------
# SHP004 — shape-unstable branches


def rule_shp004(index: ProjectIndex, config, emit) -> None:
    for module in _shape_modules(index, config):
        reported: set[tuple[str, frozenset[int]]] = set()
        for record, node in _scoped_nodes(index, module):
            if not isinstance(node, ast.Name) \
                    or not isinstance(node.ctx, ast.Load):
                continue
            interp = interpreter_for(index, config, record)
            reaching = interp.defuse.reaching_definitions(node)
            if len(reaching) < 2:
                continue
            shapes = [interp.value_at(d).shape for d in reaching]
            known = [s for s in shapes if s is not None]
            if len(known) < 2:
                continue
            ranks = {len(s) for s in known}
            leads = {s[0] for s in known if s and s[0] in _SYMBOLS}
            unstable = len(ranks) > 1 or len(leads) > 1
            if not unstable:
                continue
            key = (node.id,
                   frozenset(d.lineno for d in reaching))
            if key in reported:
                continue
            reported.add(key)
            rendered = ", ".join(sorted(
                {_render(AbstractValue(s)) for s in known}))
            lines = ", ".join(str(d.lineno) for d in sorted(
                reaching, key=lambda d: d.lineno))
            emit("SHP004", module, node.lineno,
                 f"{node.id!r} is shape-unstable at this use: "
                 f"definitions on lines {lines} reach it with "
                 f"conflicting symbolic shapes ({rendered})",
                 "normalize the shape on every branch before the "
                 "value is consumed")


# ----------------------------------------------------------------------
# SHP005 — reshape/ravel folding B into other axes


def rule_shp005(index: ProjectIndex, config, emit) -> None:
    for module in _shape_modules(index, config):
        for record, node in _scoped_nodes(index, module):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            terminal = chain[-1] if chain else ""
            if terminal not in ("ravel", "flatten", "reshape"):
                continue
            interp = interpreter_for(index, config, record)
            base = interp._method_base(node)
            if base.shape is None or len(base.shape) < 2 \
                    or "B" not in base.shape:
                continue
            if terminal == "reshape" and _reshape_keeps_batch(node,
                                                              interp):
                continue
            emit("SHP005", module, node.lineno,
                 f"{terminal}(...) flattens an array of inferred "
                 f"shape {_render(base)}: the batch axis B is folded "
                 "into other axes, so row boundaries are lost",
                 "reshape with an explicit leading batch dimension "
                 "(B, -1) or keep the array batched")


def _reshape_keeps_batch(node: ast.Call, interp) -> bool:
    """True when the first target dimension is recognizably B."""
    arguments = node.args
    if isinstance(node.func, ast.Attribute) \
            and isinstance(node.func.value, ast.Name) \
            and node.func.value.id in ("xp", "np", "numpy"):
        arguments = node.args[1:]  # function-style: skip the array
    if not arguments:
        return False
    first = arguments[0]
    if isinstance(first, (ast.Tuple, ast.List)) and first.elts:
        first = first.elts[0]
    return interp._dim(first) == "B" or (
        isinstance(first, ast.Subscript)
        and isinstance(first.value, ast.Attribute)
        and first.value.attr == "shape"
        and isinstance(first.slice, ast.Constant)
        and first.slice.value == 0)


# ----------------------------------------------------------------------
# SHP006 — dtype-unstable out= targets


def rule_shp006(index: ProjectIndex, config, emit) -> None:
    for module in _shape_modules(index, config):
        for record, node in _scoped_nodes(index, module):
            if not isinstance(node, ast.Call):
                continue
            out_expr = None
            for keyword in node.keywords:
                if keyword.arg == "out":
                    out_expr = keyword.value
            if out_expr is None:
                continue
            interp = interpreter_for(index, config, record)
            out_dtype = interp.eval(out_expr).dtype
            if out_dtype is None:
                continue
            input_dtypes = [interp.eval(arg).dtype for arg in node.args]
            widest = max((_DTYPE_RANK.get(d, -1)
                          for d in input_dtypes if d is not None),
                         default=-1)
            if widest > _DTYPE_RANK.get(out_dtype, -1):
                chain = attr_chain(node.func)
                emit("SHP006", module, node.lineno,
                     f"out= target holds dtype {out_dtype} but "
                     f"{chain[-1] if chain else 'the call'}(...) "
                     "produces a wider dtype: every store silently "
                     "downcasts, and the truncation point moves with "
                     "the expression",
                     "allocate the out= array with the promoted dtype")


def _render(value: AbstractValue) -> str:
    if value.shape is None:
        return "(?)"
    return "(" + ", ".join(value.shape) + ")"


#: Rule id -> implementation, in execution order.
SHP_CHECKS = {
    "SHP001": rule_shp001,
    "SHP002": rule_shp002,
    "SHP003": rule_shp003,
    "SHP004": rule_shp004,
    "SHP005": rule_shp005,
    "SHP006": rule_shp006,
}
