"""Concurrency-safety rules ``CNC001``–``CNC009``.

Every rule consumes the shared :class:`~repro.lint.concurrency
.ConcurrencyModel` (sync-primitive registry, call-only call graph,
execution-context closures, lock-held abstract state) and follows the
deep-rule calling convention: ``rule(index, config, emit)`` with the
waiver-aware emitter from :mod:`repro.lint.deep`.

The family polices the three boundaries of the serving stack:

* **event loop** — CNC001 (blocking calls reachable from coroutines),
  CNC002 (``await`` under a held sync lock), CNC003 (handlers that
  swallow cancellation), CNC004 (coroutines never awaited, dropped
  tasks);
* **threads** — CNC005 (cross-context writes without a dominating
  lock), CNC006 (``Condition.wait`` outside a predicate loop), CNC009
  (lock acquired on a path whose exception edge skips the release);
* **processes** — CNC007 (unpicklable state crossing a
  multiprocessing queue), CNC008 (generation token compared after the
  payload is already used).
"""

from __future__ import annotations

import ast

from .dataflow import ProjectIndex, attr_chain

#: Every concurrency rule: id -> (default severity, one-line doc).
CNC_RULES = {
    "CNC001": ("error", "blocking call reachable from an async def "
                        "(stalls the event loop)"),
    "CNC002": ("error", "await while holding a synchronous "
                        "threading lock"),
    "CNC003": ("warning", "exception handler can swallow "
                          "asyncio.CancelledError semantics"),
    "CNC004": ("warning", "coroutine called but never awaited, or "
                          "task result dropped"),
    "CNC005": ("error", "shared attribute written from multiple "
                        "execution contexts without its lock"),
    "CNC006": ("warning", "Condition.wait outside a while-predicate "
                          "loop (missed-wakeup hazard)"),
    "CNC007": ("warning", "object with unpicklable/post-fork-stale "
                          "state crosses a multiprocessing queue"),
    "CNC008": ("error", "protocol payload used before its generation "
                        "token is validated"),
    "CNC009": ("warning", "lock acquired without with/try-finally: an "
                          "exception path skips the release"),
}

#: Attribute-method terminals that mutate their receiver in place.
_MUTATORS = frozenset({"append", "extend", "insert", "add", "update",
                       "pop", "popitem", "remove", "discard", "clear",
                       "appendleft", "popleft", "setdefault"})

#: Handler types whose catch can absorb a cancellation.
_CANCEL_CATCHERS = frozenset({"BaseException", "CancelledError"})


def _model(index: ProjectIndex, config):
    from .concurrency import conc_model
    return conc_model(index, config)


def _handler_names(handler: ast.ExceptHandler) -> list[str]:
    """Simple names of the exception types a handler catches
    (``[]`` for a bare ``except:``)."""
    if handler.type is None:
        return []
    nodes = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    names = []
    for node in nodes:
        chain = attr_chain(node)
        if chain:
            names.append(chain[-1])
    return names


# ----------------------------------------------------------------------
# CNC001 — blocking calls reachable from async bodies


def rule_cnc001_blocking_in_async(index: ProjectIndex, config,
                                  emit) -> None:
    """Flag blocking operations a coroutine can reach: directly in its
    body, or through its synchronous call closure. Transitive findings
    are reported at the first async->sync call edge — the actionable
    site where an ``asyncio.to_thread`` offload belongs."""
    model = _model(index, config)
    from .concurrency import own_nodes
    for record in model.async_functions():
        module = record.module
        for lineno, reason, _call in model.direct_blocking(record):
            emit("CNC001", module, lineno,
                 f"async def {record.name} performs {reason} on the "
                 f"event-loop thread",
                 "offload with await asyncio.to_thread(...) or use the "
                 "asyncio-native primitive")
        parents = module.parent_map()
        reported: set[int] = set()
        for call, terminal, rtype in model.call_sites.get(
                record.qualname, ()):
            candidates = model.sync_candidates(terminal, rtype)
            if not candidates:
                continue
            if isinstance(parents.get(id(call)), ast.Await):
                continue
            for candidate in candidates:
                found = model.transitive_blocking(candidate.qualname)
                if found is None:
                    continue
                _line, reason, via = found
                if call.lineno in reported:
                    break
                reported.add(call.lineno)
                emit("CNC001", module, call.lineno,
                     f"async def {record.name} calls {terminal}(), "
                     f"which performs {reason} "
                     f"(via {' -> '.join(via)})",
                     "run the sync call through await "
                     "asyncio.to_thread(...)")
                break
    # Suppress the unused-import style warning for own_nodes (kept for
    # parity with the model API; direct_blocking walks the bodies).
    del own_nodes


# ----------------------------------------------------------------------
# CNC002 — await while holding a sync lock


def rule_cnc002_await_under_lock(index: ProjectIndex, config,
                                 emit) -> None:
    """A coroutine that awaits inside ``with <threading lock>:`` parks
    on the loop while every other thread contending for that lock
    blocks — the classic async/sync deadlock inversion."""
    model = _model(index, config)
    from .concurrency import LOCK_KINDS, own_nodes
    for record in model.async_functions():
        module = record.module
        registry = model.registry(module)
        for node in own_nodes(record.node):
            if not isinstance(node, ast.With):
                continue
            held = None
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                if registry.kind_of(expr) in LOCK_KINDS:
                    held = ast.unparse(expr)
                    break
            if held is None:
                continue
            awaits = [child for child in ast.walk(node)
                      if isinstance(child, ast.Await)]
            if awaits:
                emit("CNC002", module, awaits[0].lineno,
                     f"async def {record.name} awaits while holding "
                     f"the sync lock {held} (acquired on line "
                     f"{node.lineno})",
                     "release the lock before awaiting, or switch to "
                     "asyncio.Lock")


# ----------------------------------------------------------------------
# CNC003 — swallowed cancellation


def rule_cnc003_swallowed_cancel(index: ProjectIndex, config,
                                 emit) -> None:
    """Inside a coroutine, a bare ``except:`` /
    ``except BaseException`` / ``except CancelledError`` that does not
    re-raise eats the :class:`asyncio.CancelledError` the service's
    cooperative-cancel discipline depends on. ``except Exception``
    around an ``await`` gets the same warning: it hides the errors the
    supervisor's done-callbacks exist to surface (and swallowed
    cancellation outright on pre-3.8 semantics)."""
    model = _model(index, config)
    from .concurrency import own_nodes
    for record in model.async_functions():
        module = record.module
        for node in own_nodes(record.node):
            if not isinstance(node, ast.Try):
                continue
            body_awaits = any(isinstance(child, ast.Await)
                              for stmt in node.body
                              for child in ast.walk(stmt))
            for handler in node.handlers:
                names = _handler_names(handler)
                reraises = any(isinstance(child, ast.Raise)
                               for stmt in handler.body
                               for child in ast.walk(stmt))
                if reraises:
                    continue
                catches_cancel = (handler.type is None
                                  or set(names) & _CANCEL_CATCHERS)
                broad_around_await = ("Exception" in names
                                      and body_awaits)
                if catches_cancel:
                    what = ("a bare except"
                            if handler.type is None
                            else f"except {'/'.join(names)}")
                    emit("CNC003", module, handler.lineno,
                         f"async def {record.name}: {what} absorbs "
                         f"asyncio.CancelledError without re-raising",
                         "re-raise CancelledError (bare `raise`) or "
                         "narrow the handler")
                elif broad_around_await:
                    emit("CNC003", module, handler.lineno,
                         f"async def {record.name}: except Exception "
                         f"around an await hides task failures and "
                         f"cancellation edge cases",
                         "catch the specific errors, or re-raise after "
                         "recording")


# ----------------------------------------------------------------------
# CNC004 — never-awaited coroutines, dropped tasks


def rule_cnc004_unawaited(index: ProjectIndex, config, emit) -> None:
    """Two shapes of fire-and-forget: (a) a call whose only indexed
    candidates are ``async def`` appearing as a bare expression
    statement (the coroutine object is created and dropped, the body
    never runs); (b) an ``asyncio.create_task`` / ``ensure_future``
    result discarded without a retained reference or a done-callback —
    the task is garbage-collectable mid-flight and its exception
    vanishes."""
    model = _model(index, config)
    from .concurrency import own_nodes
    wrappers = set(config.task_wrappers)
    for record in model.records.values():
        module = record.module
        parents = module.parent_map()
        for node in own_nodes(record.node):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if not chain:
                continue
            terminal = chain[-1]
            if terminal in ("create_task", "ensure_future"):
                if isinstance(parents.get(id(node)), ast.Expr):
                    emit("CNC004", module, node.lineno,
                         f"{record.name} drops the "
                         f"{terminal}(...) result: the task can be "
                         f"garbage-collected mid-flight and its "
                         f"exception is never observed",
                         "keep a reference and add an "
                         "exception-surfacing done-callback")
                continue
            candidates = index.by_simple_name.get(terminal, ())
            if not candidates or not all(model.is_async(c)
                                         for c in candidates):
                continue
            if _coroutine_consumed(node, parents, wrappers):
                continue
            emit("CNC004", module, node.lineno,
                 f"{record.name} calls the coroutine {terminal}() "
                 f"without awaiting it: the body never runs",
                 "await it, or hand it to asyncio.create_task / "
                 "asyncio.run")


def _coroutine_consumed(node: ast.AST, parents: dict,
                        wrappers: set) -> bool:
    """True when an ancestor consumes the coroutine object: an await,
    a task wrapper call, a deferred factory (lambda), a return, or any
    binding that retains the object for a later await."""
    current = parents.get(id(node))
    while current is not None:
        if isinstance(current, (ast.Await, ast.Lambda, ast.Return,
                                ast.Assign, ast.AnnAssign,
                                ast.NamedExpr, ast.Yield,
                                ast.YieldFrom)):
            return True
        if isinstance(current, ast.Call):
            chain = attr_chain(current.func)
            if chain and chain[-1] in wrappers:
                return True
        if isinstance(current, ast.Expr):
            return False  # bare statement: dropped on the floor
        current = parents.get(id(current))
    return True  # module-level or opaque context: stay quiet


# ----------------------------------------------------------------------
# CNC005 — cross-context writes without a dominating lock


def rule_cnc005_unlocked_shared_write(index: ProjectIndex, config,
                                      emit) -> None:
    """Two triggers over the per-class attribute-write table:

    * **lock discipline** — a class owns a sync lock and one attribute
      is written both under it and outside it (outside ``__init__``):
      the unprotected write races every protected reader;
    * **multi-context** — an attribute is written (unprotected) by
      functions reachable from two different execution contexts (the
      event loop and a thread/offload root, or two distinct roots).

    A write counts as protected when it is lexically under
    ``with <lock>:`` or lives in a helper every module-local call site
    of which holds the lock."""
    model = _model(index, config)
    writes = _collect_class_writes(model)
    loop_context = model.loop_context()
    thread_contexts = model.thread_contexts()
    for (module_relpath, class_name, attr), entries in sorted(
            writes.items()):
        module = next(m for m in index.modules
                      if m.relpath == module_relpath)
        registry = model.registry(module)
        unprotected = [e for e in entries if not e["protected"]]
        if not unprotected:
            continue
        # Trigger 1: lock discipline inside a lock-owning class.
        if class_name in registry.lock_classes() \
                and any(e["protected"] for e in entries):
            entry = unprotected[0]
            emit("CNC005", module, entry["lineno"],
                 f"{class_name}.{attr} is written without the class "
                 f"lock in {entry['function']} but under it "
                 f"elsewhere: the unlocked write races every "
                 f"protected access",
                 "hold the lock for every write (with self.<lock>:)")
            continue
        # Trigger 2: writes reachable from >= 2 execution contexts.
        # Scoped to the subsystems whose instances actually span
        # contexts (ConcConfig.shared_state_modules).
        if not module_relpath.startswith(
                tuple(config.shared_state_modules)):
            continue
        tags: set[str] = set()
        for entry in entries:
            qualname = entry["qualname"]
            if qualname in loop_context:
                tags.add("event-loop")
            for tag, closure in thread_contexts.items():
                if qualname in closure:
                    tags.add(tag)
        if len(tags) >= 2:
            entry = unprotected[0]
            emit("CNC005", module, entry["lineno"],
                 f"{class_name}.{attr} is written from multiple "
                 f"execution contexts ({', '.join(sorted(tags))}) "
                 f"without a dominating lock",
                 "guard every write with one threading.Lock, or "
                 "confine the object to a single context")


def _collect_class_writes(model) -> dict:
    """(module relpath, class, attr) -> write entries with their
    protection state. ``__init__``/``__post_init__`` are construction,
    not sharing, and are exempt."""
    from .concurrency import own_nodes
    writes: dict = {}
    lock_helper_cache: dict[str, bool] = {}

    def protected(record, node) -> bool:
        if model.under_sync_lock(record.module, node):
            return True
        cached = lock_helper_cache.get(record.qualname)
        if cached is None:
            cached = model.called_only_under_lock(record)
            lock_helper_cache[record.qualname] = cached
        return cached

    for record in model.records.values():
        if record.class_name is None \
                or record.name in ("__init__", "__post_init__"):
            continue
        for node in own_nodes(record.node):
            for attr, lineno in _self_attr_writes(node):
                key = (record.module.relpath, record.class_name, attr)
                writes.setdefault(key, []).append({
                    "lineno": lineno,
                    "function": record.name,
                    "qualname": record.qualname,
                    "protected": protected(record, node)})
    return writes


def _self_attr_writes(node: ast.AST):
    """(attr, line) pairs when ``node`` writes ``self.<attr>``:
    assignments, augmented assignments, subscript stores and in-place
    mutator calls (``self.x.append(...)``)."""
    def self_attr(target):
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            return target.attr
        if isinstance(target, ast.Subscript):
            return self_attr(target.value)
        return None

    if isinstance(node, ast.Assign):
        for target in node.targets:
            attr = self_attr(target)
            if attr is not None:
                yield attr, node.lineno
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        attr = self_attr(node.target)
        if attr is not None and (not isinstance(node, ast.AnnAssign)
                                 or node.value is not None):
            yield attr, node.lineno
    elif isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        if len(chain) == 3 and chain[0] == "self" \
                and chain[2] in _MUTATORS:
            yield chain[1], node.lineno


# ----------------------------------------------------------------------
# CNC006 — Condition.wait outside a while loop


def rule_cnc006_wait_without_loop(index: ProjectIndex, config,
                                  emit) -> None:
    """``Condition.wait`` returning proves nothing about the predicate
    (spurious wakeups, stolen wakeups): a wait not re-checked by an
    enclosing ``while`` loop is a missed-wakeup bug waiting to
    happen."""
    model = _model(index, config)
    from .concurrency import own_nodes
    for record in model.records.values():
        module = record.module
        registry = model.registry(module)
        for node in own_nodes(record.node):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute) \
                    or node.func.attr != "wait":
                continue
            if registry.kind_of(node.func.value) != "condition":
                continue
            in_while = False
            for ancestor in module.ancestors(node):
                if isinstance(ancestor, ast.While):
                    in_while = True
                    break
                if isinstance(ancestor, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    break
            if not in_while:
                emit("CNC006", module, node.lineno,
                     f"{record.name} calls Condition.wait outside a "
                     f"while-predicate loop: a spurious or stolen "
                     f"wakeup proceeds with the predicate still false",
                     "wrap it: while not <predicate>: cond.wait(...)")


# ----------------------------------------------------------------------
# CNC007 — unpicklable state across a multiprocessing queue


def rule_cnc007_unpicklable_across_fork(index: ProjectIndex, config,
                                        emit) -> None:
    """An object whose class closes over a live handle, socket, lock
    or tracer dies (or silently goes stale) when pickled onto a
    multiprocessing queue. Flags ``<queue>.put(x)`` where the reaching
    definition of ``x`` constructs such a class (or is such a
    constructor call directly)."""
    model = _model(index, config)
    from .concurrency import own_nodes
    risky_classes = _risky_classes(index, config)
    risky_ctors = set(config.unpicklable_ctors)
    for record in model.records.values():
        module = record.module
        registry = model.registry(module)
        scope = None
        for node in own_nodes(record.node):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute) \
                    or node.func.attr != "put":
                continue
            if registry.kind_of(node.func.value) != "queue":
                continue
            for arg in node.args:
                reason = None
                if isinstance(arg, ast.Call):
                    chain = attr_chain(arg.func)
                    terminal = chain[-1] if chain else None
                    if terminal in risky_ctors \
                            or terminal in risky_classes:
                        reason = terminal
                elif isinstance(arg, ast.Name):
                    if scope is None:
                        scope = index.scope(record)
                    reason = _risky_reaching(scope, arg, risky_ctors,
                                             risky_classes)
                if reason is not None:
                    emit("CNC007", module, node.lineno,
                         f"{record.name} puts a value built from "
                         f"{reason} onto a multiprocessing/thread "
                         f"queue: it closes over unpicklable or "
                         f"post-fork-stale state",
                         "send plain data across the boundary and "
                         "rebuild resources on the far side")


def _risky_classes(index: ProjectIndex, config) -> set[str]:
    """Classes any of whose ``self.x = <ctor>`` attributes hold a
    live resource from :attr:`ConcConfig.unpicklable_ctors`."""
    risky_ctors = set(config.unpicklable_ctors)
    risky: set[str] = set()
    for module in index.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for child in ast.walk(node):
                if isinstance(child, ast.Assign) \
                        and isinstance(child.value, ast.Call):
                    chain = attr_chain(child.value.func)
                    if chain and chain[-1] in risky_ctors and any(
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"
                            for t in child.targets):
                        risky.add(node.name)
    return risky


def _risky_reaching(scope, name: ast.Name, risky_ctors: set,
                    risky_classes: set) -> str | None:
    for definition in scope.defuse.reaching_definitions(name):
        value = scope.defuse.value_of.get(definition)
        if isinstance(value, ast.Call):
            chain = attr_chain(value.func)
            terminal = chain[-1] if chain else None
            if terminal in risky_ctors or terminal in risky_classes:
                return terminal
    return None


# ----------------------------------------------------------------------
# CNC008 — generation token validated after payload use


def rule_cnc008_generation_after_payload(index: ProjectIndex, config,
                                         emit) -> None:
    """The executor's message discipline: a consumer that *unpacks* a
    ``(slot, generation)`` routing token must compare the generation
    against current state *before* touching the payload, or a message
    from a killed-and-restarted slot corrupts the new generation's
    bookkeeping. Flags consumer functions (token + payload parameters,
    token unpacked) with no generation comparison, or one that happens
    only after the first payload read."""
    model = _model(index, config)
    from .concurrency import own_nodes
    token_names = set(config.protocol_token_params)
    payload_names = set(config.protocol_payload_params)
    guards = tuple(config.protocol_guard_names)
    for record in model.records.values():
        params = {arg.arg for arg in getattr(record.node, "args",
                                             ast.arguments(
                                                 posonlyargs=[],
                                                 args=[], kwonlyargs=[],
                                                 kw_defaults=[],
                                                 defaults=[])).args}
        token = params & token_names
        payload = params & payload_names
        if not token or not payload:
            continue
        nodes = own_nodes(record.node)
        if not _unpacks_token(nodes, token):
            continue  # the token is only forwarded, not consumed
        module = record.module
        guard_line = None
        for node in nodes:
            if isinstance(node, ast.Compare) and _mentions_guard(
                    node, guards):
                if guard_line is None or node.lineno < guard_line:
                    guard_line = node.lineno
        payload_line = None
        for node in nodes:
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load) \
                    and node.id in payload:
                if payload_line is None or node.lineno < payload_line:
                    payload_line = node.lineno
        if payload_line is None:
            continue
        if guard_line is None:
            emit("CNC008", module, record.lineno,
                 f"{record.name} unpacks the routing token but never "
                 f"compares its generation before using the payload: "
                 f"stale messages from restarted slots are absorbed",
                 "compare the token generation against current slot "
                 "state and drop mismatches first")
        elif guard_line > payload_line:
            emit("CNC008", module, payload_line,
                 f"{record.name} reads the payload on line "
                 f"{payload_line} before the generation check on line "
                 f"{guard_line}",
                 "hoist the generation comparison above every payload "
                 "use")


def _unpacks_token(nodes, token_names: set) -> bool:
    for node in nodes:
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in token_names \
                and any(isinstance(t, (ast.Tuple, ast.List))
                        for t in node.targets):
            return True
        if isinstance(node, ast.Subscript) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in token_names:
            return True
    return False


def _mentions_guard(node: ast.Compare, guards: tuple) -> bool:
    for child in ast.walk(node):
        text = None
        if isinstance(child, ast.Name):
            text = child.id
        elif isinstance(child, ast.Attribute):
            text = child.attr
        if text is not None and any(guard in text for guard in guards):
            return True
    return False


# ----------------------------------------------------------------------
# CNC009 — bare acquire with a release-skipping exception edge


def rule_cnc009_lock_leak(index: ProjectIndex, config, emit) -> None:
    """A ``lock.acquire()`` outside a ``with`` statement must pair
    with a ``release()`` in a ``finally`` block: any exception raised
    between the two otherwise leaks the lock and deadlocks every later
    waiter."""
    model = _model(index, config)
    from .concurrency import LOCK_KINDS, own_nodes
    for record in model.records.values():
        module = record.module
        registry = model.registry(module)
        parents = module.parent_map()
        nodes = own_nodes(record.node)
        for node in nodes:
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute) \
                    or node.func.attr != "acquire":
                continue
            if registry.kind_of(node.func.value) not in LOCK_KINDS:
                continue
            parent = parents.get(id(node))
            if isinstance(parent, ast.withitem):
                continue  # with lock.acquire()-style CM misuse aside
            receiver = ast.unparse(node.func.value)
            releases = [other for other in nodes
                        if isinstance(other, ast.Call)
                        and isinstance(other.func, ast.Attribute)
                        and other.func.attr == "release"
                        and ast.unparse(other.func.value) == receiver]
            if not releases:
                emit("CNC009", module, node.lineno,
                     f"{record.name} acquires {receiver} without a "
                     f"matching release in this function: every "
                     f"early exit leaks the lock",
                     "use `with {0}:` instead".format(receiver))
                continue
            if not any(_in_finally(module, release)
                       for release in releases):
                emit("CNC009", module, node.lineno,
                     f"{record.name} acquires {receiver} but no "
                     f"release sits in a finally block: an exception "
                     f"between acquire and release leaks the lock",
                     "move the release into try/finally, or use "
                     "`with {0}:`".format(receiver))


def _in_finally(module, node: ast.AST) -> bool:
    previous = node
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.Try) \
                and any(previous is stmt or _contains(stmt, previous)
                        for stmt in ancestor.finalbody):
            return True
        if isinstance(ancestor, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
            return False
        previous = ancestor
    return False


def _contains(tree: ast.AST, target: ast.AST) -> bool:
    return any(child is target for child in ast.walk(tree))


#: Check registry consumed by the driver, in rule order.
CNC_CHECKS = {
    "CNC001": rule_cnc001_blocking_in_async,
    "CNC002": rule_cnc002_await_under_lock,
    "CNC003": rule_cnc003_swallowed_cancel,
    "CNC004": rule_cnc004_unawaited,
    "CNC005": rule_cnc005_unlocked_shared_write,
    "CNC006": rule_cnc006_wait_without_loop,
    "CNC007": rule_cnc007_unpicklable_across_fork,
    "CNC008": rule_cnc008_generation_after_payload,
    "CNC009": rule_cnc009_lock_leak,
}
