"""Rule-based modeling (BNGL-lite) and network expansion."""

from .library import multisite_cascade, two_state_receptor
from .rulemodel import (MoleculeType, Pattern, Rule, RuleBasedModel,
                        RuleSpecies, expand)

__all__ = [
    "multisite_cascade", "two_state_receptor",
    "MoleculeType", "Pattern", "Rule", "RuleBasedModel", "RuleSpecies",
    "expand",
]
