"""Rule-based modeling (BNGL-lite) and network expansion.

The large RBMs of this paper family are typically *derived*, not
hand-written: a rule-based description (a few molecule types with
modification sites, a few dozen rules) expands into the full reaction
network — e.g. the autophagy/translation switch grows from 7 molecule
types and 29 rules into 173 species and 6581 reactions.

This module implements the site-and-state fragment of that formalism
sufficient to reproduce the combinatorial expansion:

* a :class:`MoleculeType` declares named sites, each with a finite
  state set (e.g. a phosphosite with states ``("u", "p")``);
* a species is a molecule type plus a total assignment of site states;
* a :class:`Rule` rewrites the states of the sites it mentions, for
  every species matching its (partial) site conditions, optionally
  catalyzed by a *modifier* pattern (the enzyme appears on both sides);
* :func:`expand` applies all rules to closure from the seed species and
  emits an ordinary mass-action :class:`ReactionBasedModel` that the
  deterministic and stochastic engines simulate directly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import ModelError
from ..model import Reaction, ReactionBasedModel


@dataclass(frozen=True)
class MoleculeType:
    """A molecule with named, finite-state sites.

    ``sites`` maps site name -> tuple of admissible states; the first
    state of each site is its default.
    """

    name: str
    sites: tuple[tuple[str, tuple[str, ...]], ...]

    def __post_init__(self) -> None:
        seen = set()
        for site, states in self.sites:
            if site in seen:
                raise ModelError(
                    f"molecule {self.name!r}: duplicate site {site!r}")
            seen.add(site)
            if len(states) < 1:
                raise ModelError(
                    f"molecule {self.name!r}: site {site!r} has no states")
            if len(set(states)) != len(states):
                raise ModelError(
                    f"molecule {self.name!r}: site {site!r} has duplicate "
                    "states")
        object.__setattr__(self, "_site_map", dict(self.sites))

    @property
    def site_names(self) -> list[str]:
        return [site for site, _ in self.sites]

    def states_of(self, site: str) -> tuple[str, ...]:
        try:
            return self._site_map[site]
        except KeyError:
            raise ModelError(
                f"molecule {self.name!r} has no site {site!r}") from None

    def default_state(self) -> "RuleSpecies":
        return RuleSpecies(self,
                           tuple(states[0] for _, states in self.sites))

    def species(self, **assignments: str) -> "RuleSpecies":
        """A concrete species; unmentioned sites take their default."""
        values = []
        for site, states in self.sites:
            state = assignments.pop(site, states[0])
            if state not in states:
                raise ModelError(
                    f"molecule {self.name!r}: site {site!r} has no state "
                    f"{state!r}")
            values.append(state)
        if assignments:
            raise ModelError(
                f"molecule {self.name!r} has no site(s) "
                f"{sorted(assignments)}")
        return RuleSpecies(self, tuple(values))

    def all_species(self) -> list["RuleSpecies"]:
        """Every combinatorial site assignment of this molecule."""
        state_axes = [states for _, states in self.sites]
        return [RuleSpecies(self, combo)
                for combo in itertools.product(*state_axes)]

    def n_states(self) -> int:
        total = 1
        for _, states in self.sites:
            total *= len(states)
        return total


@dataclass(frozen=True)
class RuleSpecies:
    """A molecule type with a full site-state assignment."""

    molecule: MoleculeType
    states: tuple[str, ...]

    def state_of(self, site: str) -> str:
        return self.states[self.molecule.site_names.index(site)]

    def with_states(self, changes: dict[str, str]) -> "RuleSpecies":
        names = self.molecule.site_names
        values = list(self.states)
        for site, state in changes.items():
            if state not in self.molecule.states_of(site):
                raise ModelError(
                    f"molecule {self.molecule.name!r}: site {site!r} has "
                    f"no state {state!r}")
            values[names.index(site)] = state
        return RuleSpecies(self.molecule, tuple(values))

    def matches(self, conditions: dict[str, str]) -> bool:
        return all(self.state_of(site) == state
                   for site, state in conditions.items())

    def name(self) -> str:
        """Flat species identifier used in the expanded RBM."""
        if not self.states:
            return self.molecule.name
        suffix = "_".join(f"{site}{state}"
                          for site, state in zip(self.molecule.site_names,
                                                 self.states))
        return f"{self.molecule.name}_{suffix}"


@dataclass(frozen=True)
class Pattern:
    """A partial site-state condition on one molecule type."""

    molecule: MoleculeType
    conditions: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for site, state in self.conditions.items():
            if state not in self.molecule.states_of(site):
                raise ModelError(
                    f"pattern on {self.molecule.name!r}: site {site!r} "
                    f"has no state {state!r}")

    def matches(self, species: RuleSpecies) -> bool:
        return (species.molecule is self.molecule
                and species.matches(self.conditions))


@dataclass(frozen=True)
class Rule:
    """A state-rewriting rule, optionally catalyzed by a modifier.

    For every species matching ``pattern`` (and, if present, every
    species matching ``modifier``), the rule emits one mass-action
    reaction::

        S            -> S'             rate      (no modifier)
        S + M        -> S' + M         rate      (with modifier M)

    where S' is S with ``changes`` applied.
    """

    name: str
    pattern: Pattern
    changes: dict[str, str]
    rate_constant: float
    modifier: Pattern | None = None

    def __post_init__(self) -> None:
        if not self.changes:
            raise ModelError(f"rule {self.name!r} changes no site")
        if not (self.rate_constant > 0.0):
            raise ModelError(
                f"rule {self.name!r}: rate must be > 0, "
                f"got {self.rate_constant}")
        for site, state in self.changes.items():
            if state not in self.pattern.molecule.states_of(site):
                raise ModelError(
                    f"rule {self.name!r}: site {site!r} has no state "
                    f"{state!r}")


@dataclass
class RuleBasedModel:
    """A rule-based model: molecule types, seed species, rules."""

    name: str
    molecule_types: list[MoleculeType] = field(default_factory=list)
    seeds: list[tuple[RuleSpecies, float]] = field(default_factory=list)
    rules: list[Rule] = field(default_factory=list)

    def add_molecule_type(self, molecule: MoleculeType) -> MoleculeType:
        self.molecule_types.append(molecule)
        return molecule

    def add_seed(self, species: RuleSpecies,
                 concentration: float) -> None:
        self.seeds.append((species, concentration))

    def add_rule(self, rule: Rule) -> Rule:
        self.rules.append(rule)
        return rule

    def expand(self, max_species: int = 100_000) -> ReactionBasedModel:
        return expand(self, max_species)


def expand(rule_model: RuleBasedModel,
           max_species: int = 100_000) -> ReactionBasedModel:
    """Expand a rule-based model to closure into a flat RBM.

    Starts from the seed species and repeatedly applies every rule to
    every known species, adding product species until no new species
    appear (the derived network of the rule semantics). Raises
    :class:`ModelError` if the expansion exceeds ``max_species``.
    """
    if not rule_model.seeds:
        raise ModelError(f"rule model {rule_model.name!r} has no seeds")
    if not rule_model.rules:
        raise ModelError(f"rule model {rule_model.name!r} has no rules")

    known: dict[str, RuleSpecies] = {}
    concentrations: dict[str, float] = {}
    for species, concentration in rule_model.seeds:
        identifier = species.name()
        known[identifier] = species
        concentrations[identifier] = \
            concentrations.get(identifier, 0.0) + concentration

    frontier = list(known.values())
    reactions: list[tuple[str, str, str | None, float, str]] = []
    emitted: set[tuple[str, str, str | None]] = set()
    while frontier:
        current = frontier.pop()
        for rule in rule_model.rules:
            _apply_rule(rule, current, known, frontier, reactions, emitted,
                        max_species)
        # Rules whose modifier matches the new species must also be
        # re-applied to all existing substrates.
        for rule in rule_model.rules:
            if rule.modifier is not None and \
                    rule.modifier.matches(current):
                for substrate in list(known.values()):
                    _emit(rule, substrate, current, known, frontier,
                          reactions, emitted, max_species)

    if not reactions:
        raise ModelError(
            f"rule model {rule_model.name!r} derived no reactions: every "
            "rule application was a no-op on the reachable species")
    flat = ReactionBasedModel(f"{rule_model.name}-expanded")
    for identifier in sorted(known):
        flat.add_species(identifier, concentrations.get(identifier, 0.0))
    for substrate, product, modifier, rate, rule_name in reactions:
        reactants = {substrate: 1}
        products = {product: 1}
        if modifier is not None:
            reactants[modifier] = reactants.get(modifier, 0) + 1
            products[modifier] = products.get(modifier, 0) + 1
        flat.add_reaction(Reaction(reactants, products, rate,
                                   name=rule_name))
    return flat


def _apply_rule(rule, species, known, frontier, reactions, emitted,
                max_species) -> None:
    if not rule.pattern.matches(species):
        return
    if rule.modifier is None:
        _emit(rule, species, None, known, frontier, reactions, emitted,
              max_species)
        return
    for modifier in list(known.values()):
        if rule.modifier.matches(modifier):
            _emit(rule, species, modifier, known, frontier, reactions,
                  emitted, max_species)


def _emit(rule, substrate, modifier, known, frontier, reactions, emitted,
          max_species) -> None:
    if not rule.pattern.matches(substrate):
        return
    product = substrate.with_states(rule.changes)
    substrate_id = substrate.name()
    product_id = product.name()
    if product_id == substrate_id:
        return
    modifier_id = modifier.name() if modifier is not None else None
    key = (substrate_id, product_id, modifier_id)
    if key in emitted:
        return
    emitted.add(key)
    if product_id not in known:
        if len(known) >= max_species:
            raise ModelError(
                f"rule expansion exceeded {max_species} species; "
                "the rule set may be divergent")
        known[product_id] = product
        frontier.append(product)
    reactions.append((substrate_id, product_id, modifier_id,
                      rule.rate_constant, rule.name))
