"""Ready-made rule-based models.

These generators reproduce the *shape* of the rule-derived networks the
paper family simulates: a handful of molecule types and rules that
expand combinatorially into hundreds or thousands of species and
reactions (their autophagy/translation switch: 7 molecule types,
29 rules -> 173 species, 6581 reactions).
"""

from __future__ import annotations

from ..errors import ModelError
from .rulemodel import MoleculeType, Pattern, Rule, RuleBasedModel


def multisite_cascade(n_sites: int = 4, kinase_rate: float = 1.0,
                      phosphatase_rate: float = 0.5,
                      substrate_concentration: float = 1.0,
                      kinase_concentration: float = 0.1,
                      phosphatase_concentration: float = 0.1,
                      ordered: bool = False) -> RuleBasedModel:
    """Multisite phosphorylation under a kinase and a phosphatase.

    One substrate molecule with ``n_sites`` binary phosphosites, one
    kinase and one phosphatase.

    With ``ordered=False`` (default) phosphorylation is *distributive*:
    any bare site can gain a phosphate and any occupied site can lose
    one, so the expansion reaches all 2^n substrate species with
    n * 2^(n-1) reactions per direction — the classic combinatorial
    blow-up of rule-based models (a 2 n-rule description deriving a
    network exponentially larger than itself).

    With ``ordered=True`` the kinase is processive (site i needs site
    i-1 phosphorylated, the phosphatase unwinds from the top), which
    collapses the reachable set to the n+1 "staircase" species — a
    nice illustration that reachability, not the raw state space,
    determines the derived network.
    """
    if n_sites < 1:
        raise ModelError(f"need >= 1 site, got {n_sites}")
    substrate = MoleculeType(
        "S", tuple((f"s{i}", ("u", "p")) for i in range(n_sites)))
    kinase = MoleculeType("K", ())
    phosphatase = MoleculeType("P", ())

    model = RuleBasedModel(f"multisite-{n_sites}")
    model.add_molecule_type(substrate)
    model.add_molecule_type(kinase)
    model.add_molecule_type(phosphatase)
    model.add_seed(substrate.default_state(), substrate_concentration)
    model.add_seed(kinase.default_state(), kinase_concentration)
    model.add_seed(phosphatase.default_state(), phosphatase_concentration)

    kinase_pattern = Pattern(kinase)
    phosphatase_pattern = Pattern(phosphatase)
    for i in range(n_sites):
        conditions = {f"s{i}": "u"}
        if ordered and i > 0:
            conditions[f"s{i - 1}"] = "p"
        model.add_rule(Rule(
            name=f"phos{i}",
            pattern=Pattern(substrate, conditions),
            changes={f"s{i}": "p"},
            rate_constant=kinase_rate,
            modifier=kinase_pattern,
        ))
        back_conditions = {f"s{i}": "p"}
        if ordered and i + 1 < n_sites:
            back_conditions[f"s{i + 1}"] = "u"
        model.add_rule(Rule(
            name=f"dephos{i}",
            pattern=Pattern(substrate, back_conditions),
            changes={f"s{i}": "u"},
            rate_constant=phosphatase_rate,
            modifier=phosphatase_pattern,
        ))
    return model


def two_state_receptor(ligand_rate: float = 2.0,
                       relax_rate: float = 1.0) -> RuleBasedModel:
    """Minimal two-molecule rule model used by the unit tests.

    A receptor with an activity site and a phosphosite whose
    phosphorylation requires the active conformation; a constitutively
    active ligand drives activation.
    """
    receptor = MoleculeType("R", (("act", ("off", "on")),
                                  ("y", ("u", "p"))))
    ligand = MoleculeType("L", ())
    model = RuleBasedModel("receptor")
    model.add_molecule_type(receptor)
    model.add_molecule_type(ligand)
    model.add_seed(receptor.default_state(), 1.0)
    model.add_seed(ligand.default_state(), 0.5)
    model.add_rule(Rule("activate", Pattern(receptor, {"act": "off"}),
                        {"act": "on"}, ligand_rate, Pattern(ligand)))
    model.add_rule(Rule("deactivate", Pattern(receptor, {"act": "on"}),
                        {"act": "off"}, relax_rate))
    model.add_rule(Rule("phosphorylate",
                        Pattern(receptor, {"act": "on", "y": "u"}),
                        {"y": "p"}, ligand_rate))
    model.add_rule(Rule("dephosphorylate", Pattern(receptor, {"y": "p"}),
                        {"y": "u"}, relax_rate))
    return model
