"""Runtime numerical-integrity guards for the batched kernels.

The campaign resilience layer (:mod:`repro.resilience`) catches
simulations that *fail*; this package catches simulations that *finish
wrong* — and launches that would not fit on the device at all. It sits
between the two: below the retry ladder (guard verdicts are just new
failure causes the ladder and the quarantine log handle uniformly) and
above the integrators (which call the in-kernel hooks on every accepted
step).

Three guard families:

* **Invariant monitors** (:class:`InvariantMonitor`) derive the model's
  conservation laws from the left null space of the stoichiometric
  matrix (:func:`repro.model.stoichiometry.conservation_laws`) and flag
  rows whose conserved totals drift beyond a configured tolerance — the
  failure mode where a trajectory converges, looks smooth, and is
  silently wrong.
* **State-validity guards** (:class:`KernelGuard`) run inside the
  batched integrators: negativity detection with optional
  projection-to-nonnegative clamping (conservation-restoring, see
  :func:`project_nonnegative`), non-finite sentinels and
  step-size-collapse classification. Each violation is a typed
  :class:`GuardViolation` collected in a :class:`GuardLog`.
* **The memory governor** (:class:`MemoryGovernor`) estimates a
  launch's device working set from the perf model, enforces a memory
  budget and transparently splits over-budget launches with exponential
  backoff — a would-be hard OOM failure degrades into a slower but
  complete campaign.

Everything is opt-in: the engine runs guard-free unless given a
:class:`GuardConfig` / :class:`MemoryGovernor`, and
``GuardConfig(enabled=False)`` turns a configured guard into a no-op.

This package deliberately imports nothing from :mod:`repro.gpu` at
module level (the engine imports *us*); the governor pulls the
footprint model in lazily at plan time.
"""

from __future__ import annotations

from .config import GuardConfig
from .governor import LaunchPlan, MemoryEvent, MemoryGovernor
from .invariants import InvariantMonitor, project_nonnegative
from .state import KernelGuard
from .violations import (GUARD_KINDS, INVARIANT_DRIFT, NEGATIVE_STATE,
                         NON_FINITE, STEP_COLLAPSE, GuardLog, GuardViolation)

__all__ = [
    "GuardConfig",
    "LaunchPlan", "MemoryEvent", "MemoryGovernor",
    "InvariantMonitor", "project_nonnegative",
    "KernelGuard",
    "GUARD_KINDS", "INVARIANT_DRIFT", "NEGATIVE_STATE", "NON_FINITE",
    "STEP_COLLAPSE", "GuardLog", "GuardViolation",
]
