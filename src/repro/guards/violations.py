"""Typed records of numerical-integrity violations.

A :class:`GuardViolation` names *what* went numerically wrong with one
simulation row (the kind), *where* (global row id and simulation time)
and *how badly* (a kind-specific magnitude). Violations are collected
in a :class:`GuardLog` on the engine report; the row itself is marked
with the ``guard_violation`` status so the retry ladder, the quarantine
log and the PSA/SA/PE masking treat it exactly like any other solver
failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import GuardError

#: A conserved total drifted beyond tolerance (magnitude: worst drift
#: as a multiple of the allowed tolerance, > 1 by construction).
INVARIANT_DRIFT = "invariant-drift"
#: A state component went materially negative (magnitude: most negative
#: component value).
NEGATIVE_STATE = "negative-state"
#: A NaN/inf state or step size (magnitude: NaN).
NON_FINITE = "non-finite"
#: The adaptive step size collapsed below resolvable width (magnitude:
#: the collapsed step size).
STEP_COLLAPSE = "step-collapse"

GUARD_KINDS = (INVARIANT_DRIFT, NEGATIVE_STATE, NON_FINITE, STEP_COLLAPSE)


@dataclass(frozen=True)
class GuardViolation:
    """One integrity violation of one simulation row.

    ``row`` is the row's *global* identity (its index in the full
    campaign batch), so violations line up with
    :class:`~repro.resilience.QuarantineLog` rows and analysis masks.
    """

    kind: str
    row: int
    time: float
    magnitude: float
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in GUARD_KINDS:
            raise GuardError(f"unknown guard violation kind {self.kind!r}; "
                             f"expected one of {GUARD_KINDS}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "row": int(self.row),
                "time": float(self.time),
                "magnitude": float(self.magnitude), "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict) -> "GuardViolation":
        return cls(str(data["kind"]), int(data["row"]),
                   float(data["time"]), float(data["magnitude"]),
                   str(data.get("detail", "")))


@dataclass
class GuardLog:
    """Collected guard violations of one engine run or campaign.

    ``n_clamped_steps`` counts the benign repairs — accepted steps on
    which noise-band negative components were projected back to the
    non-negative orthant. Clamps are bookkeeping, not violations: the
    row continues integrating.
    """

    violations: list[GuardViolation] = field(default_factory=list)
    n_clamped_steps: int = 0

    def add(self, violation: GuardViolation) -> None:
        self.violations.append(violation)

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self):
        return iter(self.violations)

    def __bool__(self) -> bool:
        return bool(self.violations)

    def rows(self) -> np.ndarray:
        """Distinct violated global row ids, sorted, shape (V,)."""
        return np.array(sorted({v.row for v in self.violations}),
                        dtype=np.int64)

    def by_kind(self, kind: str) -> list[GuardViolation]:
        return [v for v in self.violations if v.kind == kind]

    def counts(self) -> dict[str, int]:
        """Violation counts per kind (only kinds that occurred)."""
        result: dict[str, int] = {}
        for violation in self.violations:
            result[violation.kind] = result.get(violation.kind, 0) + 1
        return result

    def merge(self, other: "GuardLog", row_offset: int = 0) -> None:
        """Absorb another log, shifting its rows into this index space."""
        for violation in other.violations:
            self.violations.append(GuardViolation(
                violation.kind, violation.row + row_offset, violation.time,
                violation.magnitude, violation.detail))
        self.n_clamped_steps += other.n_clamped_steps

    def to_dicts(self) -> list[dict]:
        return [violation.to_dict() for violation in self.violations]

    @classmethod
    def from_dicts(cls, data: list[dict]) -> "GuardLog":
        return cls([GuardViolation.from_dict(entry) for entry in data])

    def summary(self) -> str:
        """One line per kind plus the clamp counter."""
        if not self.violations and not self.n_clamped_steps:
            return "guards: clean"
        lines = [f"guards: {len(self.violations)} violation(s) on "
                 f"{self.rows().size} row(s), "
                 f"{self.n_clamped_steps} clamped step(s)"]
        for kind, count in sorted(self.counts().items()):
            rows = sorted({v.row for v in self.violations
                           if v.kind == kind})
            lines.append(f"  {kind}: {count} on rows {rows}")
        return "\n".join(lines)
