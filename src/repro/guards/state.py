"""In-kernel state-validity guard shared by the batched integrators.

A :class:`KernelGuard` travels with the
:class:`~repro.gpu.batched_ode.BatchedODEProblem` (like the fault plan,
keyed by *global* row ids, so it follows rows through router subsets,
launch chunks and retry rungs) and is invoked by all three batched
integrators:

* :meth:`KernelGuard.after_accept` on every accepted step — detects
  non-finite and negative state components, clamps noise-band
  negativity back to the non-negative orthant (conservation-restoring)
  and deactivates materially violating rows;
* :meth:`KernelGuard.on_step_break` when a row's adaptive step
  underflows — classifies the break as a NaN poisoning or a genuine
  step-size collapse.

Both hooks mark violating rows with the engine-supplied
``violation_status`` code (``guard_violation``), which the retry ladder
and the quarantine/masking machinery treat like any other failure.
The happy path costs two vectorized reductions over the accepted
sub-batch, which is why the guard stays within the benchmark's <5%
overhead budget.
"""

from __future__ import annotations

import math

import numpy as np

from .config import GuardConfig
from .invariants import project_nonnegative
from .violations import (NEGATIVE_STATE, NON_FINITE, STEP_COLLAPSE, GuardLog,
                         GuardViolation)


class KernelGuard:
    """Runtime state-validity checks over a batched integration.

    Parameters
    ----------
    config:
        Which checks run and their tolerances.
    log:
        Violation sink, shared with the engine report.
    violation_status:
        Integer status code to stamp on violating rows (the engine
        passes :data:`repro.gpu.batch_result.GUARD`; injected here to
        keep this package free of gpu imports).
    initial_states:
        Full-campaign initial states, shape (B_total, N); rows are
        addressed by global id. Supplies the per-row negativity band
        scale and the invariant reference totals for clamping.
    laws:
        Orthonormal conservation-law basis, shape (L, N), or ``None``
        to clamp without the conservation-restoring projection.
    """

    def __init__(self, config: GuardConfig, log: GuardLog,
                 violation_status: int, initial_states: np.ndarray,
                 laws: np.ndarray | None = None) -> None:
        self.config = config
        self.log = log
        self.violation_status = int(violation_status)
        initial_states = np.atleast_2d(
            np.asarray(initial_states, dtype=np.float64))
        self.negativity_bands = config.negativity_band * (
            1.0 + np.max(np.abs(initial_states), axis=1))
        self.laws = None
        self.reference_totals = None
        if laws is not None and laws.shape[0] > 0:
            self.laws = np.asarray(laws, dtype=np.float64)
            self.reference_totals = initial_states @ self.laws.T
        # Flattened flags for the per-accepted-step hot path.
        self._nonfinite_on = config.enabled and config.check_nonfinite
        self._negativity_on = config.enabled and config.check_negativity

    @property
    def active(self) -> bool:
        return self.config.enabled

    # ------------------------------------------------------------------

    def after_accept(self, states: np.ndarray, local_rows: np.ndarray,
                     global_rows: np.ndarray, times: np.ndarray,
                     status: np.ndarray,
                     gathered: np.ndarray | None = None) -> None:
        """Validate (and possibly repair) freshly accepted states.

        ``states`` is the integrator's full local state array; the rows
        at ``local_rows`` were just accepted at simulation times
        ``times``. An integrator that already materialized
        ``states[local_rows]`` can pass it as ``gathered`` to spare the
        guard the copy. Clamps are written back in place so the
        integrator continues from the repaired state.
        """
        if not self.active:
            return
        config = self.config
        sub = gathered if gathered is not None else states[local_rows]

        # Hot-path exit: one finiteness fold plus one global min (a
        # NaN min compares False on both sides, so a poisoned row
        # always falls through to the detailed pass below).
        if ((not self._nonfinite_on or math.isfinite(sub.sum()))
                and (not self._negativity_on or not sub.min() < 0.0)):
            return

        if config.check_nonfinite and not np.isfinite(np.sum(sub)):
            bad = ~np.all(np.isfinite(sub), axis=1)
            for local in np.flatnonzero(bad):
                self.log.add(GuardViolation(
                    NON_FINITE, int(global_rows[local]),
                    float(times[local]), float("nan"),
                    "non-finite state component on an accepted step"))
            status[local_rows[bad]] = self.violation_status
            keep = ~bad
            local_rows = local_rows[keep]
            global_rows = global_rows[keep]
            times = times[keep]
            sub = sub[keep]
            if local_rows.size == 0:
                return

        if not config.check_negativity:
            return
        minima = np.min(sub, axis=1)
        if np.all(minima >= 0.0):      # e.g. a sum that overflowed
            return
        bands = self.negativity_bands[global_rows]
        material = minima < -bands
        for local in np.flatnonzero(material):
            self.log.add(GuardViolation(
                NEGATIVE_STATE, int(global_rows[local]),
                float(times[local]), float(minima[local]),
                f"state component {minima[local]:.3e} below the "
                f"clampable band -{bands[local]:.3e}"))
        status[local_rows[material]] = self.violation_status

        clampable = (minima < 0.0) & ~material
        if not config.clamp_negatives or not np.any(clampable):
            return
        rows = local_rows[clampable]
        reference = (None if self.reference_totals is None
                     else self.reference_totals[global_rows[clampable]])
        states[rows] = project_nonnegative(states[rows], self.laws,
                                           reference)
        self.log.n_clamped_steps += int(rows.size)

    # ------------------------------------------------------------------

    def on_step_break(self, local_rows: np.ndarray, global_rows: np.ndarray,
                      times: np.ndarray, step_sizes: np.ndarray,
                      status: np.ndarray) -> None:
        """Classify step-size breakdowns the integrator detected.

        The integrator has already marked the rows BROKEN; the guard
        re-stamps the rows it claims (per the config) with the
        violation status and records the typed cause — a NaN-poisoned
        step (``non-finite``) or a genuine collapse below resolvable
        width (``step-collapse``).
        """
        if not self.active:
            return
        nonfinite = ~np.isfinite(step_sizes)
        for local in range(local_rows.size):
            if nonfinite[local]:
                if not self.config.check_nonfinite:
                    continue
                violation = GuardViolation(
                    NON_FINITE, int(global_rows[local]),
                    float(times[local]), float("nan"),
                    "step size poisoned by a non-finite right-hand side")
            else:
                if not self.config.check_step_collapse:
                    continue
                violation = GuardViolation(
                    STEP_COLLAPSE, int(global_rows[local]),
                    float(times[local]), float(step_sizes[local]),
                    f"adaptive step collapsed to {step_sizes[local]:.3e}")
            self.log.add(violation)
            status[local_rows[local]] = self.violation_status
