"""Memory-pressure governor for batched kernel launches.

The engine's launch chunking caps *batch width*; it knows nothing about
the *working set* a launch allocates on the device (state arrays,
stage/difference storage, saved trajectories). On a small device a
launch that fits the batch cap can still exceed memory and die as a
hard OOM. The :class:`MemoryGovernor` closes that gap: before each
launch it estimates the working set from the perf model
(:func:`repro.gpu.perfmodel.memory_footprint_doubles`), compares it to
a budget derived from the device, and — when over budget — splits the
launch into contiguous row segments by exponential backoff (halving
until the segment fits). Segments run independently and are re-merged
via ``BatchSolveResult.merge_rows``; because the batched integrators
advance every row with its own adaptive controller, a split launch is
bit-identical to the unsplit one. Each degradation is recorded as a
:class:`MemoryEvent` on the engine report.

This module imports the footprint model lazily inside
:meth:`MemoryGovernor.plan` to keep :mod:`repro.guards` free of
module-level gpu imports (the engine imports this package).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import GuardError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gpu.device import VirtualDevice

BYTES_PER_DOUBLE = 8


@dataclass(frozen=True)
class LaunchPlan:
    """How one launch is executed under the memory budget.

    ``segments`` are half-open ``(start, stop)`` row ranges covering the
    launch contiguously; a within-budget launch has a single segment.
    """

    segments: tuple[tuple[int, int], ...]
    n_splits: int
    estimated_doubles: int
    budget_doubles: int
    injected: bool = False

    @property
    def split(self) -> bool:
        return self.n_splits > 0

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def segment_rows(self) -> int:
        """Widest segment of the plan."""
        return max(stop - start for start, stop in self.segments)


@dataclass(frozen=True)
class MemoryEvent:
    """Record of one governed (degraded) launch, kept on the report."""

    launch_index: int
    requested_rows: int
    granted_rows: int
    n_splits: int
    estimated_doubles: int
    budget_doubles: int
    injected: bool = False

    def describe(self) -> str:
        source = "injected OOM" if self.injected else "memory budget"
        return (f"launch {self.launch_index}: {source} split "
                f"{self.requested_rows} rows into segments of "
                f"<= {self.granted_rows} ({self.n_splits} halvings; "
                f"estimated {self.estimated_doubles} doubles vs budget "
                f"{self.budget_doubles})")


@dataclass(frozen=True)
class MemoryGovernor:
    """Device-memory budget enforcement for kernel launches.

    Attributes
    ----------
    budget_gb:
        Absolute budget in GiB. ``None`` derives the budget from the
        device as ``budget_fraction * device.memory_gb``.
    budget_fraction:
        Fraction of device memory usable by one launch when
        ``budget_gb`` is not set. Below 1.0 by default: the driver,
        the kernel image and the allocator's fragmentation overhead
        occupy real memory the footprint model does not see.
    max_splits:
        Backoff limit. Exceeding it (or reaching single-row segments
        that still do not fit) raises :class:`~repro.errors.GuardError`
        — the problem is too large for the device, and silently
        thrashing would help nobody.
    """

    budget_gb: float | None = None
    budget_fraction: float = 0.9
    max_splits: int = 10

    def __post_init__(self) -> None:
        if self.budget_gb is not None and not self.budget_gb > 0.0:
            raise GuardError(f"budget_gb must be > 0, got {self.budget_gb}")
        if not 0.0 < self.budget_fraction <= 1.0:
            raise GuardError(f"budget_fraction must be in (0, 1], got "
                             f"{self.budget_fraction}")
        if self.max_splits < 1:
            raise GuardError(f"max_splits must be >= 1, got "
                             f"{self.max_splits}")

    def budget_doubles(self, device: "VirtualDevice") -> int:
        """The budget expressed in float64 slots on ``device``."""
        gigabytes = (self.budget_gb if self.budget_gb is not None
                     else self.budget_fraction * device.memory_gb)
        return int(gigabytes * 1024**3) // BYTES_PER_DOUBLE

    def plan(self, batch_size: int, n_species: int, n_reactions: int,
             n_save_points: int, method: str, device: "VirtualDevice",
             forced_fit_rows: int | None = None) -> LaunchPlan:
        """Plan one launch of ``batch_size`` rows under the budget.

        ``forced_fit_rows`` is the fault-injection hook: when set, any
        segment wider than it is treated as over budget regardless of
        the estimate, simulating device-memory pressure the footprint
        model did not predict.
        """
        from ..gpu.perfmodel import memory_footprint_doubles

        budget = self.budget_doubles(device)

        def fits(rows: int) -> bool:
            if forced_fit_rows is not None and rows > forced_fit_rows:
                return False
            footprint = memory_footprint_doubles(
                rows, n_species, n_reactions, n_save_points, method)
            return footprint <= budget

        estimated = memory_footprint_doubles(
            batch_size, n_species, n_reactions, n_save_points, method)
        segment = batch_size
        n_splits = 0
        while not fits(segment):
            if segment == 1:
                raise GuardError(
                    f"a single {method} simulation ({n_species} species, "
                    f"{n_save_points} save points) needs "
                    f"{memory_footprint_doubles(1, n_species, n_reactions, n_save_points, method)} "
                    f"doubles but the budget is {budget}; the problem does "
                    f"not fit the device at any split")
            if n_splits >= self.max_splits:
                raise GuardError(
                    f"memory backoff exhausted after {n_splits} halvings "
                    f"(segment width {segment} still over the "
                    f"{budget}-double budget); raise budget_gb / "
                    f"max_splits or use a smaller device batch")
            segment = (segment + 1) // 2
            n_splits += 1
        segments = tuple((start, min(start + segment, batch_size))
                         for start in range(0, batch_size, segment))
        return LaunchPlan(segments=segments, n_splits=n_splits,
                          estimated_doubles=int(estimated),
                          budget_doubles=budget,
                          injected=forced_fit_rows is not None)
