"""Configuration of the numerical-integrity guards."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import GuardError


@dataclass(frozen=True)
class GuardConfig:
    """Knobs of the runtime integrity guards.

    Attributes
    ----------
    enabled:
        Master switch. ``False`` turns every check into a no-op so a
        deployment can carry a tuned config and flip guards off for a
        raw-throughput run without losing the tuning.
    check_invariants:
        Monitor the model's conservation laws (left null space of the
        stoichiometric matrix) on every finished trajectory and flag
        rows whose conserved totals drift out of tolerance.
    invariant_rtol, invariant_atol:
        Drift tolerance, in the solver-tolerance convention: a row
        violates when ``|w.x(t) - w.x(0)| > atol + rtol * |w.x(0)|``
        for any law w and save time t. The defaults leave two decades
        of headroom over the default integration tolerances, so a
        healthy solve never trips them.
    check_negativity:
        Detect state components below zero on accepted steps.
    negativity_band:
        Relative width of the *clampable* band: a component above
        ``-band * (1 + max|x0|)`` is considered floating-point noise
        and is eligible for clamping; anything below it is a material
        violation.
    clamp_negatives:
        Project noise-band negative states back to the non-negative
        orthant (with conservation restored when the model has
        invariants) instead of only reporting them.
    check_nonfinite:
        Flag NaN/inf accepted states and NaN-poisoned step sizes.
    check_step_collapse:
        Classify step-size underflow (the symptom of an unintegrable
        row) as a typed guard violation instead of a bare failure.
    """

    enabled: bool = True
    check_invariants: bool = True
    invariant_rtol: float = 1e-4
    invariant_atol: float = 1e-7
    check_negativity: bool = True
    negativity_band: float = 1e-7
    clamp_negatives: bool = True
    check_nonfinite: bool = True
    check_step_collapse: bool = True

    def __post_init__(self) -> None:
        if not (self.invariant_rtol > 0.0 and self.invariant_atol >= 0.0):
            raise GuardError(
                f"invalid invariant tolerances rtol={self.invariant_rtol}, "
                f"atol={self.invariant_atol}")
        if not (self.negativity_band >= 0.0):
            raise GuardError(
                f"negativity_band must be >= 0, got {self.negativity_band}")

    def replace(self, **changes) -> "GuardConfig":
        """Copy with selected fields changed."""
        return replace(self, **changes)

    @classmethod
    def disabled(cls) -> "GuardConfig":
        """A config whose checks are all off (useful as a baseline)."""
        return cls(enabled=False)


DEFAULT_GUARDS = GuardConfig()
