"""Particle Swarm Optimization with batch fitness evaluation.

The optimizer is written around *batched* objectives: one call
evaluates the whole swarm, which is exactly what makes the accelerated
simulator pay off in parameter estimation — every PSO iteration maps to
one batched simulation launch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import AnalysisError

Objective = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class PSOOptions:
    """Classic global-best PSO settings (Clerc constriction defaults)."""

    swarm_size: int = 32
    n_iterations: int = 50
    inertia: float = 0.7298
    cognitive: float = 1.49618
    social: float = 1.49618
    velocity_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.swarm_size < 2:
            raise AnalysisError(f"swarm needs >= 2 particles, "
                                f"got {self.swarm_size}")
        if self.n_iterations < 1:
            raise AnalysisError("n_iterations must be >= 1")
        if not (0.0 < self.velocity_fraction <= 1.0):
            raise AnalysisError("velocity_fraction must be in (0, 1]")


@dataclass
class OptimizationResult:
    """Outcome of one optimizer run."""

    best_position: np.ndarray
    best_fitness: float
    history: np.ndarray               # best fitness per iteration
    n_evaluations: int
    n_iterations: int
    positions: np.ndarray = field(default=None)  # final swarm (S, D)

    @property
    def converged_history(self) -> np.ndarray:
        """Monotone best-so-far curve."""
        return np.minimum.accumulate(self.history)


def _validate_bounds(bounds: np.ndarray) -> np.ndarray:
    bounds = np.asarray(bounds, dtype=np.float64)
    if bounds.ndim != 2 or bounds.shape[1] != 2:
        raise AnalysisError(f"bounds must have shape (D, 2), "
                            f"got {bounds.shape}")
    if np.any(bounds[:, 1] <= bounds[:, 0]):
        raise AnalysisError("every bound must satisfy high > low")
    return bounds


def _reflect(positions: np.ndarray, velocities: np.ndarray,
             bounds: np.ndarray) -> None:
    """Reflect out-of-bounds particles and damp their velocity."""
    low, high = bounds[:, 0], bounds[:, 1]
    below = positions < low
    above = positions > high
    positions[below] = (2 * low[None, :].repeat(positions.shape[0], 0))[below] \
        - positions[below]
    positions[above] = (2 * high[None, :].repeat(positions.shape[0], 0))[above] \
        - positions[above]
    np.clip(positions, low, high, out=positions)
    velocities[below | above] *= -0.5


class ParticleSwarmOptimizer:
    """Global-best PSO minimizing a batched objective."""

    def __init__(self, options: PSOOptions = PSOOptions()) -> None:
        self.options = options

    def minimize(self, objective: Objective, bounds: np.ndarray,
                 initial_positions: np.ndarray | None = None,
                 callback: Callable[[int, float], None] | None = None
                 ) -> OptimizationResult:
        """Minimize ``objective`` over box ``bounds`` of shape (D, 2)."""
        options = self.options
        bounds = _validate_bounds(bounds)
        dimension = bounds.shape[0]
        rng = np.random.default_rng(options.seed)
        span = bounds[:, 1] - bounds[:, 0]

        if initial_positions is None:
            positions = bounds[:, 0] + span * rng.random(
                (options.swarm_size, dimension))
        else:
            positions = np.array(initial_positions, dtype=np.float64)
            if positions.shape != (options.swarm_size, dimension):
                raise AnalysisError(
                    f"initial positions shape {positions.shape} does not "
                    f"match ({options.swarm_size}, {dimension})")
        velocity_cap = options.velocity_fraction * span
        velocities = velocity_cap * (2 * rng.random(positions.shape) - 1)

        fitness = np.asarray(objective(positions), dtype=np.float64)
        n_evaluations = positions.shape[0]
        personal_best = positions.copy()
        personal_fitness = fitness.copy()
        best_index = int(np.argmin(personal_fitness))
        history = np.empty(options.n_iterations)

        for iteration in range(options.n_iterations):
            r_cognitive = rng.random(positions.shape)
            r_social = rng.random(positions.shape)
            velocities = (
                self._inertia(iteration)[:, None] * velocities
                + self._cognitive(iteration)[:, None] * r_cognitive
                * (personal_best - positions)
                + self._social(iteration)[:, None] * r_social
                * (personal_best[best_index] - positions))
            np.clip(velocities, -velocity_cap, velocity_cap, out=velocities)
            positions = positions + velocities
            _reflect(positions, velocities, bounds)

            fitness = np.asarray(objective(positions), dtype=np.float64)
            n_evaluations += positions.shape[0]
            improved = fitness < personal_fitness
            personal_best[improved] = positions[improved]
            personal_fitness[improved] = fitness[improved]
            best_index = int(np.argmin(personal_fitness))
            history[iteration] = personal_fitness[best_index]
            self._observe(fitness, positions, personal_best[best_index],
                          bounds)
            if callback is not None:
                callback(iteration, float(personal_fitness[best_index]))

        return OptimizationResult(personal_best[best_index].copy(),
                                  float(personal_fitness[best_index]),
                                  history, n_evaluations,
                                  options.n_iterations, positions)

    # Hooks the fuzzy self-tuning subclass overrides -------------------

    def _inertia(self, iteration: int) -> np.ndarray:
        del iteration
        return np.full(self.options.swarm_size, self.options.inertia)

    def _cognitive(self, iteration: int) -> np.ndarray:
        del iteration
        return np.full(self.options.swarm_size, self.options.cognitive)

    def _social(self, iteration: int) -> np.ndarray:
        del iteration
        return np.full(self.options.swarm_size, self.options.social)

    def _observe(self, fitness: np.ndarray, positions: np.ndarray,
                 global_best: np.ndarray, bounds: np.ndarray) -> None:
        """Per-iteration observation hook (no-op for plain PSO)."""
