"""Optimization substrate: PSO and Fuzzy Self-Tuning PSO."""

from .fstpso import (COGNITIVE_RANGE, INERTIA_RANGE, SOCIAL_RANGE,
                     FuzzySelfTuningPSO)
from .fuzzy import FuzzyVariable, SugenoRule, SugenoSystem, TriangularSet
from .pso import (Objective, OptimizationResult, ParticleSwarmOptimizer,
                  PSOOptions)

__all__ = [
    "COGNITIVE_RANGE", "INERTIA_RANGE", "SOCIAL_RANGE", "FuzzySelfTuningPSO",
    "FuzzyVariable", "SugenoRule", "SugenoSystem", "TriangularSet",
    "Objective", "OptimizationResult", "ParticleSwarmOptimizer",
    "PSOOptions",
]
