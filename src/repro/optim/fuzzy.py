"""Minimal zero-order Sugeno fuzzy inference, vectorized.

Just enough fuzzy machinery for the Fuzzy Self-Tuning PSO: triangular
membership functions over scalar inputs, rules whose consequents are
crisp singletons, and weighted-average defuzzification. All evaluation
is vectorized over a population axis so one inference call tunes every
particle of a swarm at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class TriangularSet:
    """Triangular membership (left foot, peak, right foot).

    Feet at -inf/+inf produce open shoulders (trapezoid edges).
    """

    name: str
    left: float
    peak: float
    right: float

    def membership(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        result = np.zeros_like(values)
        if np.isfinite(self.left):
            rising = (values > self.left) & (values <= self.peak)
            width = max(self.peak - self.left, 1e-300)
            result[rising] = (values[rising] - self.left) / width
        else:
            result[values <= self.peak] = 1.0
        if np.isfinite(self.right):
            falling = (values > self.peak) & (values < self.right)
            width = max(self.right - self.peak, 1e-300)
            result[falling] = (self.right - values[falling]) / width
        else:
            result[values > self.peak] = 1.0
        result[values == self.peak] = 1.0
        return result


@dataclass(frozen=True)
class FuzzyVariable:
    """A named input with its linguistic sets."""

    name: str
    sets: tuple[TriangularSet, ...]

    def set_named(self, set_name: str) -> TriangularSet:
        for candidate in self.sets:
            if candidate.name == set_name:
                return candidate
        raise AnalysisError(
            f"variable {self.name!r} has no set {set_name!r}")


@dataclass(frozen=True)
class SugenoRule:
    """IF <var is set> AND ... THEN <output = value> (singleton)."""

    antecedents: tuple[tuple[str, str], ...]
    output: str
    value: float


class SugenoSystem:
    """Zero-order Sugeno system with min-AND and weighted-average
    defuzzification."""

    def __init__(self, variables: list[FuzzyVariable],
                 rules: list[SugenoRule]) -> None:
        self._variables = {v.name: v for v in variables}
        if len(self._variables) != len(variables):
            raise AnalysisError("duplicate fuzzy variable names")
        self._rules = rules
        outputs = {rule.output for rule in rules}
        self.output_names = sorted(outputs)
        for rule in rules:
            for var_name, set_name in rule.antecedents:
                self._variables[var_name].set_named(set_name)  # validate

    def evaluate(self, inputs: dict[str, np.ndarray]
                 ) -> dict[str, np.ndarray]:
        """Infer all outputs for a population of input values.

        Every input array has shape (P,); every output array too.
        """
        sizes = {np.asarray(v).shape for v in inputs.values()}
        if len(sizes) != 1:
            raise AnalysisError("all fuzzy inputs must share one shape")
        (shape,) = sizes
        numerators = {name: np.zeros(shape) for name in self.output_names}
        denominators = {name: np.zeros(shape) for name in self.output_names}
        for rule in self._rules:
            strength = np.ones(shape)
            for var_name, set_name in rule.antecedents:
                if var_name not in inputs:
                    raise AnalysisError(f"missing fuzzy input {var_name!r}")
                membership = self._variables[var_name].set_named(
                    set_name).membership(inputs[var_name])
                strength = np.minimum(strength, membership)
            numerators[rule.output] += strength * rule.value
            denominators[rule.output] += strength
        outputs = {}
        for name in self.output_names:
            denom = denominators[name]
            outputs[name] = np.where(denom > 1e-12,
                                     numerators[name] / np.maximum(denom,
                                                                   1e-12),
                                     np.nan)
        return outputs
