"""Fuzzy Self-Tuning PSO (FST-PSO style).

The settings-free PSO variant the paper family couples with the
accelerated simulator for parameter estimation: every particle gets its
own inertia, cognitive and social factors each iteration, inferred by a
Sugeno fuzzy rule base from two normalized observables:

* ``improvement``: how much the particle's fitness improved since the
  previous iteration (positive = better), normalized to [-1, 1];
* ``distance``: the particle's distance from the global best,
  normalized by the search-box diagonal to [0, 1].

The rule base follows the published design intent — particles that
keep improving explore (higher inertia, higher cognitive trust),
particles that got worse and sit far from the best are pulled socially,
particles near the best refine locally with small steps.
"""

from __future__ import annotations

import numpy as np

from .fuzzy import FuzzyVariable, SugenoRule, SugenoSystem, TriangularSet
from .pso import ParticleSwarmOptimizer, PSOOptions

INERTIA_RANGE = (0.3, 1.2)
COGNITIVE_RANGE = (0.1, 3.0)
SOCIAL_RANGE = (1.0, 3.0)


def _build_rule_base() -> SugenoSystem:
    improvement = FuzzyVariable("improvement", (
        TriangularSet("worse", -np.inf, -1.0, 0.0),
        TriangularSet("same", -1.0, 0.0, 1.0),
        TriangularSet("better", 0.0, 1.0, np.inf),
    ))
    distance = FuzzyVariable("distance", (
        TriangularSet("near", -np.inf, 0.0, 0.5),
        TriangularSet("far", 0.0, 0.5, np.inf),
    ))
    rules = [
        # Inertia: keep momentum while improving, brake when worsening
        # or already near the best.
        SugenoRule((("improvement", "better"),), "inertia", 1.0),
        SugenoRule((("improvement", "same"),), "inertia", 0.6),
        SugenoRule((("improvement", "worse"),), "inertia", 0.35),
        SugenoRule((("distance", "near"),), "inertia", 0.4),
        SugenoRule((("distance", "far"),), "inertia", 0.9),
        # Cognitive factor: trust the own trail while it pays off.
        SugenoRule((("improvement", "better"),), "cognitive", 2.4),
        SugenoRule((("improvement", "same"),), "cognitive", 1.2),
        SugenoRule((("improvement", "worse"),), "cognitive", 0.3),
        # Social factor: follow the swarm when lost or far away.
        SugenoRule((("improvement", "worse"),), "social", 2.8),
        SugenoRule((("improvement", "same"),), "social", 2.0),
        SugenoRule((("improvement", "better"),), "social", 1.2),
        SugenoRule((("distance", "far"),), "social", 2.6),
        SugenoRule((("distance", "near"),), "social", 1.4),
    ]
    return SugenoSystem([improvement, distance], rules)


class FuzzySelfTuningPSO(ParticleSwarmOptimizer):
    """PSO whose per-particle coefficients are fuzzy-inferred."""

    def __init__(self, options: PSOOptions = PSOOptions()) -> None:
        super().__init__(options)
        self._system = _build_rule_base()
        self._previous_fitness: np.ndarray | None = None
        self._inertia_values = np.full(options.swarm_size, options.inertia)
        self._cognitive_values = np.full(options.swarm_size,
                                         options.cognitive)
        self._social_values = np.full(options.swarm_size, options.social)

    # ParticleSwarmOptimizer hooks -------------------------------------

    def _inertia(self, iteration: int) -> np.ndarray:
        del iteration
        return self._inertia_values

    def _cognitive(self, iteration: int) -> np.ndarray:
        del iteration
        return self._cognitive_values

    def _social(self, iteration: int) -> np.ndarray:
        del iteration
        return self._social_values

    def _observe(self, fitness: np.ndarray, positions: np.ndarray,
                 global_best: np.ndarray, bounds: np.ndarray) -> None:
        """Update per-particle coefficients from the latest evaluation."""
        finite = np.isfinite(fitness)
        if self._previous_fitness is None:
            improvement = np.zeros_like(fitness)
        else:
            previous = self._previous_fitness
            delta = np.where(finite & np.isfinite(previous),
                             previous - fitness, -1.0)
            scale = np.max(np.abs(delta[np.isfinite(delta)]), initial=0.0)
            improvement = delta / scale if scale > 0 else np.zeros_like(delta)
        diagonal = float(np.linalg.norm(bounds[:, 1] - bounds[:, 0]))
        distance = np.linalg.norm(positions - global_best[None, :],
                                  axis=1) / max(diagonal, 1e-300)
        outputs = self._system.evaluate({
            "improvement": np.clip(improvement, -1.0, 1.0),
            "distance": np.clip(distance, 0.0, 1.0),
        })
        self._inertia_values = _rescale(outputs["inertia"], INERTIA_RANGE,
                                        (0.35, 1.0))
        self._cognitive_values = _rescale(outputs["cognitive"],
                                          COGNITIVE_RANGE, (0.3, 2.4))
        self._social_values = _rescale(outputs["social"], SOCIAL_RANGE,
                                       (1.2, 2.8))
        self._previous_fitness = fitness.copy()


def _rescale(values: np.ndarray, target: tuple[float, float],
             source: tuple[float, float]) -> np.ndarray:
    """Affinely map the rule-base output span onto the published range,
    clamping NaNs (no rule fired) to the range midpoint."""
    src_low, src_high = source
    dst_low, dst_high = target
    unit = (values - src_low) / max(src_high - src_low, 1e-300)
    mapped = dst_low + np.clip(unit, 0.0, 1.0) * (dst_high - dst_low)
    midpoint = 0.5 * (dst_low + dst_high)
    return np.where(np.isfinite(mapped), mapped, midpoint)
