"""Structured records of simulations that exhausted the retry ladder.

One diverging parameter point must not poison a million-point campaign:
rows the engine cannot finish after every retry rung are captured as
:class:`FailureRecord` objects — the parameter row itself, the status
of every attempt and the per-attempt solver/options/step counters — and
collected in a :class:`QuarantineLog` attached to the engine report.
Downstream analyses mask quarantined rows out of their estimators; the
log preserves everything needed to reproduce and triage the failing
region offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np


@dataclass(frozen=True)
class RetryAttempt:
    """One integration attempt of one simulation row.

    ``stage`` is ``"first-pass"`` for the router/engine's initial
    execution and ``"retry-<k>"`` for ladder rungs. ``status`` is the
    human-readable status name (``success``, ``max_steps``, ``failed``,
    ``stiff_detected``).
    """

    stage: str
    method: str
    status: str
    n_steps: int
    rtol: float
    atol: float
    max_steps: int

    def to_dict(self) -> dict:
        return {"stage": self.stage, "method": self.method,
                "status": self.status, "n_steps": int(self.n_steps),
                "rtol": float(self.rtol), "atol": float(self.atol),
                "max_steps": int(self.max_steps)}

    @classmethod
    def from_dict(cls, data: dict) -> "RetryAttempt":
        return cls(str(data["stage"]), str(data["method"]),
                   str(data["status"]), int(data["n_steps"]),
                   float(data["rtol"]), float(data["atol"]),
                   int(data["max_steps"]))


@dataclass
class FailureRecord:
    """One quarantined simulation with its full retry history."""

    row: int
    rate_constants: np.ndarray
    initial_state: np.ndarray
    attempts: list[RetryAttempt] = field(default_factory=list)

    @property
    def final_status(self) -> str:
        return self.attempts[-1].status if self.attempts else "unknown"

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    def status_history(self) -> list[str]:
        return [attempt.status for attempt in self.attempts]

    def to_dict(self) -> dict:
        return {"row": int(self.row),
                "rate_constants": [float(v) for v in self.rate_constants],
                "initial_state": [float(v) for v in self.initial_state],
                "attempts": [a.to_dict() for a in self.attempts]}

    @classmethod
    def from_dict(cls, data: dict) -> "FailureRecord":
        return cls(int(data["row"]),
                   np.asarray(data["rate_constants"], dtype=np.float64),
                   np.asarray(data["initial_state"], dtype=np.float64),
                   [RetryAttempt.from_dict(a) for a in data["attempts"]])


@dataclass
class WorkerFailure(FailureRecord):
    """A row quarantined by the shard executor, not the integrators.

    The supervisor records one of these for every row of a *poison*
    chunk: a chunk whose every attempt killed or hung its worker
    process, even after splitting down to minimum width (see
    :mod:`repro.resilience.executor`). No integration result exists for
    the row — the worker died before producing one — so ``attempts``
    is empty and ``reason`` carries the supervision verdict
    (``"worker-killed"``, ``"worker-hung"``, ``"chunk-timeout"``)
    instead.
    """

    reason: str = "worker-failure"
    worker_attempts: int = 0

    @property
    def final_status(self) -> str:
        return self.reason

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["kind"] = "worker"
        data["reason"] = self.reason
        data["worker_attempts"] = int(self.worker_attempts)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WorkerFailure":
        return cls(int(data["row"]),
                   np.asarray(data["rate_constants"], dtype=np.float64),
                   np.asarray(data["initial_state"], dtype=np.float64),
                   [RetryAttempt.from_dict(a) for a in data["attempts"]],
                   reason=str(data.get("reason", "worker-failure")),
                   worker_attempts=int(data.get("worker_attempts", 0)))


@dataclass
class QuarantineLog:
    """Collected failure records of one launch, engine run or campaign."""

    records: list[FailureRecord] = field(default_factory=list)

    def add(self, record: FailureRecord) -> None:
        # Confined to one campaign run: built and appended to inside a
        # single worker, merged single-threaded afterwards. The
        # cross-context reachability CNC005 sees is a simple-name
        # over-approximation of `.add(...)` receivers.
        self.records.append(record)  # lint: skip=CNC005

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def rows(self) -> np.ndarray:
        """Quarantined row indices, sorted, shape (Q,)."""
        return np.array(sorted(record.row for record in self.records),
                        dtype=np.int64)

    def mask(self, batch_size: int) -> np.ndarray:
        """Boolean quarantine mask over a batch of the given size."""
        mask = np.zeros(batch_size, dtype=bool)
        rows = self.rows()
        in_range = rows[(rows >= 0) & (rows < batch_size)]
        mask[in_range] = True
        return mask

    def merge(self, other: "QuarantineLog", row_offset: int = 0) -> None:
        """Absorb another log, shifting its rows into this index space.

        Records keep their concrete type (a :class:`WorkerFailure`
        stays a worker failure after the campaign re-bases it into the
        global row space).
        """
        for record in other.records:
            self.records.append(replace(
                record, row=record.row + row_offset,
                attempts=list(record.attempts)))

    def to_dicts(self) -> list[dict]:
        return [record.to_dict() for record in self.records]

    @classmethod
    def from_dicts(cls, data: list[dict]) -> "QuarantineLog":
        return cls([WorkerFailure.from_dict(entry)
                    if entry.get("kind") == "worker"
                    else FailureRecord.from_dict(entry)
                    for entry in data])

    def summary(self) -> str:
        """One line per quarantined row: attempts and status history."""
        if not self.records:
            return "quarantine: empty"
        lines = [f"quarantine: {len(self.records)} row(s)"]
        for record in sorted(self.records, key=lambda r: r.row):
            history = " -> ".join(
                f"{a.method}:{a.status}" for a in record.attempts)
            lines.append(f"  row {record.row}: {history}")
        return "\n".join(lines)
