"""Worker entry point of the supervised shard executor.

One worker process executes one campaign chunk (or split piece) at a
time, exactly the way the serial campaign loop would —
:func:`repro.resilience.campaign._run_chunk` on the chunk's row
subset — so the bytes it produces are indistinguishable from an
in-process run. What the worker adds is *liveness*: a daemon heartbeat
thread streams :data:`MSG_HEARTBEAT` messages over the shared result
queue while the chunk integrates, so the supervisor
(:mod:`repro.resilience.executor`) can tell a slow worker from a hung
one and a hung one from a dead one.

Message protocol (every message is ``(kind, token, task, payload)``
where ``token`` is the supervisor-issued ``(slot, generation)`` pair
and ``task`` is the ``(chunk_index, start, stop, attempt)`` tuple):

* :data:`MSG_READY` — the worker process is up and waiting for work.
* :data:`MSG_HEARTBEAT` — the current task is still making progress.
* :data:`MSG_DONE` — payload carries ``(BatchSolveResult,
  quarantine_dicts, metrics_dict)`` for the finished task.
* :data:`MSG_FAILED` — the chunk raised inside the worker; payload is
  the formatted error. The supervisor treats this like any other
  attempt failure (retry budget, then split/quarantine).

Fault injection: a :class:`~repro.resilience.FaultPlan` with
``worker_kill_chunks`` / ``worker_hang_chunks`` / ``worker_slow_chunks``
is honored *here*, at the process level — a kill is a hard
``os._exit`` (no message, no cleanup, exactly like the OOM killer), a
hang stops heartbeating while the process stays alive, and a slow
worker sleeps ``worker_slow_seconds`` before executing, heartbeats
intact. Engine-level faults are re-based with
:meth:`~repro.resilience.FaultPlan.for_chunk` and forwarded into the
chunk execution, identical to the serial path.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

#: Message kinds on the supervisor's result queue.
MSG_READY = "ready"
MSG_HEARTBEAT = "heartbeat"
MSG_DONE = "done"
MSG_FAILED = "failed"

#: Exit code of an injected worker kill (distinguishable from crashes).
KILLED_EXIT_CODE = 117

#: How long an injected hang sleeps. The supervisor terminates the
#: worker long before this elapses (heartbeat timeout); the constant
#: only bounds the leak if supervision itself is broken.
_HANG_SLEEP_SECONDS = 3600.0


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to execute any chunk of one campaign.

    Shipped once per worker process at spawn time; individual task
    messages then only carry ``(chunk_index, start, stop, attempt)``.
    ``engine_kwargs`` must be picklable — the supervisor strips the
    tracer before building the spec (workers run untraced; the
    supervisor records per-worker spans from its own clock).
    """

    model: object
    t_span: tuple[float, float]
    t_eval: np.ndarray
    engine: str
    options: object
    retry_policy: object
    fault_plan: object
    heartbeat_interval: float
    engine_kwargs: dict = field(default_factory=dict)


def _heartbeat_loop(result_queue, token, task, interval: float,
                    stop_event: threading.Event) -> None:
    while not stop_event.wait(interval):
        result_queue.put((MSG_HEARTBEAT, token, task, None))


def execute_chunk(spec: WorkerSpec, batch, chunk_index: int, start: int,
                  stop: int):
    """Run one chunk's row range exactly like the serial campaign loop.

    Returns ``(BatchSolveResult, quarantine_dicts, metrics_dict)``
    with the quarantine rows local to the piece and the metrics
    already serialized. Shared by the worker process and the
    supervisor's degraded in-process fallback, which is what keeps the
    two paths bit-identical by construction.
    """
    from .campaign import _run_chunk

    rows = np.arange(start, stop)
    plan = spec.fault_plan
    chunk_plan = (None if plan is None
                  else plan.for_chunk(chunk_index, start, stop))
    result, quarantine, report = _run_chunk(
        spec.model, batch.subset(rows), spec.t_span, spec.t_eval,
        spec.engine, spec.options, spec.retry_policy, chunk_plan,
        spec.engine_kwargs)
    metrics = None if report is None else report.metrics.to_dict()
    return result, quarantine.to_dicts(), metrics


def _execute_task(spec: WorkerSpec, batch, token, task,
                  result_queue) -> None:
    chunk_index, start, stop, attempt = task
    plan = spec.fault_plan

    if plan is not None and plan.kills_worker(chunk_index, attempt):
        # A hard process death: no farewell message, no flushing —
        # the supervisor must find out from the exit code alone.
        os._exit(KILLED_EXIT_CODE)
    if plan is not None and plan.hangs_worker(chunk_index, attempt):
        # Alive but silent: no heartbeats, no result. Only the
        # supervisor's heartbeat timeout can break this stalemate.
        time.sleep(_HANG_SLEEP_SECONDS)
        return

    stop_event = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(result_queue, token, task, spec.heartbeat_interval,
              stop_event),
        daemon=True)
    beat.start()
    try:
        if plan is not None and plan.slows_worker(chunk_index, attempt):
            time.sleep(plan.worker_slow_seconds)
        payload = execute_chunk(spec, batch, chunk_index, start, stop)
    except Exception as error:  # noqa: BLE001 — forwarded, not dropped
        stop_event.set()
        beat.join()
        result_queue.put((MSG_FAILED, token, task,
                          f"{type(error).__name__}: {error}"))
    else:
        stop_event.set()
        beat.join()
        result_queue.put((MSG_DONE, token, task, payload))


def worker_main(token, spec: WorkerSpec, batch, task_queue,
                result_queue) -> None:
    """Worker process main loop: announce, then execute until sentinel.

    ``token`` is the supervisor-issued ``(slot, generation)`` identity;
    a restarted slot gets a fresh generation so messages a terminated
    predecessor left in the queue can never be attributed to its
    replacement.
    """
    result_queue.put((MSG_READY, token, None, None))
    while True:
        task = task_queue.get()
        if task is None:
            return
        _execute_task(spec, batch, token, task, result_queue)
