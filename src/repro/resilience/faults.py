"""Deterministic fault injection for end-to-end resilience testing.

A :class:`FaultPlan` describes reproducible faults the engine and the
campaign runner honor:

* ``nan_rows`` — the batched RHS returns NaN for these (global) rows on
  every evaluation: a *persistent* fault that defeats every retry rung
  and must land the row in the quarantine log.
* ``drift_rows`` / ``drift_rate`` — the batched RHS gains a constant
  bias on these rows, steadily violating the model's conservation laws
  while staying perfectly integrable: the fault only the invariant
  monitor (:mod:`repro.guards`) can see. Persistent, so it defeats the
  retry ladder and must end in quarantine.
* ``oom_launches`` / ``oom_fit_rows`` — these launches report device
  memory pressure: any segment wider than ``oom_fit_rows`` "does not
  fit", forcing the memory governor to split the launch. Exercises the
  degraded path without needing a small device.
* ``fail_launches`` — the first pass of these launches is forcibly
  marked BROKEN after it runs: a *transient* fault the retry ladder
  recovers from.
* ``crash_after_launches`` — the engine (or the campaign runner)
  raises :class:`~repro.errors.CampaignInterrupted` once this many
  launches completed: simulates a mid-campaign crash for
  checkpoint/resume tests.
* ``deadline_after_chunks`` — the campaign runner pretends the
  wall-clock deadline expired after this many freshly executed chunks,
  degrading to a partial result with ``incomplete=True``.
* ``sched_kill_jobs`` / ``sched_hang_jobs`` — scheduler-level faults
  honored by the campaign service (:mod:`repro.service`): a listed job
  (by admission order, 0-based) has its campaign thread killed before
  any chunk runs, or hangs until the service's attempt timeout fires.
  Like the worker faults, each fires on the first
  ``sched_fault_attempts`` attempts of the job, so the default of 1 is
  a transient fault the service retries past, while a large value
  exhausts ``max_job_attempts`` and drives the job into quarantine.
* ``worker_kill_chunks`` / ``worker_hang_chunks`` /
  ``worker_slow_chunks`` — process-level faults honored by the shard
  executor's worker entry point (:mod:`repro.resilience.worker`): a
  worker assigned a listed chunk dies (``os._exit``), hangs (stops
  heartbeating), or runs slow (``worker_slow_seconds`` of extra
  latency, heartbeats intact). Each fault fires on the first
  ``worker_fault_attempts`` attempts of the chunk, so the default of 1
  is a *transient* fault the supervisor recovers from by restarting
  the worker and reassigning the chunk, while a large value makes the
  chunk *poison*: every attempt kills its worker, driving the
  supervisor down the split-then-quarantine ladder.

The plan is pure data, so injecting the same plan twice produces the
same degradation path — the property the resilience test suite builds
on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import ResilienceError


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault schedule for one engine run or campaign."""

    nan_rows: tuple[int, ...] = ()
    fail_launches: tuple[int, ...] = ()
    crash_after_launches: int | None = None
    deadline_after_chunks: int | None = None
    drift_rows: tuple[int, ...] = ()
    drift_rate: float = 1.0
    oom_launches: tuple[int, ...] = ()
    oom_fit_rows: int | None = None
    worker_kill_chunks: tuple[int, ...] = ()
    worker_hang_chunks: tuple[int, ...] = ()
    worker_slow_chunks: tuple[int, ...] = ()
    worker_fault_attempts: int = 1
    worker_slow_seconds: float = 0.25
    sched_kill_jobs: tuple[int, ...] = ()
    sched_hang_jobs: tuple[int, ...] = ()
    sched_fault_attempts: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "nan_rows",
                           tuple(int(r) for r in self.nan_rows))
        object.__setattr__(self, "fail_launches",
                           tuple(int(i) for i in self.fail_launches))
        object.__setattr__(self, "drift_rows",
                           tuple(int(r) for r in self.drift_rows))
        object.__setattr__(self, "oom_launches",
                           tuple(int(i) for i in self.oom_launches))
        for name in ("worker_kill_chunks", "worker_hang_chunks",
                     "worker_slow_chunks"):
            object.__setattr__(self, name,
                               tuple(int(i) for i in getattr(self, name)))
            if any(i < 0 for i in getattr(self, name)):
                raise ResilienceError(f"{name} must be non-negative")
        for name in ("sched_kill_jobs", "sched_hang_jobs"):
            object.__setattr__(self, name,
                               tuple(int(i) for i in getattr(self, name)))
            if any(i < 0 for i in getattr(self, name)):
                raise ResilienceError(f"{name} must be non-negative")
        if self.worker_fault_attempts < 1:
            raise ResilienceError("worker_fault_attempts must be >= 1")
        if self.sched_fault_attempts < 1:
            raise ResilienceError("sched_fault_attempts must be >= 1")
        if not (self.worker_slow_seconds >= 0.0):
            raise ResilienceError("worker_slow_seconds must be >= 0")
        if any(r < 0 for r in self.nan_rows):
            raise ResilienceError("nan_rows must be non-negative")
        if any(i < 0 for i in self.fail_launches):
            raise ResilienceError("fail_launches must be non-negative")
        if any(r < 0 for r in self.drift_rows):
            raise ResilienceError("drift_rows must be non-negative")
        if not np.isfinite(self.drift_rate):
            raise ResilienceError("drift_rate must be finite")
        if any(i < 0 for i in self.oom_launches):
            raise ResilienceError("oom_launches must be non-negative")
        if self.oom_fit_rows is not None and self.oom_fit_rows < 1:
            raise ResilienceError("oom_fit_rows must be >= 1")
        if self.crash_after_launches is not None \
                and self.crash_after_launches < 0:
            raise ResilienceError("crash_after_launches must be >= 0")
        if self.deadline_after_chunks is not None \
                and self.deadline_after_chunks < 0:
            raise ResilienceError("deadline_after_chunks must be >= 0")

    # -- RHS-level faults ------------------------------------------------

    @property
    def injects_nan(self) -> bool:
        return bool(self.nan_rows)

    def nan_mask(self, row_ids: np.ndarray) -> np.ndarray:
        """Boolean mask over ``row_ids`` of rows whose RHS turns NaN."""
        if not self.nan_rows:
            return np.zeros(row_ids.shape[0], dtype=bool)
        return np.isin(row_ids, np.asarray(self.nan_rows, dtype=np.int64))

    @property
    def injects_drift(self) -> bool:
        return bool(self.drift_rows)

    def drift_mask(self, row_ids: np.ndarray) -> np.ndarray:
        """Boolean mask over ``row_ids`` of rows with biased derivatives."""
        if not self.drift_rows:
            return np.zeros(row_ids.shape[0], dtype=bool)
        return np.isin(row_ids, np.asarray(self.drift_rows, dtype=np.int64))

    # -- launch-level faults ---------------------------------------------

    def forces_launch_failure(self, launch_index: int) -> bool:
        return launch_index in self.fail_launches

    def forces_memory_pressure(self, launch_index: int) -> bool:
        return launch_index in self.oom_launches

    def crashes_before_launch(self, launch_index: int) -> bool:
        return (self.crash_after_launches is not None
                and launch_index >= self.crash_after_launches)

    # -- worker-process faults (shard executor) --------------------------

    def kills_worker(self, chunk_index: int, attempt: int) -> bool:
        """The worker executing this attempt of the chunk dies."""
        return chunk_index in self.worker_kill_chunks \
            and attempt <= self.worker_fault_attempts

    def hangs_worker(self, chunk_index: int, attempt: int) -> bool:
        """The worker stops heartbeating instead of executing."""
        return chunk_index in self.worker_hang_chunks \
            and attempt <= self.worker_fault_attempts

    def slows_worker(self, chunk_index: int, attempt: int) -> bool:
        """The worker sleeps ``worker_slow_seconds`` before executing."""
        return chunk_index in self.worker_slow_chunks \
            and attempt <= self.worker_fault_attempts

    # -- scheduler-level faults (campaign service) -----------------------

    def kills_job(self, job_index: int, attempt: int) -> bool:
        """The campaign thread for this attempt of the job dies."""
        return job_index in self.sched_kill_jobs \
            and attempt <= self.sched_fault_attempts

    def hangs_job(self, job_index: int, attempt: int) -> bool:
        """The job hangs until the service attempt timeout fires."""
        return job_index in self.sched_hang_jobs \
            and attempt <= self.sched_fault_attempts

    # -- campaign remapping ----------------------------------------------

    def for_chunk(self, chunk_index: int, start: int,
                  stop: int) -> "FaultPlan":
        """The plan as seen by the engine running one campaign chunk.

        Global ``nan_rows`` and ``drift_rows`` are re-based onto the
        chunk's local row space; a chunk listed in ``fail_launches``
        fails its (first) launch, one listed in ``oom_launches``
        pressures it. Crash and deadline triggers are handled by the
        campaign runner itself, the ``worker_*`` faults by the shard
        executor's worker entry point, and the ``sched_*`` faults by
        the campaign service, so they are stripped here.
        """
        local_nan = tuple(r - start for r in self.nan_rows
                          if start <= r < stop)
        local_drift = tuple(r - start for r in self.drift_rows
                            if start <= r < stop)
        local_fail = (0,) if chunk_index in self.fail_launches else ()
        local_oom = (0,) if chunk_index in self.oom_launches else ()
        return replace(self, nan_rows=local_nan, fail_launches=local_fail,
                       crash_after_launches=None,
                       deadline_after_chunks=None,
                       drift_rows=local_drift, oom_launches=local_oom,
                       worker_kill_chunks=(), worker_hang_chunks=(),
                       worker_slow_chunks=(),
                       sched_kill_jobs=(), sched_hang_jobs=())
