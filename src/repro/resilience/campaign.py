"""Chunked campaign execution with checkpoint/resume and deadlines.

:func:`run_campaign` is the resilient counterpart of one big
:func:`repro.core.simulate.simulate` call: the parameter batch is split
into fixed-size chunks, every completed chunk is journaled through
:class:`~repro.io.checkpoint.CampaignCheckpoint`, and a re-run of the
same campaign (same model, batch shape, grid and chunking) skips the
journaled chunks — so a crash or ``KeyboardInterrupt`` costs at most
one chunk of work. A wall-clock ``deadline_seconds`` degrades
gracefully: execution stops between chunks and the partial result is
returned with ``incomplete=True`` instead of raising.

PSA-1D/2D and Sobol SA accept a :class:`CampaignConfig` directly
(``campaign=`` keyword); parameter estimation journals its multi-start
optima through the same checkpoint payloads
(:func:`repro.core.pe.estimate_multi_start`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..errors import CampaignInterrupted, ResilienceError
from ..gpu.batch_result import (METHOD_DOPRI5, RUNNING, BatchSolveResult,
                                allocate_result)
from ..telemetry import clock
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.tracer import as_tracer
from .faults import FaultPlan
from .policy import RetryPolicy
from .quarantine import QuarantineLog


@dataclass(frozen=True)
class CampaignConfig:
    """Execution controls of one resilient campaign.

    Attributes
    ----------
    chunk_size:
        Simulations per journaled chunk — the resume granularity (and
        the most work a crash can lose).
    checkpoint_path:
        JSON journal location; ``None`` disables journaling (chunked
        execution and deadlines still apply).
    deadline_seconds:
        Wall-clock budget for the whole campaign; once exceeded no
        further chunk is started and the partial result is returned
        with ``incomplete=True``. With workers, the remaining budget
        also bounds every in-flight chunk (it is terminated, not
        merely not-started).
    workers:
        Worker processes for the supervised shard executor
        (:mod:`repro.resilience.executor`); ``0`` keeps the in-process
        serial loop. The merged result is byte-identical either way.
    heartbeat_interval:
        Seconds between worker liveness heartbeats.
    heartbeat_timeout:
        Heartbeat silence after which the supervisor declares a worker
        hung, terminates it and reassigns its chunk.
    chunk_timeout:
        Wall-clock cap per chunk attempt under the executor; ``None``
        leaves attempts bounded only by the campaign deadline.
    max_chunk_attempts:
        Attempt budget per chunk (or split piece) before the poison
        ladder kicks in: wider-than-one pieces split in half, width-one
        pieces quarantine their rows as ``WorkerFailure`` records.
    max_worker_restarts:
        Pool-wide restart budget; once spent, a collapsed pool degrades
        to in-process execution (``CampaignResult.degraded``).
    restart_backoff / restart_backoff_cap:
        Capped exponential backoff (seconds) between worker restarts.
    slow_chunk_seconds:
        Chunks taking longer than this are counted in
        ``campaign.executor.slow_chunks``; ``None`` disables the count.
    """

    chunk_size: int = 256
    checkpoint_path: str | Path | None = None
    deadline_seconds: float | None = None
    workers: int = 0
    heartbeat_interval: float = 0.05
    heartbeat_timeout: float = 2.0
    chunk_timeout: float | None = None
    max_chunk_attempts: int = 3
    max_worker_restarts: int = 8
    restart_backoff: float = 0.05
    restart_backoff_cap: float = 1.0
    slow_chunk_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ResilienceError(
                f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.deadline_seconds is not None \
                and not (self.deadline_seconds > 0.0):
            raise ResilienceError(
                f"deadline_seconds must be > 0, got "
                f"{self.deadline_seconds}")
        if self.workers < 0:
            raise ResilienceError(
                f"workers must be >= 0, got {self.workers}")
        if not (self.heartbeat_interval > 0.0):
            raise ResilienceError(
                f"heartbeat_interval must be > 0, got "
                f"{self.heartbeat_interval}")
        if not (self.heartbeat_timeout > self.heartbeat_interval):
            raise ResilienceError(
                "heartbeat_timeout must exceed heartbeat_interval, got "
                f"{self.heartbeat_timeout} <= {self.heartbeat_interval}")
        if self.chunk_timeout is not None \
                and not (self.chunk_timeout > 0.0):
            raise ResilienceError(
                f"chunk_timeout must be > 0, got {self.chunk_timeout}")
        if self.max_chunk_attempts < 1:
            raise ResilienceError(
                f"max_chunk_attempts must be >= 1, got "
                f"{self.max_chunk_attempts}")
        if self.max_worker_restarts < 0:
            raise ResilienceError(
                f"max_worker_restarts must be >= 0, got "
                f"{self.max_worker_restarts}")
        if self.restart_backoff < 0.0 or self.restart_backoff_cap < 0.0:
            raise ResilienceError("restart backoff values must be >= 0")
        if self.slow_chunk_seconds is not None \
                and not (self.slow_chunk_seconds > 0.0):
            raise ResilienceError(
                f"slow_chunk_seconds must be > 0, got "
                f"{self.slow_chunk_seconds}")


@dataclass
class CampaignResult:
    """Outcome of :func:`run_campaign`.

    ``result`` always covers the *full* batch: rows of chunks that
    never ran (deadline hit) keep NaN trajectories and the
    ``running`` status, exposed as :attr:`pending_mask`.
    """

    result: BatchSolveResult
    incomplete: bool
    deadline_hit: bool
    completed_chunks: int
    total_chunks: int
    resumed_chunks: int
    quarantine: QuarantineLog = field(default_factory=QuarantineLog)
    checkpoint_path: Path | None = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: True when the worker pool collapsed and the remaining chunks ran
    #: on the supervisor's in-process fallback.
    degraded: bool = False
    #: True when a ``cancel_event`` stopped the campaign at a chunk
    #: boundary; everything journaled so far resumes exact-once.
    cancelled: bool = False

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantine)

    @property
    def pending_mask(self) -> np.ndarray:
        """Rows whose chunk never executed (shape (B,))."""
        return self.result.status_codes == RUNNING

    def summary(self) -> str:
        state = "incomplete" if self.incomplete else "complete"
        return (f"campaign {state}: {self.completed_chunks}/"
                f"{self.total_chunks} chunks "
                f"({self.resumed_chunks} resumed), "
                f"{self.n_quarantined} quarantined row(s)"
                + (", deadline hit" if self.deadline_hit else "")
                + (", cancelled" if self.cancelled else "")
                + (", degraded to serial" if self.degraded else ""))


def _numerics_digest(options, retry_policy) -> str:
    """Digest of everything that shapes the journaled *numbers*.

    Solver options (tolerances, step caps, controller constants) and
    the retry-policy ladder both change the trajectories a chunk
    produces; resuming a journal written under different numerics would
    silently splice mismatched results, so their digest is part of the
    campaign fingerprint. ``None`` (engine-default) policies hash as a
    sentinel distinct from any explicit ladder.
    """
    payload = {
        "options": None if options is None else asdict(options),
        "retry": None if retry_policy is None else asdict(retry_policy),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()[:16]


def campaign_fingerprint(model, batch_size: int, chunk_size: int,
                         t_span: tuple[float, float],
                         t_eval: np.ndarray, engine: str,
                         options=None, retry_policy=None) -> dict:
    """Identity of a campaign, compared when re-opening a journal."""
    grid = hashlib.sha256(
        np.ascontiguousarray(t_eval, dtype=np.float64).tobytes()
    ).hexdigest()[:16]
    return {"kind": "campaign", "model": model.name,
            "n_species": int(model.n_species),
            "n_reactions": int(model.n_reactions),
            "batch_size": int(batch_size), "chunk_size": int(chunk_size),
            "t_span": [float(t_span[0]), float(t_span[1])],
            "t_eval_sha": grid, "engine": engine,
            "numerics_sha": _numerics_digest(options, retry_policy)}


def run_campaign(model, t_span: tuple[float, float],
                 t_eval: np.ndarray | None = None,
                 parameters=None, engine: str = "batched",
                 options=None, config: CampaignConfig | None = None,
                 retry_policy: RetryPolicy | None = None,
                 fault_plan: FaultPlan | None = None,
                 telemetry=None, chunk_gate=None, cancel_event=None,
                 trace_parent=None,
                 **engine_kwargs) -> CampaignResult:
    """Run a batch as a resilient, journaled, chunked campaign.

    ``retry_policy`` and ``fault_plan`` are forwarded to the batched
    engine (they are ignored by the sequential/stochastic engines,
    whose per-row statuses still feed the quarantine-free masking
    downstream). Raises
    :class:`~repro.errors.CampaignInterrupted` on an injected crash or
    ``KeyboardInterrupt``; completed chunks are journaled first, so the
    identical call resumes.

    ``chunk_gate`` and ``cancel_event`` are the campaign service's
    hooks (:mod:`repro.service`). The gate arbitrates chunk starts
    across concurrent campaigns: every chunk acquires a permit for its
    row width before executing and releases it after, so a scheduler
    can enforce fair-share and in-flight caps without knowing chunk
    internals (``acquire(width, cancel_event) -> bool`` /
    ``try_acquire(width) -> bool`` / ``release(width)``). The
    ``cancel_event`` (a ``threading.Event``) requests *cooperative*
    cancellation: checked at every chunk boundary, so a cancelled
    campaign stops after at most one more chunk with its journal
    intact (``CampaignResult.cancelled``) and resumes exact-once later.
    ``trace_parent`` nests the campaign's root span under a service
    ``job`` span.

    ``telemetry`` enables tracing: a trace-file path (JSONL, appended),
    a :class:`~repro.telemetry.Tracer`, or ``None``. Span sinks flush
    right after each chunk is journaled and the ``campaign`` root span
    is written only when the campaign completes, so a crashed-and-
    resumed campaign (each run passing the *same trace path*) appends
    into one coherent tree with stable structural ids — no duplicate
    roots, no orphaned chunks. Per-chunk engine metrics are journaled
    as checkpoint payloads and rehydrated on resume, so
    :attr:`CampaignResult.metrics` always aggregates the whole batch.
    """
    from ..core.simulate import _normalize
    from ..solvers.base import DEFAULT_OPTIONS

    options = DEFAULT_OPTIONS if options is None else options
    config = CampaignConfig() if config is None else config
    batch = _normalize(model, parameters)
    if t_eval is None:
        t_eval = np.array([float(t_span[0]), float(t_span[1])])
    t_eval = np.asarray(t_eval, dtype=np.float64)

    total_chunks = -(-batch.size // config.chunk_size)
    checkpoint = None
    if config.checkpoint_path is not None:
        from ..io.checkpoint import CampaignCheckpoint
        checkpoint = CampaignCheckpoint.open(
            config.checkpoint_path,
            campaign_fingerprint(model, batch.size, config.chunk_size,
                                 t_span, t_eval, engine, options,
                                 retry_policy))

    merged = allocate_result(t_eval, batch.size, model.n_species,
                             METHOD_DOPRI5)
    quarantine = QuarantineLog()
    metrics = MetricsRegistry()
    completed = resumed = executed = 0
    deadline_hit = degraded = cancelled = False
    tracer = as_tracer(telemetry)
    campaign_span = tracer.start("campaign", "campaign",
                                 parent=trace_parent, model=model.name,
                                 batch=int(batch.size),
                                 chunks=int(total_chunks))
    started = clock.monotonic()

    # Pass 1 — resume everything the journal already holds (cheap, no
    # integration), leaving a work-list of chunks still to execute.
    remaining: list[tuple[int, int, int]] = []
    for index in range(total_chunks):
        start = index * config.chunk_size
        stop = min(start + config.chunk_size, batch.size)
        if checkpoint is None or not checkpoint.has_chunk(index):
            remaining.append((index, start, stop))
            continue
        rows = np.arange(start, stop)
        chunk_result, quarantine_dicts = checkpoint.load_chunk(index)
        _check_chunk_shape(chunk_result, rows.size, t_eval, index)
        quarantine.merge(QuarantineLog.from_dicts(quarantine_dicts))
        chunk_metrics = checkpoint.get_payload(f"metrics-{index}")
        if chunk_metrics is not None:
            metrics.merge(MetricsRegistry.from_dict(chunk_metrics))
        merged.merge_rows(chunk_result, rows)
        completed += 1
        resumed += 1
        metrics.count("campaign.chunks.resumed")

    # Pass 2 — execute the work-list: supervised worker pool when
    # configured, the in-process serial loop otherwise.
    if config.workers > 0 and remaining:
        from .executor import run_sharded
        from .worker import WorkerSpec
        spec = WorkerSpec(model=model, t_span=t_span, t_eval=t_eval,
                          engine=engine, options=options,
                          retry_policy=retry_policy,
                          fault_plan=fault_plan,
                          heartbeat_interval=config.heartbeat_interval,
                          engine_kwargs=dict(engine_kwargs))
        outcome = run_sharded(spec, batch, config, fault_plan, remaining,
                              checkpoint, merged, model.n_species, t_eval,
                              started, completed, tracer, campaign_span,
                              chunk_gate=chunk_gate,
                              cancel_event=cancel_event)
        for index in sorted(outcome.chunk_quarantines):
            quarantine.merge(outcome.chunk_quarantines[index],
                             row_offset=index * config.chunk_size)
        for index in sorted(outcome.chunk_metrics):
            chunk_metrics = outcome.chunk_metrics[index]
            if chunk_metrics is not None:
                metrics.merge(chunk_metrics)
        metrics.merge(outcome.metrics)
        executed = outcome.executed
        completed += outcome.executed
        deadline_hit = outcome.deadline_hit
        degraded = outcome.degraded
        cancelled = outcome.cancelled
        if executed:
            metrics.count("campaign.chunks.executed", executed)
    else:
        min_chunk_seconds: float | None = None
        for index, start, stop in remaining:
            rows = np.arange(start, stop)
            now = clock.monotonic()
            if cancel_event is not None and cancel_event.is_set():
                cancelled = True
                break
            if _deadline_exceeded(config, fault_plan, started, executed,
                                  now):
                deadline_hit = True
                break
            # Predictive budget check: even with wall-clock budget left,
            # starting a chunk the fastest chunk so far could not finish
            # within would only burn time past the deadline — skip
            # straight to the incomplete result instead.
            if config.deadline_seconds is not None and \
                    min_chunk_seconds is not None and \
                    config.deadline_seconds - (now - started) \
                    < min_chunk_seconds:
                deadline_hit = True
                break
            if fault_plan is not None and \
                    fault_plan.crash_after_launches is not None and \
                    executed >= fault_plan.crash_after_launches:
                raise CampaignInterrupted(
                    f"injected crash before campaign chunk {index}",
                    checkpoint_path=(None if checkpoint is None
                                     else checkpoint.path),
                    completed_chunks=completed)

            if chunk_gate is not None:
                if not chunk_gate.acquire(int(rows.size), cancel_event):
                    cancelled = True
                    break
                # The gate may have blocked for a while; restart the
                # chunk timer so the wait is not billed as compute.
                now = clock.monotonic()
            chunk_plan = (None if fault_plan is None
                          else fault_plan.for_chunk(index, start, stop))
            chunk_span = tracer.start(f"chunk-{index}", "chunk",
                                      parent=campaign_span,
                                      rows=int(rows.size))
            try:
                chunk_result, chunk_quarantine, report = _run_chunk(
                    model, batch.subset(rows), t_span, t_eval, engine,
                    options, retry_policy, chunk_plan, engine_kwargs,
                    tracer, chunk_span)
            except KeyboardInterrupt:
                raise CampaignInterrupted(
                    f"campaign interrupted during chunk {index}; "
                    f"{completed} chunk(s) already journaled",
                    checkpoint_path=(None if checkpoint is None
                                     else checkpoint.path),
                    completed_chunks=completed) from None
            finally:
                if chunk_gate is not None:
                    chunk_gate.release(int(rows.size))
            tracer.end(chunk_span)
            quarantine.merge(chunk_quarantine, row_offset=start)
            if report is not None:
                metrics.merge(report.metrics)
            if checkpoint is not None:
                shifted = QuarantineLog()
                shifted.merge(chunk_quarantine, row_offset=start)
                checkpoint.save_chunk(index, chunk_result,
                                      shifted.to_dicts())
                if report is not None:
                    checkpoint.set_payload(f"metrics-{index}",
                                           report.metrics.to_dict())
            # Flush spans only after the chunk is journaled: the trace
            # file and the journal lose exactly the same chunk on a
            # crash.
            tracer.flush()
            merged.merge_rows(chunk_result, rows)
            completed += 1
            executed += 1
            metrics.count("campaign.chunks.executed")
            after = clock.monotonic()
            duration = after - now
            if min_chunk_seconds is None or duration < min_chunk_seconds:
                min_chunk_seconds = duration
            # Post-chunk wall-clock check: a chunk that overshot the
            # deadline mid-flight must mark the result, not wait for
            # the next pre-chunk check that may never come.
            if config.deadline_seconds is not None and \
                    after - started > config.deadline_seconds \
                    and completed < total_chunks:
                deadline_hit = True
                break

    # Unstarted rows stay NaN/'running': nothing was integrated, so they
    # must not masquerade as failures of the dynamics.
    incomplete = completed < total_chunks
    merged.elapsed_seconds = clock.monotonic() - started
    if completed == total_chunks and executed:
        # The campaign root is written only once, by the run that
        # finishes the final chunk — a crashed run never flushes its
        # root, so the resume's root adopts the earlier chunk spans.
        # A fully-resumed run executed nothing and emits nothing:
        # re-running a completed campaign leaves the trace unchanged
        # instead of appending a duplicate root.
        tracer.end(campaign_span, degraded=bool(degraded),
                   deadline_hit=bool(deadline_hit),
                   cancelled=bool(cancelled),
                   quarantined=len(quarantine))
        tracer.flush()
    return CampaignResult(merged, incomplete, deadline_hit, completed,
                          total_chunks, resumed, quarantine,
                          None if checkpoint is None else checkpoint.path,
                          metrics, degraded, cancelled)


# ----------------------------------------------------------------------


def _deadline_exceeded(config: CampaignConfig,
                       fault_plan: FaultPlan | None, started: float,
                       executed: int, now: float | None = None) -> bool:
    if now is None:
        now = clock.monotonic()
    if config.deadline_seconds is not None and \
            now - started > config.deadline_seconds:
        return True
    return (fault_plan is not None
            and fault_plan.deadline_after_chunks is not None
            and executed >= fault_plan.deadline_after_chunks)


def _run_chunk(model, sub_batch, t_span, t_eval, engine, options,
               retry_policy, chunk_plan, engine_kwargs, tracer=None,
               chunk_span=None):
    from ..core.simulate import simulate

    kwargs = dict(engine_kwargs)
    if engine == "batched":
        kwargs["retry_policy"] = retry_policy
        kwargs["fault_plan"] = chunk_plan
        if tracer is not None:
            kwargs["tracer"] = tracer
            kwargs["trace_parent"] = chunk_span
    result = simulate(model, t_span, t_eval, sub_batch, engine, options,
                      **kwargs)
    report = result.engine_report
    chunk_quarantine = (report.quarantine if report is not None
                        else QuarantineLog())
    return result.raw, chunk_quarantine, report


def _check_chunk_shape(chunk_result: BatchSolveResult, n_rows: int,
                       t_eval: np.ndarray, index: int) -> None:
    if chunk_result.batch_size != n_rows or \
            chunk_result.t.shape != t_eval.shape or \
            not np.allclose(chunk_result.t, t_eval):
        raise ResilienceError(
            f"journaled chunk {index} does not match the campaign "
            f"(rows {chunk_result.batch_size} vs {n_rows} or differing "
            f"time grid); delete the journal to recompute")
