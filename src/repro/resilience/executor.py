"""Supervised multiprocess shard executor for campaign chunks.

:func:`run_sharded` fans the non-journaled chunks of one campaign out
to a pool of ``CampaignConfig.workers`` worker processes
(:mod:`repro.resilience.worker`) and merges what comes back through
the exact ``merge_rows``/checkpoint path the serial loop uses, so the
merged :class:`~repro.gpu.batch_result.BatchSolveResult` is
byte-identical to an in-process run. The supervision ladder, per
failed attempt of a chunk:

1. **detect** — a dead worker by exit code, a hung one by heartbeat
   gap (``heartbeat_timeout``), a livelocked one by the per-chunk
   timeout (``chunk_timeout`` and the remaining campaign deadline);
2. **restart** — the slot respawns under capped exponential backoff,
   drawing on the pool-wide ``max_worker_restarts`` budget;
3. **reassign** — the in-flight chunk returns to the front of the
   queue while its per-chunk attempt budget (``max_chunk_attempts``)
   lasts;
4. **split** — a chunk that exhausts its attempts is halved (the
   memory-governor pattern): a poison *row* keeps killing workers, but
   each split narrows the blast radius bit-identically;
5. **quarantine** — at minimum width the surviving rows are recorded
   as :class:`~repro.resilience.quarantine.WorkerFailure` entries and
   marked ``failed`` instead of sinking the campaign.

If the pool collapses outright — no live worker and no restart budget
— execution degrades to the in-process serial path
(:func:`~repro.resilience.worker.execute_chunk`, the same code the
workers run) and the campaign finishes with
``CampaignResult.degraded=True``.

Journal writes are serialized here: workers stream results over a
queue and only the supervisor touches the
:class:`~repro.io.checkpoint.CampaignCheckpoint`, so out-of-order
chunk completion is safe and a supervisor crash loses at most the
chunks not yet journaled — exactly the serial loop's contract.

Result queues are **per worker generation**, not shared: a process
that dies (or is terminated) while its queue feeder holds the write
lock poisons that queue forever, and with a shared queue one such
death would silence every surviving worker's heartbeats — turning a
single injected kill into a cascade of spurious hang detections. A
per-generation queue makes the blast radius of a poisoned lock exactly
the worker that died; its replacement gets a fresh queue.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..errors import CampaignInterrupted
from ..gpu.batch_result import (BROKEN, METHOD_DOPRI5, BatchSolveResult,
                                allocate_result)
from ..telemetry import clock
from ..telemetry.metrics import MetricsRegistry
from .quarantine import QuarantineLog, WorkerFailure
from .worker import (MSG_DONE, MSG_FAILED, MSG_HEARTBEAT, MSG_READY,
                     WorkerSpec, execute_chunk, worker_main)


@dataclass(frozen=True, order=True)
class _Task:
    """One executable unit: a chunk, or a split piece of one.

    ``start``/``stop`` are *global* campaign row indices. The dataclass
    ordering (chunk first, then row range) is the deterministic
    execution order of the degraded serial fallback.
    """

    chunk_index: int
    start: int
    stop: int

    @property
    def width(self) -> int:
        return self.stop - self.start

    def message(self, attempt: int) -> tuple:
        return (self.chunk_index, self.start, self.stop, attempt)


class _ChunkState:
    """Accumulates the pieces of one chunk until every row is covered."""

    __slots__ = ("start", "stop", "buffer", "covered", "quarantine",
                 "metrics", "has_metrics")

    def __init__(self, start: int, stop: int, t_eval: np.ndarray,
                 n_species: int) -> None:
        self.start = start
        self.stop = stop
        self.buffer = allocate_result(t_eval, stop - start, n_species,
                                      METHOD_DOPRI5)
        self.covered = 0
        self.quarantine = QuarantineLog()
        self.metrics = MetricsRegistry()
        self.has_metrics = False

    @property
    def complete(self) -> bool:
        return self.covered >= self.stop - self.start


class _Slot:
    """One worker lane: the process currently occupying it, its task,
    and its liveness bookkeeping. A restarted lane keeps its identity
    (and its telemetry span) while the process and generation change."""

    __slots__ = ("index", "generation", "process", "queue", "results",
                 "task", "attempt", "assigned_at", "deadline_at",
                 "last_heartbeat", "restart_at", "restarts", "chunks_done",
                 "lane_span")

    def __init__(self, index: int) -> None:
        self.index = index
        self.generation = 0
        self.process = None
        self.queue = None
        self.results = None
        self.task = None
        self.attempt = 0
        self.assigned_at = 0.0
        self.deadline_at = None
        self.last_heartbeat = 0.0
        self.restart_at = None
        self.restarts = 0
        self.chunks_done = 0
        self.lane_span = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.exitcode is None

    @property
    def idle(self) -> bool:
        return self.alive and self.task is None


@dataclass
class ExecutorOutcome:
    """What the sharded run produced, for the campaign loop to merge."""

    executed: int = 0
    deadline_hit: bool = False
    degraded: bool = False
    #: True when a cooperative ``cancel_event`` stopped the run; the
    #: journal keeps everything finalized before the stop.
    cancelled: bool = False
    #: chunk index -> quarantine log in chunk-local row space.
    chunk_quarantines: dict = field(default_factory=dict)
    #: chunk index -> per-chunk engine metrics (None: engine had none).
    chunk_metrics: dict = field(default_factory=dict)
    #: supervisor-side counters (restarts, reassignments, splits, ...).
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)


def _fork_context():
    """Fork when the platform offers it (cheap spawn, no re-import);
    the default start method otherwise."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ShardSupervisor:
    """Drives one campaign's chunk fan-out over a worker pool."""

    def __init__(self, spec: WorkerSpec, batch, config, fault_plan,
                 chunk_indices, checkpoint, merged: BatchSolveResult,
                 n_species: int, t_eval: np.ndarray, started: float,
                 completed_before: int, tracer, campaign_span,
                 chunk_gate=None, cancel_event=None) -> None:
        self.spec = spec
        self.batch = batch
        self.config = config
        self.fault_plan = fault_plan
        self.checkpoint = checkpoint
        self.merged = merged
        self.n_species = n_species
        self.t_eval = t_eval
        self.started = started
        self.completed_before = completed_before
        self.tracer = tracer
        self.campaign_span = campaign_span
        self.chunk_gate = chunk_gate
        self.cancel_event = cancel_event

        self.outcome = ExecutorOutcome()
        self.outcome.metrics.gauge("campaign.executor.workers",
                                   config.workers)
        self.pending: deque[_Task] = deque()
        self.attempts: dict[tuple, int] = {}
        self.chunk_states: dict[int, _ChunkState] = {}
        self.chunk_ranges: dict[int, tuple[int, int]] = {}
        for index, start, stop in chunk_indices:
            self.chunk_ranges[index] = (start, stop)
            self.pending.append(_Task(index, start, stop))
        self.slots = [_Slot(i) for i in range(config.workers)]
        self.restarts_used = 0
        self._context = _fork_context()
        self._tick = max(0.005, min(0.05, config.heartbeat_interval / 2.0))
        self._block_index = 0
        self._lanes_ended = False
        self._open_spans: dict[tuple, object] = {}
        self._gate_held: dict[tuple, int] = {}

    # -- lifecycle -------------------------------------------------------

    def run(self) -> ExecutorOutcome:
        for slot in self.slots:
            slot.lane_span = self.tracer.start(
                f"worker-{slot.index}", "worker", parent=self.campaign_span)
            self._spawn(slot)
        try:
            try:
                self._supervise()
                if self._work_remaining() and not self.outcome.deadline_hit \
                        and not self.outcome.cancelled:
                    self._degrade()
            except KeyboardInterrupt:
                raise CampaignInterrupted(
                    "sharded campaign interrupted; "
                    f"{self._completed()} chunk(s) already journaled",
                    checkpoint_path=(None if self.checkpoint is None
                                     else self.checkpoint.path),
                    completed_chunks=self._completed()) from None
        finally:
            self._shutdown()
        return self.outcome

    def _supervise(self) -> None:
        while self._work_remaining():
            if self.cancel_event is not None \
                    and self.cancel_event.is_set():
                self.outcome.cancelled = True
                return
            self._check_crash()
            if self._deadline_exceeded():
                self.outcome.deadline_hit = True
                return
            self._drain_messages()
            self._check_workers()
            self._restart_due_slots()
            self._assign_tasks()
            if self._pool_collapsed():
                return

    def _work_remaining(self) -> bool:
        return bool(self.pending) \
            or any(slot.task is not None for slot in self.slots)

    def _completed(self) -> int:
        return self.completed_before + self.outcome.executed

    def _check_crash(self) -> None:
        plan = self.fault_plan
        if plan is not None and plan.crash_after_launches is not None \
                and self.outcome.executed >= plan.crash_after_launches:
            raise CampaignInterrupted(
                f"injected crash after {self.outcome.executed} sharded "
                f"chunk(s)",
                checkpoint_path=(None if self.checkpoint is None
                                 else self.checkpoint.path),
                completed_chunks=self._completed())

    def _deadline_exceeded(self) -> bool:
        config = self.config
        if config.deadline_seconds is not None and \
                clock.monotonic() - self.started > config.deadline_seconds:
            return True
        plan = self.fault_plan
        return (plan is not None
                and plan.deadline_after_chunks is not None
                and self.outcome.executed >= plan.deadline_after_chunks)

    def _pool_collapsed(self) -> bool:
        if any(slot.alive for slot in self.slots):
            return False
        return self.restarts_used >= self.config.max_worker_restarts

    # -- worker pool -----------------------------------------------------

    def _spawn(self, slot: _Slot) -> None:
        slot.generation += 1
        slot.queue = self._context.Queue()
        slot.results = self._context.Queue()
        slot.task = None
        slot.restart_at = None
        token = (slot.index, slot.generation)
        process = self._context.Process(
            target=worker_main,
            args=(token, self.spec, self.batch, slot.queue, slot.results),
            daemon=True)
        try:
            process.start()
        except OSError:
            slot.process = None
            self._schedule_restart(slot)
            return
        slot.process = process
        slot.last_heartbeat = clock.monotonic()

    def _schedule_restart(self, slot: _Slot) -> None:
        backoff = min(self.config.restart_backoff_cap,
                      self.config.restart_backoff
                      * (2.0 ** min(self.restarts_used, 16)))
        slot.restart_at = clock.monotonic() + backoff

    def _restart_due_slots(self) -> None:
        now = clock.monotonic()
        for slot in self.slots:
            if slot.alive or slot.restart_at is None:
                continue
            if now < slot.restart_at:
                continue
            if self.restarts_used >= self.config.max_worker_restarts:
                slot.restart_at = None
                continue
            self.restarts_used += 1
            slot.restarts += 1
            self.outcome.metrics.count("campaign.executor.restarts")
            self._retire_queue(slot)
            self._spawn(slot)

    @staticmethod
    def _retire_queue(slot: _Slot) -> None:
        for queue in (slot.queue, slot.results):
            if queue is None:
                continue
            try:
                queue.close()
                queue.cancel_join_thread()
            except (OSError, ValueError):
                pass
        slot.queue = None
        slot.results = None

    def _check_workers(self) -> None:
        now = clock.monotonic()
        for slot in self.slots:
            if slot.process is None:
                continue
            if slot.process.exitcode is not None:
                # Died: mid-chunk death fails the attempt; either way
                # the lane queues for a restart.
                self.outcome.metrics.count(
                    "campaign.executor.worker_deaths")
                if slot.task is not None:
                    self._attempt_failed(slot, "worker-killed")
                slot.process = None
                self._schedule_restart(slot)
            elif slot.task is not None:
                if now - slot.last_heartbeat \
                        > self.config.heartbeat_timeout:
                    self.outcome.metrics.count("campaign.executor.hangs")
                    self._terminate(slot)
                    self._attempt_failed(slot, "worker-hung")
                    self._schedule_restart(slot)
                elif slot.deadline_at is not None \
                        and now > slot.deadline_at:
                    self.outcome.metrics.count(
                        "campaign.executor.chunk_timeouts")
                    self._terminate(slot)
                    self._attempt_failed(slot, "chunk-timeout")
                    self._schedule_restart(slot)

    def _terminate(self, slot: _Slot) -> None:
        process = slot.process
        slot.process = None
        if process is None:
            return
        process.terminate()
        process.join(timeout=1.0)
        if process.exitcode is None:
            process.kill()
            process.join(timeout=1.0)

    # -- task flow -------------------------------------------------------

    def _assign_tasks(self) -> None:
        if not self.pending:
            return
        now = clock.monotonic()
        remaining = None
        if self.config.deadline_seconds is not None:
            remaining = self.config.deadline_seconds \
                - (now - self.started)
        for slot in self.slots:
            if not self.pending:
                return
            if not slot.idle:
                continue
            task = self.pending[0]
            key = (task.chunk_index, task.start, task.stop)
            if self.chunk_gate is not None \
                    and not self.chunk_gate.try_acquire(task.width):
                # Non-blocking on purpose: a blocked acquire here would
                # starve heartbeat processing; the next supervise tick
                # retries once the scheduler frees a grant.
                return
            self.pending.popleft()
            self._gate_held[key] = task.width
            attempt = self.attempts.get(key, 0) + 1
            self.attempts[key] = attempt
            slot.task = task
            slot.attempt = attempt
            slot.assigned_at = slot.last_heartbeat = now
            bounds = [b for b in (self.config.chunk_timeout, remaining)
                      if b is not None]
            slot.deadline_at = now + min(bounds) if bounds else None
            slot.queue.put(task.message(attempt))
            chunk_span = self.tracer.start(
                self._task_span_name(task), "chunk",
                parent=slot.lane_span, rows=task.width, attempt=attempt)
            self._open_spans[key] = chunk_span

    def _task_span_name(self, task: _Task) -> str:
        start, stop = self.chunk_ranges[task.chunk_index]
        if task.start == start and task.stop == stop:
            return f"chunk-{task.chunk_index}"
        return (f"chunk-{task.chunk_index}"
                f"[{task.start - start}:{task.stop - start}]")

    def _gate_release(self, key: tuple) -> None:
        width = self._gate_held.pop(key, None)
        if width is not None and self.chunk_gate is not None:
            self.chunk_gate.release(width)

    def _attempt_failed(self, slot: _Slot, reason: str) -> None:
        task, attempt = slot.task, slot.attempt
        slot.task = None
        slot.deadline_at = None
        key = (task.chunk_index, task.start, task.stop)
        self._gate_release(key)
        span = self._open_spans.pop(key, None)
        if span is not None:
            self.tracer.end(span, outcome=reason)
        if attempt >= self.config.max_chunk_attempts:
            if task.width > 1:
                self._split(task)
            else:
                self._quarantine(task, reason, attempt)
        else:
            self.outcome.metrics.count("campaign.executor.reassignments")
            self.pending.appendleft(task)

    def _split(self, task: _Task) -> None:
        # The memory-governor halving pattern: a poison row keeps
        # killing workers, but every split narrows the blast radius
        # until quarantine isolates it at minimum width.
        self.outcome.metrics.count("campaign.executor.splits")
        middle = task.start + task.width // 2
        self.pending.appendleft(_Task(task.chunk_index, middle, task.stop))
        self.pending.appendleft(_Task(task.chunk_index, task.start, middle))

    def _quarantine(self, task: _Task, reason: str, attempts: int) -> None:
        state = self._chunk_state(task.chunk_index)
        local = np.arange(task.start - state.start, task.stop - state.start)
        for offset, row in enumerate(range(task.start, task.stop)):
            state.quarantine.add(WorkerFailure(
                row=int(local[offset]),
                rate_constants=self.batch.rate_constants[row].copy(),
                initial_state=self.batch.initial_states[row].copy(),
                reason=reason, worker_attempts=attempts))
        state.buffer.status_codes[local] = BROKEN
        state.covered += task.width
        self.outcome.metrics.count("campaign.executor.quarantined_rows",
                                   task.width)
        if state.complete:
            self._finalize_chunk(task.chunk_index)

    # -- messages --------------------------------------------------------

    def _drain_messages(self) -> None:
        received = False
        for slot in self.slots:
            results = slot.results
            if results is None:
                continue
            while True:
                try:
                    message = results.get_nowait()
                except queue_module.Empty:
                    break
                except (OSError, ValueError, EOFError):
                    break  # queue torn down mid-drain by a restart
                received = True
                self._handle_message(*message)
        if received:
            return
        # Nothing pending anywhere: instead of sleeping a fixed tick
        # (which turns into dead hand-off latency for every finished
        # chunk), block briefly on one live queue so its messages wake
        # the supervisor the moment they arrive. The blocked-on slot
        # rotates so no worker's messages wait more than one tick
        # behind another's.
        live = [slot for slot in self.slots if slot.results is not None]
        if not live:
            time.sleep(self._tick)
            return
        self._block_index = (self._block_index + 1) % len(live)
        slot = live[self._block_index]
        try:
            message = slot.results.get(timeout=self._tick)
        except queue_module.Empty:
            return
        except (OSError, ValueError, EOFError):
            return
        self._handle_message(*message)

    def _handle_message(self, kind, token, task_message, payload) -> None:
        slot_index, generation = token
        slot = self.slots[slot_index]
        if generation != slot.generation:
            return  # a terminated predecessor's leftover message
        now = clock.monotonic()
        if kind == MSG_READY:
            slot.last_heartbeat = now
            return
        current = None if slot.task is None \
            else slot.task.message(slot.attempt)
        if task_message != current:
            return  # stale: the task was already reassigned
        if kind == MSG_HEARTBEAT:
            slot.last_heartbeat = now
        elif kind == MSG_DONE:
            task, attempt = slot.task, slot.attempt
            slot.task = None
            slot.deadline_at = None
            slot.chunks_done += 1
            self._note_slowness(slot, task, now)
            key = (task.chunk_index, task.start, task.stop)
            self._gate_release(key)
            span = self._open_spans.pop(key, None)
            if span is not None:
                self.tracer.end(span, outcome="done")
            self._absorb_piece(task, payload)
        elif kind == MSG_FAILED:
            self.outcome.metrics.count("campaign.executor.worker_errors")
            self._attempt_failed(slot, f"worker-error: {payload}")

    def _note_slowness(self, slot: _Slot, task: _Task, now: float) -> None:
        threshold = self.config.slow_chunk_seconds
        if threshold is not None and now - slot.assigned_at > threshold:
            self.outcome.metrics.count("campaign.executor.slow_chunks")

    # -- chunk assembly --------------------------------------------------

    def _chunk_state(self, index: int) -> _ChunkState:
        state = self.chunk_states.get(index)
        if state is None:
            start, stop = self.chunk_ranges[index]
            state = self.chunk_states[index] = _ChunkState(
                start, stop, self.t_eval, self.n_species)
        return state

    def _absorb_piece(self, task: _Task, payload) -> None:
        result, quarantine_dicts, metrics_dict = payload
        state = self._chunk_state(task.chunk_index)
        local = np.arange(task.start - state.start,
                          task.stop - state.start)
        state.buffer.merge_rows(result, local)
        state.covered += task.width
        if quarantine_dicts:
            state.quarantine.merge(
                QuarantineLog.from_dicts(quarantine_dicts),
                row_offset=task.start - state.start)
        if metrics_dict is not None:
            state.metrics.merge(MetricsRegistry.from_dict(metrics_dict))
            state.has_metrics = True
        if state.complete:
            self._finalize_chunk(task.chunk_index)

    def _finalize_chunk(self, index: int) -> None:
        state = self.chunk_states.pop(index)
        if self.checkpoint is not None:
            shifted = QuarantineLog()
            shifted.merge(state.quarantine, row_offset=state.start)
            self.checkpoint.save_chunk(index, state.buffer,
                                       shifted.to_dicts())
            if state.has_metrics:
                self.checkpoint.set_payload(f"metrics-{index}",
                                            state.metrics.to_dict())
        # Same transactional alignment as the serial loop: spans flush
        # only once their chunk is journaled.
        self.tracer.flush()
        rows = np.arange(state.start, state.stop)
        self.merged.merge_rows(state.buffer, rows)
        self.outcome.chunk_quarantines[index] = state.quarantine
        self.outcome.chunk_metrics[index] = (state.metrics
                                             if state.has_metrics else None)
        self.outcome.executed += 1

    # -- degraded serial fallback ----------------------------------------

    def _degrade(self) -> None:
        """The pool is gone: finish the remaining pieces in-process.

        Runs the identical chunk-execution code the workers run
        (:func:`~repro.resilience.worker.execute_chunk`), in
        deterministic ``(chunk, row-range)`` order, under the same
        crash/deadline checks as the serial campaign loop.
        """
        self.outcome.degraded = True
        self.outcome.metrics.count("campaign.executor.degradations")
        self.pending = deque(sorted(self.pending))
        while self.pending:
            if self.cancel_event is not None \
                    and self.cancel_event.is_set():
                self.outcome.cancelled = True
                return
            self._check_crash()
            if self._deadline_exceeded():
                self.outcome.deadline_hit = True
                return
            task = self.pending.popleft()
            if self.chunk_gate is not None and not self.chunk_gate.acquire(
                    task.width, self.cancel_event):
                self.outcome.cancelled = True
                return
            span = self.tracer.start(self._task_span_name(task), "chunk",
                                     parent=self.campaign_span,
                                     rows=task.width, degraded=True)
            try:
                payload = execute_chunk(self.spec, self.batch,
                                        task.chunk_index, task.start,
                                        task.stop)
            finally:
                if self.chunk_gate is not None:
                    self.chunk_gate.release(task.width)
            self.tracer.end(span, outcome="done")
            self._absorb_piece(task, payload)

    # -- teardown --------------------------------------------------------

    def _shutdown(self) -> None:
        for slot in self.slots:
            if slot.alive:
                try:
                    slot.queue.put(None)
                except (OSError, ValueError):
                    pass
        deadline = clock.monotonic() + 2.0
        for slot in self.slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - clock.monotonic()))
            if process.exitcode is None:
                process.terminate()
                process.join(timeout=1.0)
            slot.process = None
        for slot in self.slots:
            self._retire_queue(slot)
        if not self._lanes_ended:
            self._lanes_ended = True
            for slot in self.slots:
                if slot.lane_span is not None:
                    self.tracer.end(slot.lane_span, restarts=slot.restarts,
                                    chunks=slot.chunks_done)
        for key, span in list(self._open_spans.items()):
            # Abandoned in-flight spans (deadline/crash teardown).
            self.tracer.end(span, outcome="abandoned")
            del self._open_spans[key]
        for key in list(self._gate_held):
            # Grants of abandoned in-flight tasks go back to the
            # scheduler, or other campaigns starve on our teardown.
            self._gate_release(key)


def run_sharded(spec: WorkerSpec, batch, config, fault_plan,
                chunk_indices, checkpoint, merged: BatchSolveResult,
                n_species: int, t_eval: np.ndarray, started: float,
                completed_before: int, tracer, campaign_span,
                chunk_gate=None, cancel_event=None) -> ExecutorOutcome:
    """Execute the given ``(index, start, stop)`` chunks on a
    supervised worker pool; see the module docstring for the ladder."""
    supervisor = ShardSupervisor(spec, batch, config, fault_plan,
                                 chunk_indices, checkpoint, merged,
                                 n_species, t_eval, started,
                                 completed_before, tracer, campaign_span,
                                 chunk_gate=chunk_gate,
                                 cancel_event=cancel_event)
    return supervisor.run()
