"""Retry escalation policies for failed batched simulations.

A :class:`RetryPolicy` is a ladder of :class:`RetryStage` rungs the
engine climbs for the *failed-row subset* of a launch after the
router's first pass: each rung names a solver (dopri5 -> radau5 -> bdf
by default) and how to derive its numerical options from the launch
options — tolerance tightening for breakdown-style failures and
step-cap growth for budget exhaustion. The attempt budget bounds the
total work one pathological row can consume; rows that exhaust the
ladder are quarantined (see :mod:`repro.resilience.quarantine`)
instead of poisoning downstream analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ResilienceError
from ..solvers.base import SolverOptions

#: Solvers a retry stage may escalate to.
RETRY_METHODS = ("dopri5", "radau5", "bdf")


@dataclass(frozen=True)
class RetryStage:
    """One rung of the retry ladder.

    Attributes
    ----------
    method:
        Batched solver to re-execute the failed rows with, one of
        :data:`RETRY_METHODS`.
    rtol_factor, atol_factor:
        Multipliers on the launch tolerances; values below 1 *tighten*
        the tolerances (smaller accepted local error), which rescues
        trajectories that broke down from accumulated error.
    max_steps_factor:
        Multiplier on the per-simulation step cap; values above 1 give
        budget-exhausted rows room to finish.
    """

    method: str
    rtol_factor: float = 1.0
    atol_factor: float = 1.0
    max_steps_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.method not in RETRY_METHODS:
            raise ResilienceError(
                f"unknown retry method {self.method!r}; expected one of "
                f"{RETRY_METHODS}")
        for name in ("rtol_factor", "atol_factor", "max_steps_factor"):
            if not (getattr(self, name) > 0.0):
                raise ResilienceError(
                    f"{name} must be > 0, got {getattr(self, name)}")

    def derive_options(self, options: SolverOptions) -> SolverOptions:
        """Launch options escalated for this rung."""
        return options.replace(
            rtol=options.rtol * self.rtol_factor,
            atol=options.atol * self.atol_factor,
            max_steps=max(1, int(round(options.max_steps
                                       * self.max_steps_factor))))

    def describe(self) -> str:
        return (f"{self.method}(rtol x{self.rtol_factor:g}, "
                f"atol x{self.atol_factor:g}, "
                f"max_steps x{self.max_steps_factor:g})")


#: The default ladder: give DOPRI5 a larger step budget first (cheap,
#: rescues plain exhaustion), then Radau IIA with tightened tolerances
#: (undetected stiffness / local breakdown), then BDF with both a
#: tighter tolerance and a generous step cap as the last resort.
DEFAULT_RETRY_LADDER = (
    RetryStage("dopri5", max_steps_factor=4.0),
    RetryStage("radau5", rtol_factor=0.1, max_steps_factor=4.0),
    RetryStage("bdf", rtol_factor=0.1, atol_factor=0.1,
               max_steps_factor=8.0),
)


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded ladder of retry stages.

    ``max_attempts`` caps how many rungs are actually climbed, so a
    policy can carry a long ladder while the deployment bounds the
    per-row retry budget. An empty ladder (or ``max_attempts=0``) makes
    the engine quarantine failed rows immediately without retrying —
    useful when failures are expected and only the bookkeeping matters.
    """

    stages: tuple[RetryStage, ...] = field(default=DEFAULT_RETRY_LADDER)
    max_attempts: int = 3

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        if self.max_attempts < 0:
            raise ResilienceError(
                f"max_attempts must be >= 0, got {self.max_attempts}")

    def planned_stages(self) -> tuple[RetryStage, ...]:
        """The rungs that will actually run under the attempt budget."""
        return self.stages[:self.max_attempts]

    def describe(self) -> str:
        rungs = " -> ".join(stage.describe()
                            for stage in self.planned_stages())
        return rungs or "<no retries: quarantine immediately>"


def default_retry_policy(max_attempts: int = 3) -> RetryPolicy:
    """The dopri5 -> radau5 -> bdf escalation ladder."""
    return RetryPolicy(DEFAULT_RETRY_LADDER, max_attempts)
