"""Campaign resilience layer: retry escalation, failure quarantine,
checkpoint/resume and deterministic fault injection.

The large-ensemble workloads of the paper family (PSA maps, Sobol SA,
PE over millions of parameter points) only deliver their speedup if one
diverging simulation cannot poison a batch or force a whole campaign
re-run. This package provides the pieces the engine and the analyses
thread together:

* :class:`RetryPolicy` / :class:`RetryStage` — the solver escalation
  ladder applied to the failed-row subset of every launch.
* :class:`QuarantineLog` / :class:`FailureRecord` — structured records
  of rows that exhausted the ladder, surfaced on
  :class:`~repro.gpu.engine.EngineReport` and the analysis results.
* :func:`run_campaign` / :class:`CampaignConfig` — chunked campaign
  execution with a JSON journal
  (:class:`~repro.io.checkpoint.CampaignCheckpoint`) for crash
  resume and a wall-clock deadline that degrades to a partial result.
* :class:`FaultPlan` — deterministic fault injection (NaN rows, forced
  launch failures, simulated crashes, deadlines and worker-process
  kills/hangs) proving every degradation path end-to-end.
* :func:`run_sharded` / :class:`WorkerFailure` — the supervised
  multiprocess shard executor behind ``CampaignConfig.workers``
  (:mod:`repro.resilience.executor`) and the quarantine record it
  files for rows of poison chunks.

``campaign`` is imported lazily (PEP 562) because it sits *above*
:mod:`repro.core.simulate` in the layering while the leaf modules here
are imported *by* :mod:`repro.gpu.engine`.
"""

from __future__ import annotations

from .faults import FaultPlan
from .policy import (DEFAULT_RETRY_LADDER, RETRY_METHODS, RetryPolicy,
                     RetryStage, default_retry_policy)
from .quarantine import (FailureRecord, QuarantineLog, RetryAttempt,
                         WorkerFailure)

_CAMPAIGN_NAMES = ("CampaignConfig", "CampaignResult", "run_campaign",
                   "campaign_fingerprint")
_EXECUTOR_NAMES = ("ExecutorOutcome", "ShardSupervisor", "run_sharded")

__all__ = [
    "FaultPlan",
    "DEFAULT_RETRY_LADDER", "RETRY_METHODS", "RetryPolicy", "RetryStage",
    "default_retry_policy",
    "FailureRecord", "QuarantineLog", "RetryAttempt", "WorkerFailure",
    *_CAMPAIGN_NAMES,
    *_EXECUTOR_NAMES,
]


def __getattr__(name: str):
    if name in _CAMPAIGN_NAMES:
        from . import campaign
        return getattr(campaign, name)
    if name in _EXECUTOR_NAMES:
        from . import executor
        return getattr(executor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
