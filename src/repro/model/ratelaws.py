"""Arbitrary rate laws via expression trees (ginSODA-style).

The mass-action / Michaelis-Menten / Hill trio covers the paper
family's shipped kinetics; their stated general-purpose extension
(ginSODA) evaluates *arbitrary* user expressions and needs their
partial derivatives for the implicit solver's Jacobian. This module
provides that: a small expression AST over the reaction's substrate
concentrations with

* vectorized evaluation over a simulation batch,
* exact symbolic differentiation (for the analytic Jacobian),
* a recursive-descent parser for infix strings such as
  ``"k * S / (0.4 + S + S^2 / 3)"``.

Inside an expression, ``k`` denotes the reaction's rate constant (so
sweeps and perturbations keep working) and any other identifier denotes
a species concentration.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from ..errors import KineticsError, ParseError


class Expression:
    """Base class of rate-law expression nodes."""

    def evaluate(self, values: dict[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def differentiate(self, name: str) -> "Expression":
        raise NotImplementedError

    def variables(self) -> set[str]:
        raise NotImplementedError

    def simplified(self) -> "Expression":
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self}>"


@dataclass(frozen=True)
class Constant(Expression):
    value: float

    def evaluate(self, values):
        return np.asarray(self.value)

    def differentiate(self, name):
        return Constant(0.0)

    def variables(self):
        return set()

    def __str__(self):
        # repr keeps full precision so printed laws re-parse exactly.
        return repr(float(self.value))


@dataclass(frozen=True)
class Variable(Expression):
    name: str

    def evaluate(self, values):
        try:
            return values[self.name]
        except KeyError:
            raise KineticsError(
                f"rate law references unknown symbol {self.name!r}"
            ) from None

    def differentiate(self, name):
        return Constant(1.0 if name == self.name else 0.0)

    def variables(self):
        return {self.name}

    def __str__(self):
        return self.name


def _is_zero(expression: Expression) -> bool:
    return isinstance(expression, Constant) and expression.value == 0.0


def _is_one(expression: Expression) -> bool:
    return isinstance(expression, Constant) and expression.value == 1.0


@dataclass(frozen=True)
class Add(Expression):
    left: Expression
    right: Expression

    def evaluate(self, values):
        return self.left.evaluate(values) + self.right.evaluate(values)

    def differentiate(self, name):
        return Add(self.left.differentiate(name),
                   self.right.differentiate(name)).simplified()

    def variables(self):
        return self.left.variables() | self.right.variables()

    def simplified(self):
        left, right = self.left.simplified(), self.right.simplified()
        if _is_zero(left):
            return right
        if _is_zero(right):
            return left
        if isinstance(left, Constant) and isinstance(right, Constant):
            return Constant(left.value + right.value)
        return Add(left, right)

    def __str__(self):
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class Sub(Expression):
    left: Expression
    right: Expression

    def evaluate(self, values):
        return self.left.evaluate(values) - self.right.evaluate(values)

    def differentiate(self, name):
        return Sub(self.left.differentiate(name),
                   self.right.differentiate(name)).simplified()

    def variables(self):
        return self.left.variables() | self.right.variables()

    def simplified(self):
        left, right = self.left.simplified(), self.right.simplified()
        if _is_zero(right):
            return left
        if isinstance(left, Constant) and isinstance(right, Constant):
            return Constant(left.value - right.value)
        return Sub(left, right)

    def __str__(self):
        return f"({self.left} - {self.right})"


@dataclass(frozen=True)
class Mul(Expression):
    left: Expression
    right: Expression

    def evaluate(self, values):
        return self.left.evaluate(values) * self.right.evaluate(values)

    def differentiate(self, name):
        return Add(Mul(self.left.differentiate(name), self.right),
                   Mul(self.left, self.right.differentiate(name))
                   ).simplified()

    def variables(self):
        return self.left.variables() | self.right.variables()

    def simplified(self):
        left, right = self.left.simplified(), self.right.simplified()
        if _is_zero(left) or _is_zero(right):
            return Constant(0.0)
        if _is_one(left):
            return right
        if _is_one(right):
            return left
        if isinstance(left, Constant) and isinstance(right, Constant):
            return Constant(left.value * right.value)
        return Mul(left, right)

    def __str__(self):
        return f"({self.left} * {self.right})"


@dataclass(frozen=True)
class Div(Expression):
    left: Expression
    right: Expression

    def evaluate(self, values):
        return self.left.evaluate(values) / self.right.evaluate(values)

    def differentiate(self, name):
        numerator = Sub(
            Mul(self.left.differentiate(name), self.right),
            Mul(self.left, self.right.differentiate(name)))
        return Div(numerator, Mul(self.right, self.right)).simplified()

    def variables(self):
        return self.left.variables() | self.right.variables()

    def simplified(self):
        left, right = self.left.simplified(), self.right.simplified()
        if _is_zero(left):
            return Constant(0.0)
        if _is_one(right):
            return left
        if isinstance(left, Constant) and isinstance(right, Constant) \
                and right.value != 0.0:
            return Constant(left.value / right.value)
        return Div(left, right)

    def __str__(self):
        return f"({self.left} / {self.right})"


@dataclass(frozen=True)
class Pow(Expression):
    base: Expression
    exponent: float

    def evaluate(self, values):
        return self.base.evaluate(values) ** self.exponent

    def differentiate(self, name):
        inner = self.base.differentiate(name)
        outer = Mul(Constant(self.exponent),
                    Pow(self.base, self.exponent - 1.0))
        return Mul(outer, inner).simplified()

    def variables(self):
        return self.base.variables()

    def simplified(self):
        base = self.base.simplified()
        if self.exponent == 0.0:
            return Constant(1.0)
        if self.exponent == 1.0:
            return base
        if isinstance(base, Constant):
            return Constant(base.value ** self.exponent)
        return Pow(base, self.exponent)

    def __str__(self):
        return f"({self.base}^{self.exponent:g})"


# ----------------------------------------------------------------------
# parser

_TOKEN_RE = re.compile(r"\s*(?:(\d+\.?\d*(?:[eE][+-]?\d+)?)"
                       r"|([A-Za-z_][A-Za-z0-9_]*)"
                       r"|([()+\-*/^]))")


def _tokenize(text: str) -> list[str]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"cannot tokenize rate law at ...{text[position:]!r}")
        tokens.append(match.group(match.lastindex))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser: expr -> term -> factor -> power."""

    def __init__(self, tokens: list[str], source: str) -> None:
        self.tokens = tokens
        self.position = 0
        self.source = source

    def peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of rate law {self.source!r}")
        self.position += 1
        return token

    def parse(self) -> Expression:
        expression = self.expr()
        if self.peek() is not None:
            raise ParseError(
                f"trailing input {self.peek()!r} in {self.source!r}")
        return expression.simplified()

    def expr(self) -> Expression:
        node = self.term()
        while self.peek() in ("+", "-"):
            operator = self.take()
            right = self.term()
            node = Add(node, right) if operator == "+" else Sub(node, right)
        return node

    def term(self) -> Expression:
        node = self.unary()
        while self.peek() in ("*", "/"):
            operator = self.take()
            right = self.unary()
            node = Mul(node, right) if operator == "*" else Div(node, right)
        return node

    def unary(self) -> Expression:
        if self.peek() == "-":
            self.take()
            return Sub(Constant(0.0), self.unary())
        return self.power()

    def power(self) -> Expression:
        base = self.atom()
        if self.peek() == "^":
            self.take()
            sign = 1.0
            if self.peek() == "-":
                self.take()
                sign = -1.0
            exponent_token = self.take()
            try:
                exponent = sign * float(exponent_token)
            except ValueError:
                raise ParseError(
                    f"exponent must be numeric, got {exponent_token!r} "
                    f"in {self.source!r}") from None
            return Pow(base, exponent)
        return base

    def atom(self) -> Expression:
        token = self.take()
        if token == "(":
            node = self.expr()
            if self.take() != ")":
                raise ParseError(f"unbalanced parentheses in "
                                 f"{self.source!r}")
            return node
        if re.match(r"^\d", token):
            return Constant(float(token))
        if re.match(r"^[A-Za-z_]", token):
            return Variable(token)
        raise ParseError(f"unexpected token {token!r} in {self.source!r}")


def parse_expression(text: str) -> Expression:
    """Parse an infix rate-law expression into an AST."""
    return _Parser(_tokenize(text), text).parse()


@dataclass(frozen=True)
class CustomLaw:
    """An arbitrary-kinetics law defined by an expression.

    ``k`` in the expression denotes the reaction's rate constant;
    every other identifier must name a model species. The reaction's
    reactant side still defines the stoichiometric consumption.
    """

    expression: Expression
    source: str = ""

    @staticmethod
    def from_string(text: str) -> "CustomLaw":
        return CustomLaw(parse_expression(text), text)

    def describe(self) -> str:
        return f"custom({self.source or self.expression})"

    def species_names(self) -> set[str]:
        return self.expression.variables() - {"k"}

    def gradient(self) -> dict[str, Expression]:
        """Exact partial derivative per referenced species."""
        return {name: self.expression.differentiate(name).simplified()
                for name in self.species_names()}
