"""Biochemical reactions and the textual reaction parser.

A reaction maps multisets of reactant and product species to each other,
with an associated kinetic constant and kinetic law:

    R_i :  sum_j a_ij S_j  --k_i-->  sum_j b_ij S_j

Reactions can be built programmatically or parsed from strings such as
``"2 A + B -> C @ 0.5"`` (the ``@ value`` suffix sets the kinetic
constant). The empty side is written ``0`` (or left blank), e.g.
``"0 -> A @ 1e-3"`` for a zero-order synthesis and ``"A -> 0 @ 0.1"``
for a degradation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import ModelError, ParseError
from .kinetics import MASS_ACTION, KineticLaw, validate_law_for_reaction

_TERM_RE = re.compile(r"^\s*(\d+)?\s*\*?\s*([A-Za-z_][A-Za-z0-9_]*)\s*$")


@dataclass(frozen=True)
class Reaction:
    """A single biochemical reaction.

    Parameters
    ----------
    reactants:
        Mapping species name -> stoichiometric coefficient (>= 1).
    products:
        Mapping species name -> stoichiometric coefficient (>= 1).
    rate_constant:
        Kinetic constant k_i > 0 (for Michaelis-Menten / Hill laws this
        is the Vmax).
    law:
        Kinetic law; defaults to mass action.
    name:
        Optional human-readable identifier.
    """

    reactants: dict[str, int] = field(default_factory=dict)
    products: dict[str, int] = field(default_factory=dict)
    rate_constant: float = 1.0
    law: KineticLaw = MASS_ACTION
    name: str = ""

    def __post_init__(self) -> None:
        for side_name, side in (("reactant", self.reactants),
                                ("product", self.products)):
            for species, coefficient in side.items():
                if not isinstance(coefficient, int) or coefficient < 1:
                    raise ModelError(
                        f"reaction {self.name or self.text()!r}: {side_name} "
                        f"{species!r} has invalid coefficient {coefficient!r} "
                        "(must be a positive integer)"
                    )
        if not (self.rate_constant > 0.0):
            raise ModelError(
                f"reaction {self.name or self.text()!r}: rate constant must "
                f"be > 0, got {self.rate_constant}"
            )
        if not self.reactants and not self.products:
            raise ModelError("reaction with empty reactant and product sides")
        max_coefficient = max(self.reactants.values(), default=0)
        validate_law_for_reaction(self.law, len(self.reactants), max_coefficient)

    @property
    def order(self) -> int:
        """Reaction order: total number of reactant molecules."""
        return sum(self.reactants.values())

    def species_names(self) -> set[str]:
        """All species appearing on either side."""
        return set(self.reactants) | set(self.products)

    def is_reactant(self, name: str) -> bool:
        return name in self.reactants

    def net_change(self, name: str) -> int:
        """Net stoichiometric change (b - a) for one species."""
        return self.products.get(name, 0) - self.reactants.get(name, 0)

    def text(self) -> str:
        """Render the reaction in the parser's textual syntax."""

        def render(side: dict[str, int]) -> str:
            if not side:
                return "0"
            terms = []
            for species, coefficient in side.items():
                prefix = f"{coefficient} " if coefficient != 1 else ""
                terms.append(f"{prefix}{species}")
            return " + ".join(terms)

        return (f"{render(self.reactants)} -> {render(self.products)}"
                f" @ {self.rate_constant:g}")

    def with_rate_constant(self, value: float) -> "Reaction":
        """Return a copy of this reaction with a new kinetic constant."""
        return Reaction(dict(self.reactants), dict(self.products), value,
                        self.law, self.name)


def _parse_side(text: str, what: str) -> dict[str, int]:
    text = text.strip()
    if text in ("", "0", "Ø", "_"):
        return {}
    side: dict[str, int] = {}
    for term in text.split("+"):
        match = _TERM_RE.match(term)
        if match is None:
            raise ParseError(f"cannot parse {what} term {term.strip()!r}")
        coefficient = int(match.group(1)) if match.group(1) else 1
        if coefficient < 1:
            raise ParseError(
                f"{what} term {term.strip()!r} has zero coefficient")
        species = match.group(2)
        side[species] = side.get(species, 0) + coefficient
    return side


def parse_reaction(text: str, rate_constant: float | None = None,
                   law: KineticLaw = MASS_ACTION, name: str = "") -> Reaction:
    """Parse a reaction string such as ``"2 A + B -> C @ 0.5"``.

    The ``@ value`` rate suffix is optional if ``rate_constant`` is given
    explicitly; an explicit argument overrides the suffix.
    """
    body = text
    suffix_rate: float | None = None
    if "@" in text:
        body, _, rate_text = text.partition("@")
        try:
            suffix_rate = float(rate_text)
        except ValueError:
            raise ParseError(
                f"cannot parse rate constant {rate_text.strip()!r} "
                f"in {text!r}") from None
    if "->" not in body:
        raise ParseError(f"reaction {text!r} is missing '->'")
    left, _, right = body.partition("->")
    rate = rate_constant if rate_constant is not None else suffix_rate
    if rate is None:
        raise ParseError(f"reaction {text!r} has no rate constant")
    return Reaction(_parse_side(left, "reactant"), _parse_side(right, "product"),
                    rate, law, name)
