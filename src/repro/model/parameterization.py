"""Parameterizations of an RBM: kinetic constants and initial states.

A parameter-space analysis runs the same model under many distinct
parameterizations; this module holds single parameterizations, batches
of them, and the multiplicative log-space perturbation scheme used to
generate sweep batches from a nominal parameterization:

    k_i' = exp( ln(k_i - 0.25 k_i)
                + (ln(k_i + 0.25 k_i) - ln(k_i - 0.25 k_i)) * u ),
    u ~ Uniform(0, 1)

i.e. a log-uniform draw in [0.75 k_i, 1.25 k_i].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError


@dataclass(frozen=True)
class Parameterization:
    """One model instantiation: kinetic constants and initial state.

    Attributes
    ----------
    rate_constants:
        Shape (M,), strictly positive.
    initial_state:
        Shape (N,), non-negative concentrations.
    """

    rate_constants: np.ndarray
    initial_state: np.ndarray

    def __post_init__(self) -> None:
        k = np.asarray(self.rate_constants, dtype=np.float64)
        x0 = np.asarray(self.initial_state, dtype=np.float64)
        object.__setattr__(self, "rate_constants", k)
        object.__setattr__(self, "initial_state", x0)
        if k.ndim != 1 or x0.ndim != 1:
            raise ModelError("parameterization arrays must be 1-D")
        if np.any(~np.isfinite(k)) or np.any(k <= 0.0):
            raise ModelError("rate constants must be finite and > 0")
        if np.any(~np.isfinite(x0)) or np.any(x0 < 0.0):
            raise ModelError("initial state must be finite and >= 0")

    @property
    def n_reactions(self) -> int:
        return self.rate_constants.shape[0]

    @property
    def n_species(self) -> int:
        return self.initial_state.shape[0]

    def with_rate_constant(self, index: int, value: float) -> "Parameterization":
        k = self.rate_constants.copy()
        k[index] = value
        return Parameterization(k, self.initial_state.copy())

    def with_initial_value(self, index: int, value: float) -> "Parameterization":
        x0 = self.initial_state.copy()
        x0[index] = value
        return Parameterization(self.rate_constants.copy(), x0)


@dataclass(frozen=True)
class ParameterizationBatch:
    """A batch of B parameterizations stored as stacked arrays.

    Attributes
    ----------
    rate_constants:
        Shape (B, M).
    initial_states:
        Shape (B, N).
    """

    rate_constants: np.ndarray
    initial_states: np.ndarray

    def __post_init__(self) -> None:
        k = np.atleast_2d(np.asarray(self.rate_constants, dtype=np.float64))
        x0 = np.atleast_2d(np.asarray(self.initial_states, dtype=np.float64))
        object.__setattr__(self, "rate_constants", k)
        object.__setattr__(self, "initial_states", x0)
        if k.shape[0] != x0.shape[0]:
            raise ModelError(
                f"batch size mismatch: {k.shape[0]} rate-constant rows vs "
                f"{x0.shape[0]} initial-state rows"
            )
        if np.any(~np.isfinite(k)) or np.any(k <= 0.0):
            raise ModelError("rate constants must be finite and > 0")
        if np.any(~np.isfinite(x0)) or np.any(x0 < 0.0):
            raise ModelError("initial states must be finite and >= 0")

    @property
    def size(self) -> int:
        return self.rate_constants.shape[0]

    @property
    def n_reactions(self) -> int:
        return self.rate_constants.shape[1]

    @property
    def n_species(self) -> int:
        return self.initial_states.shape[1]

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int) -> Parameterization:
        return Parameterization(self.rate_constants[index].copy(),
                                self.initial_states[index].copy())

    def subset(self, indices: np.ndarray) -> "ParameterizationBatch":
        return ParameterizationBatch(self.rate_constants[indices],
                                     self.initial_states[indices])

    @staticmethod
    def from_parameterizations(
            items: list[Parameterization]) -> "ParameterizationBatch":
        if not items:
            raise ModelError("cannot build a batch from zero parameterizations")
        return ParameterizationBatch(
            np.stack([p.rate_constants for p in items]),
            np.stack([p.initial_state for p in items]),
        )

    @staticmethod
    def replicate(base: Parameterization, count: int) -> "ParameterizationBatch":
        """Batch of ``count`` copies of one parameterization."""
        if count < 1:
            raise ModelError(f"batch size must be >= 1, got {count}")
        return ParameterizationBatch(
            np.tile(base.rate_constants, (count, 1)),
            np.tile(base.initial_state, (count, 1)),
        )


def perturb_rate_constants(base: np.ndarray, count: int,
                           rng: np.random.Generator,
                           spread: float = 0.25) -> np.ndarray:
    """Log-uniform multiplicative perturbation of kinetic constants.

    Each of the ``count`` output rows draws every constant log-uniformly
    in [(1 - spread) k, (1 + spread) k]. This is the scheme used by the
    paper family to generate the batches of a parameter sweep.
    """
    base = np.asarray(base, dtype=np.float64)
    if np.any(base <= 0.0):
        raise ModelError("perturbation requires strictly positive constants")
    if not (0.0 < spread < 1.0):
        raise ModelError(f"spread must be in (0, 1), got {spread}")
    low = np.log(base * (1.0 - spread))
    high = np.log(base * (1.0 + spread))
    u = rng.random((count, base.shape[0]))
    return np.exp(low + (high - low) * u)


def perturbed_batch(base: Parameterization, count: int,
                    rng: np.random.Generator,
                    spread: float = 0.25) -> ParameterizationBatch:
    """Batch with perturbed rate constants and the shared initial state."""
    constants = perturb_rate_constants(base.rate_constants, count, rng, spread)
    states = np.tile(base.initial_state, (count, 1))
    return ParameterizationBatch(constants, states)
