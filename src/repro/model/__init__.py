"""Reaction-based model formalism: species, reactions, kinetics, ODEs."""

from .kinetics import MASS_ACTION, Hill, KineticLaw, MassAction, MichaelisMenten
from .ratelaws import CustomLaw, Expression, parse_expression
from .odesystem import ODESystem, POLICIES
from .parameterization import (Parameterization, ParameterizationBatch,
                               perturb_rate_constants, perturbed_batch)
from .rbm import ReactionBasedModel
from .reaction import Reaction, parse_reaction
from .species import Species, SpeciesRegistry
from .stoichiometry import (StoichiometricMatrices, build_matrices,
                            conservation_laws, invariant_totals,
                            reaction_graph_edges)

__all__ = [
    "MASS_ACTION", "Hill", "KineticLaw", "MassAction", "MichaelisMenten",
    "CustomLaw", "Expression", "parse_expression",
    "ODESystem", "POLICIES",
    "Parameterization", "ParameterizationBatch",
    "perturb_rate_constants", "perturbed_batch",
    "ReactionBasedModel", "Reaction", "parse_reaction",
    "Species", "SpeciesRegistry",
    "StoichiometricMatrices", "build_matrices", "conservation_laws",
    "invariant_totals", "reaction_graph_edges",
]
